//! The epoll-driven reactor: one event-loop thread owning every socket's
//! readiness, a bounded worker pool executing dispatch, and per-connection
//! buffers built on `bytes` so request frames are sliced zero-copy out of
//! the receive buffer.
//!
//! Division of labor:
//!
//! * The **reactor thread** blocks in `epoll_wait`, accepts new
//!   connections, reads ready sockets into each connection's
//!   [`FrameDecoder`], and queues connections holding complete frames for
//!   the workers. It is the only thread that reads sockets or touches the
//!   decoder, so the receive path needs no locks.
//! * **Workers** pull queued connections, decode + dispatch their frames
//!   through `dispatch_frame`, and append encoded replies to the
//!   connection's write buffer — flushing opportunistically so the common
//!   case (peer keeps up) never bounces through the reactor. Only a
//!   partial write arms `EPOLLOUT` and hands the remainder to the reactor.
//! * An **eventfd** wakes the reactor for shutdown and for connections a
//!   worker condemned; this replaces the old throwaway-connection hack.
//!
//! Ordering: a connection is queued to at most one worker at a time
//! (`queued` flag), and that worker drains its frames FIFO — so per-
//! connection dispatch order matches the old thread-per-connection loop
//! exactly, while different connections dispatch in parallel.
//!
//! Backpressure (slow-reader protection): replies buffered toward a peer
//! are capped; past the cap the connection's `EPOLLIN` interest is dropped
//! so the server stops reading — TCP flow control then pushes back on the
//! peer — and resumes below a low-water mark once the peer drains. A flood
//! of decoded-but-undispatched frames pauses reading the same way, so one
//! connection cannot balloon the dispatch queue.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use tell_common::{Error, Result};
use tell_obs::{Counter, Gauge};

use crate::service::{dispatch_frame, RpcService};
use crate::sys::{
    epoll_ctl_op, epoll_event, epoll_wait_events, Epoll, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN,
    EPOLLOUT, EPOLLRDHUP, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD,
};
use crate::wire::{write_frame_ctx, FrameDecoder, FRAME_HEADER};

/// Tuning knobs for a reactor-backed server.
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Dispatch worker threads; 0 picks a default from the machine's
    /// parallelism (clamped to a small pool — dispatch is memory-resident
    /// work, more threads past the core count only thrash).
    pub workers: usize,
    /// Per-connection cap on buffered reply bytes before the server stops
    /// reading from that connection (slow-reader protection).
    pub write_buf_cap: usize,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig { workers: 0, write_buf_cap: 8 << 20 }
    }
}

impl ReactorConfig {
    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        thread::available_parallelism().map_or(2, |n| n.get()).clamp(2, 8)
    }
}

const TOKEN_WAKE: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Socket read chunk. One scratch buffer per reactor, reused across reads.
const READ_CHUNK: usize = 64 << 10;

/// Frames one worker slice dispatches before rotating the connection to
/// the back of the queue (fairness across busy pipelined connections).
const FRAME_BUDGET: usize = 32;

/// Decoded-but-undispatched frames past which reading pauses.
const PENDING_PAUSE: usize = 256;

/// `epoll_wait` batch size.
const EVENT_BATCH: usize = 64;

struct ConnIo {
    /// Encoded reply bytes not yet written, contiguous — so one `write`
    /// syscall drains every reply a worker batch produced (the syscall
    /// coalescing a thread-per-connection server cannot do).
    wbuf: BytesMut,
    /// Interest set currently registered with epoll.
    interest: u32,
    /// In write-cap backpressure (hysteresis + transition counting).
    paused: bool,
}

struct Conn {
    token: u64,
    stream: TcpStream,
    peer: SocketAddr,
    io: Mutex<ConnIo>,
    /// Complete frames decoded but not yet dispatched: `(corr_id, body)`.
    pending: Mutex<VecDeque<(u64, Bytes)>>,
    /// On the dispatch queue or being drained by a worker. At most one
    /// worker owns a connection at a time — that is the FIFO guarantee.
    queued: AtomicBool,
    dead: AtomicBool,
    /// Peer sent EOF; retire once pending work and buffered replies drain.
    eof: AtomicBool,
}

impl Conn {
    fn fd(&self) -> i32 {
        self.stream.as_raw_fd()
    }
}

struct Shared {
    service: Arc<dyn RpcService>,
    epoll: Epoll,
    wake: EventFd,
    /// Dispatch queue. std primitives rather than `parking_lot` because the
    /// workers park on a condvar (the vendored `parking_lot` stand-in has
    /// none) — poisoning is impossible here, lock holders never panic.
    queue: std::sync::Mutex<VecDeque<Arc<Conn>>>,
    queue_cv: std::sync::Condvar,
    /// Connections a worker condemned; the reactor deregisters and closes
    /// them on its next wakeup. Workers never close sockets — the fd must
    /// stay valid for as long as any thread may pass it to `epoll_ctl`.
    dying: Mutex<Vec<Arc<Conn>>>,
    shutdown: AtomicBool,
    frames: AtomicU64,
    /// Reply bytes buffered across all connections (the gauge's source).
    buffered: AtomicU64,
    write_buf_cap: usize,
}

impl Shared {
    fn note_buffered_add(&self, n: usize) {
        let now = self.buffered.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
        tell_obs::set_gauge(Gauge::ReactorBufferedWriteBytes, now);
    }

    fn note_buffered_sub(&self, n: usize) {
        let now = self.buffered.fetch_sub(n as u64, Ordering::Relaxed) - n as u64;
        tell_obs::set_gauge(Gauge::ReactorBufferedWriteBytes, now);
    }
}

/// A running reactor: the event-loop thread plus its worker pool.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    reactor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Reactor {
    pub(crate) fn start(
        listener: TcpListener,
        service: Arc<dyn RpcService>,
        config: ReactorConfig,
    ) -> Result<Reactor> {
        let unavailable = |what: &str, e: io::Error| Error::Unavailable(format!("{what}: {e}"));
        listener.set_nonblocking(true).map_err(|e| unavailable("nonblocking listener", e))?;
        let epoll = Epoll::new().map_err(|e| unavailable("epoll_create1", e))?;
        let wake = EventFd::new().map_err(|e| unavailable("eventfd", e))?;
        epoll_ctl_op(epoll.fd(), EPOLL_CTL_ADD, wake.fd(), EPOLLIN, TOKEN_WAKE)
            .map_err(|e| unavailable("register eventfd", e))?;
        epoll_ctl_op(epoll.fd(), EPOLL_CTL_ADD, listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
            .map_err(|e| unavailable("register listener", e))?;
        let shared = Arc::new(Shared {
            service,
            epoll,
            wake,
            queue: std::sync::Mutex::new(VecDeque::new()),
            queue_cv: std::sync::Condvar::new(),
            dying: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            frames: AtomicU64::new(0),
            buffered: AtomicU64::new(0),
            write_buf_cap: config.write_buf_cap.max(FRAME_HEADER),
        });
        let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
        let reactor_shared = Arc::clone(&shared);
        let reactor = thread::Builder::new()
            .name(format!("tell-rpc-reactor-{port}"))
            .spawn(move || reactor_loop(listener, reactor_shared))
            .map_err(|e| Error::Unavailable(format!("spawn reactor failed: {e}")))?;
        let mut workers = Vec::new();
        for i in 0..config.resolved_workers() {
            let worker_shared = Arc::clone(&shared);
            let handle = thread::Builder::new()
                .name(format!("tell-rpc-worker-{port}-{i}"))
                .spawn(move || worker_loop(worker_shared))
                .map_err(|e| Error::Unavailable(format!("spawn worker failed: {e}")))?;
            workers.push(handle);
        }
        Ok(Reactor { shared, reactor: Some(reactor), workers })
    }

    pub(crate) fn frames_served(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// Stop the loop, sever every connection, join all threads. Idempotent:
    /// a second call finds the handles already taken and returns.
    pub(crate) fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify();
        self.shared.queue_cv.notify_all();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Reactor thread: accept, read, decode, queue.

/// Reactor-thread-only connection state: the shared handle plus the
/// receive-side decoder nothing else touches.
struct ConnEntry {
    conn: Arc<Conn>,
    decoder: FrameDecoder,
}

fn reactor_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut conns: HashMap<u64, ConnEntry> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut events = vec![epoll_event { events: 0, u64: 0 }; EVENT_BATCH];
    while let Ok(n) = epoll_wait_events(shared.epoll.fd(), &mut events, -1) {
        tell_obs::incr(Counter::ReactorWakeups);
        tell_obs::add(Counter::ReactorReadyEvents, n as u64);
        for &ev in events.iter().take(n) {
            let (revents, token) = (ev.events, ev.u64);
            match token {
                TOKEN_WAKE => shared.wake.drain(),
                TOKEN_LISTENER => accept_ready(&listener, &shared, &mut conns, &mut next_token),
                token => {
                    let keep = handle_conn_event(&shared, &mut conns, token, revents, &mut scratch);
                    if !keep {
                        close_conn(&shared, &mut conns, token);
                    }
                }
            }
        }
        for conn in shared.dying.lock().drain(..) {
            close_conn(&shared, &mut conns, conn.token);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    // Teardown: sever everything. Parked clients observe EOF and surface
    // typed Unavailable through their pools, same as the threaded server.
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        close_conn(&shared, &mut conns, token);
    }
}

fn accept_ready(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, ConnEntry>,
    next_token: &mut u64,
) {
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        let conn = Arc::new(Conn {
            token,
            stream,
            peer,
            io: Mutex::new(ConnIo { wbuf: BytesMut::new(), interest, paused: false }),
            pending: Mutex::new(VecDeque::new()),
            queued: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            eof: AtomicBool::new(false),
        });
        if epoll_ctl_op(shared.epoll.fd(), EPOLL_CTL_ADD, conn.fd(), interest, token).is_err() {
            continue;
        }
        conns.insert(token, ConnEntry { conn, decoder: FrameDecoder::new() });
    }
}

/// React to readiness on one connection. Returns false when the connection
/// must close now (fatal read/write error or decode desync).
fn handle_conn_event(
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, ConnEntry>,
    token: u64,
    revents: u32,
    scratch: &mut [u8],
) -> bool {
    let Some(entry) = conns.get_mut(&token) else { return true };
    if entry.conn.dead.load(Ordering::Relaxed) {
        return false;
    }
    if revents & EPOLLERR != 0 {
        return false;
    }
    if revents & EPOLLOUT != 0 {
        let pending_len = entry.conn.pending.lock().len();
        let mut io = entry.conn.io.lock();
        if flush_locked(shared, &entry.conn, &mut io).is_err() {
            return false;
        }
        set_interest_locked(shared, &entry.conn, &mut io, pending_len);
    }
    if revents & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 && !read_ready(shared, entry, scratch) {
        return false;
    }
    // A drained EOF connection with nothing queued retires here (the
    // workers retire it otherwise, once they finish its backlog).
    let conn = Arc::clone(&entry.conn);
    if conn.eof.load(Ordering::Relaxed) && !conn.queued.load(Ordering::Acquire) {
        maybe_retire(shared, &conn);
    }
    true
}

/// Drain the socket into the decoder and the decoder into the dispatch
/// queue. Returns false on a fatal error (reset, desynchronized stream).
fn read_ready(shared: &Arc<Shared>, entry: &mut ConnEntry, scratch: &mut [u8]) -> bool {
    let conn = &entry.conn;
    if conn.eof.load(Ordering::Relaxed) {
        return true;
    }
    loop {
        match (&conn.stream).read(scratch) {
            Ok(0) => {
                conn.eof.store(true, Ordering::Relaxed);
                break;
            }
            Ok(n) => {
                entry.decoder.push(&scratch[..n]);
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    let mut decoded = 0usize;
    let pending_len = loop {
        match entry.decoder.next_frame() {
            Ok(Some((corr_id, body))) => {
                shared.frames.fetch_add(1, Ordering::SeqCst);
                tell_obs::incr(Counter::RpcServerFramesIn);
                tell_obs::add(Counter::RpcServerBytesIn, body.len() as u64);
                let mut pending = conn.pending.lock();
                pending.push_back((corr_id, body));
                decoded += 1;
            }
            Ok(None) => break conn.pending.lock().len(),
            Err(_) => return false,
        }
    };
    if decoded > 0 {
        enqueue_dispatch(shared, conn);
    }
    let mut io = conn.io.lock();
    set_interest_locked(shared, conn, &mut io, pending_len);
    true
}

fn enqueue_dispatch(shared: &Shared, conn: &Arc<Conn>) {
    if !conn.queued.swap(true, Ordering::AcqRel) {
        let mut queue = shared.queue.lock().expect("queue lock");
        queue.push_back(Arc::clone(conn));
        tell_obs::set_gauge(Gauge::ReactorQueueDepth, queue.len() as u64);
        shared.queue_cv.notify_one();
    }
}

/// Deregister, sever and forget a connection. Reactor thread only: the
/// `TcpStream` (and with it the fd) stays alive until the last `Arc<Conn>`
/// drops, so a worker still holding the connection can never touch a
/// recycled descriptor.
fn close_conn(shared: &Shared, conns: &mut HashMap<u64, ConnEntry>, token: u64) {
    let Some(entry) = conns.remove(&token) else { return };
    entry.conn.dead.store(true, Ordering::SeqCst);
    let _ = epoll_ctl_op(shared.epoll.fd(), EPOLL_CTL_DEL, entry.conn.fd(), 0, 0);
    let dropped = {
        let mut io = entry.conn.io.lock();
        let dropped = io.wbuf.len();
        io.wbuf.clear();
        dropped
    };
    if dropped > 0 {
        shared.note_buffered_sub(dropped);
    }
    entry.conn.pending.lock().clear();
    let _ = entry.conn.stream.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Write path + interest management (reactor and workers, under `io`).

/// Write as much buffered reply data as the socket accepts — the whole
/// backlog per syscall, since the buffer is contiguous. Leftovers wait for
/// `EPOLLOUT` (armed by the caller's interest update).
fn flush_locked(shared: &Shared, conn: &Conn, io: &mut ConnIo) -> io::Result<()> {
    while !io.wbuf.is_empty() {
        match (&conn.stream).write(&io.wbuf[..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => {
                io.wbuf.advance(n);
                shared.note_buffered_sub(n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Recompute and (when changed) re-register this connection's interest
/// set. Holds the write-cap hysteresis: reads pause above the cap and
/// resume below half of it, counting each pause transition.
fn set_interest_locked(shared: &Shared, conn: &Conn, io: &mut ConnIo, pending_len: usize) {
    if conn.dead.load(Ordering::Relaxed) {
        return;
    }
    let cap = shared.write_buf_cap;
    let buffered = io.wbuf.len();
    let write_full = if io.paused { buffered > cap / 2 } else { buffered > cap };
    if write_full && !io.paused {
        tell_obs::incr(Counter::ConnBackpressure);
    }
    io.paused = write_full;
    let mut want = EPOLLRDHUP;
    if !write_full && pending_len <= PENDING_PAUSE && !conn.eof.load(Ordering::Relaxed) {
        want |= EPOLLIN;
    }
    if !io.wbuf.is_empty() {
        want |= EPOLLOUT;
    }
    if want != io.interest {
        io.interest = want;
        let _ = epoll_ctl_op(shared.epoll.fd(), EPOLL_CTL_MOD, conn.fd(), want, conn.token);
    }
}

/// Condemn a connection from a worker: mark it dead, drop its backlog and
/// let the reactor deregister + close it on the next wakeup.
fn sever(shared: &Shared, conn: &Arc<Conn>) {
    if conn.dead.swap(true, Ordering::AcqRel) {
        return;
    }
    conn.pending.lock().clear();
    shared.dying.lock().push(Arc::clone(conn));
    shared.wake.notify();
}

/// Retire a connection whose peer sent EOF once all its work is done:
/// every decoded frame dispatched and every reply written.
fn maybe_retire(shared: &Shared, conn: &Arc<Conn>) {
    if !conn.eof.load(Ordering::Relaxed) || conn.dead.load(Ordering::Relaxed) {
        return;
    }
    let drained = conn.pending.lock().is_empty() && conn.io.lock().wbuf.is_empty();
    if drained {
        sever(shared, conn);
    }
}

// ---------------------------------------------------------------------------
// Worker pool: dispatch off the reactor thread.

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(conn) = queue.pop_front() {
                    tell_obs::set_gauge(Gauge::ReactorQueueDepth, queue.len() as u64);
                    break conn;
                }
                queue = shared.queue_cv.wait(queue).expect("queue lock");
            }
        };
        drain_conn(&shared, conn);
    }
}

/// Dispatch up to one budget's worth of this connection's frames, FIFO.
/// The connection stays exclusively ours until we clear `queued` — the
/// per-connection ordering guarantee.
fn drain_conn(shared: &Arc<Shared>, conn: Arc<Conn>) {
    for _ in 0..FRAME_BUDGET {
        if shared.shutdown.load(Ordering::SeqCst) || conn.dead.load(Ordering::Relaxed) {
            break;
        }
        let Some((corr_id, body)) = conn.pending.lock().pop_front() else { break };
        process_frame(shared, &conn, corr_id, body);
    }
    if conn.dead.load(Ordering::Relaxed) {
        conn.pending.lock().clear();
        let _io = conn.io.lock();
        conn.queued.store(false, Ordering::Release);
        return;
    }
    let remaining = conn.pending.lock().len();
    // One flush for the whole batch: every reply the loop above buffered
    // goes out in a single syscall. Reads may also resume now that the
    // backlog shrank.
    let flushed = {
        let mut io = conn.io.lock();
        let flushed = flush_locked(shared, &conn, &mut io).is_ok();
        if flushed {
            set_interest_locked(shared, &conn, &mut io, remaining);
        }
        if !flushed || remaining == 0 {
            // Release ownership under the `io` lock: any deferred reply
            // that skipped its own flush because it saw `queued` set has
            // already appended under this lock, so the flush above (or the
            // close below) covered it.
            conn.queued.store(false, Ordering::Release);
        }
        flushed
    };
    if !flushed {
        sever(shared, &conn);
        return;
    }
    if remaining > 0 {
        // Budget exhausted: rotate to the back of the line, still owned.
        let mut queue = shared.queue.lock().expect("queue lock");
        queue.push_back(conn);
        tell_obs::set_gauge(Gauge::ReactorQueueDepth, queue.len() as u64);
        shared.queue_cv.notify_one();
        return;
    }
    // Re-check: the reactor may have pushed a frame after our emptiness
    // check but skipped the queue because we still held `queued`.
    if !conn.pending.lock().is_empty() {
        enqueue_dispatch(shared, &conn);
        return;
    }
    maybe_retire(shared, &conn);
}

/// Fault-inject, dispatch, and route the reply into the write buffer.
fn process_frame(shared: &Arc<Shared>, conn: &Arc<Conn>, corr_id: u64, body: Bytes) {
    // The fault injector (when armed by the simulation harness) acts on
    // the frame as a unit, before any dispatch side effects: a dropped
    // frame kills the stream like a broken link would, a delayed frame
    // holds up everything pipelined behind it on this connection, a
    // duplicated frame re-dispatches — at-least-once delivery the
    // protocol must absorb.
    let injected = crate::fault::server_action();
    if injected == crate::fault::ServerFault::Drop {
        sever(shared, conn);
        return;
    }
    if let crate::fault::ServerFault::DelayUs(us) = injected {
        thread::sleep(std::time::Duration::from_micros(us));
    }
    let duplicate = injected == crate::fault::ServerFault::Duplicate;
    let reply_shared = Arc::clone(shared);
    let reply_conn = Arc::clone(conn);
    dispatch_frame(
        shared.service.as_ref(),
        duplicate,
        Some(conn.peer),
        &body,
        move |ctx, response| {
            let out = response.encode();
            tell_obs::incr(Counter::RpcServerFramesOut);
            tell_obs::add(Counter::RpcServerBytesOut, out.len() as u64);
            let mut framed = Vec::with_capacity(FRAME_HEADER + 17 + out.len());
            if write_frame_ctx(&mut framed, corr_id, ctx, &out).is_err() {
                // Response exceeds MAX_FRAME: unframeable, the stream
                // cannot stay synchronized. Sever, as the blocking server's
                // failed write did.
                sever(&reply_shared, &reply_conn);
                return;
            }
            enqueue_write(&reply_shared, &reply_conn, framed);
        },
    );
}

/// Append an encoded frame to the connection's write buffer and flush
/// opportunistically. On `WouldBlock` the interest update arms `EPOLLOUT`
/// and the reactor finishes the job; past the write cap the interest
/// update also stops reading (backpressure).
fn enqueue_write(shared: &Arc<Shared>, conn: &Arc<Conn>, framed: Vec<u8>) {
    if conn.dead.load(Ordering::Relaxed) {
        return;
    }
    let pending_len = conn.pending.lock().len();
    let mut io = conn.io.lock();
    io.wbuf.extend_from_slice(&framed);
    shared.note_buffered_add(framed.len());
    // A worker owns this connection while `queued` is set, and it flushes
    // the whole accumulated batch in one syscall as it releases ownership
    // (both under this `io` lock) — so appending is all that's needed here.
    if conn.queued.load(Ordering::Acquire) {
        return;
    }
    if flush_locked(shared, conn, &mut io).is_err() {
        drop(io);
        sever(shared, conn);
        return;
    }
    set_interest_locked(shared, conn, &mut io, pending_len);
}

//! Property tests for the tell-rpc wire format: every message round-trips
//! through its encoding, and no truncation of a valid message decodes.

use bytes::Bytes;
use proptest::prelude::*;
use tell_commitmgr::SnapshotDescriptor;
use tell_common::{BitSet, IsolationLevel, TxnId};
use tell_obs::{PhaseDigest, Span, SpanAttrs, SpanKind, SpanStatus, TelemetryPage, TsPoint};
use tell_rpc::wire::{
    append_isolation, decode_request_iso, read_frame, split_context, split_trace, write_frame,
    write_frame_ctx, write_frame_traced, TraceContext, FRAME_HEADER,
};
use tell_rpc::{FrameDecoder, Request, Response, WireError, MAX_FRAME};
use tell_store::{CmpOp, Expect, Predicate, WriteOp};

/// Keys up to the longest the system composes in practice (`keys::record`
/// and friends stay well under this), biased toward the interesting
/// boundary lengths 0 and max.
const MAX_KEY: usize = 256;

fn bytes_strategy(max: usize) -> impl Strategy<Value = Bytes> {
    prop_oneof![
        2 => Just(Bytes::new()),
        1 => prop::collection::vec(any::<u8>(), max).prop_map(Bytes::from),
        5 => prop::collection::vec(any::<u8>(), 0..32).prop_map(Bytes::from),
    ]
}

fn key_strategy() -> impl Strategy<Value = Bytes> {
    bytes_strategy(MAX_KEY)
}

fn expect_strategy() -> impl Strategy<Value = Expect> {
    prop_oneof![Just(Expect::Any), Just(Expect::Absent), any::<u64>().prop_map(Expect::Token),]
}

fn write_op_strategy() -> impl Strategy<Value = WriteOp> {
    (key_strategy(), expect_strategy(), prop::option::of(bytes_strategy(64)))
        .prop_map(|(key, expect, value)| WriteOp { key, expect, value })
}

fn wire_error_strategy() -> impl Strategy<Value = WireError> {
    let msg = || ".{0,24}".prop_map(String::from);
    prop_oneof![
        Just(WireError::Conflict),
        msg().prop_map(WireError::Aborted),
        Just(WireError::NotFound),
        msg().prop_map(WireError::Unavailable),
        (any::<u32>(), any::<u64>())
            .prop_map(|(node, capacity)| WireError::CapacityExceeded { node, capacity }),
        msg().prop_map(WireError::Corrupt),
        msg().prop_map(WireError::InvalidOperation),
        (msg(), any::<u64>())
            .prop_map(|(message, position)| WireError::Parse { message, position }),
        msg().prop_map(WireError::Query),
        msg().prop_map(WireError::Unsupported),
    ]
}

fn snapshot_strategy() -> impl Strategy<Value = SnapshotDescriptor> {
    (any::<u64>(), prop::collection::btree_set(0usize..256, 0..24)).prop_map(|(base, ones)| {
        let mut bits = BitSet::new();
        for n in ones {
            bits.set(n);
        }
        SnapshotDescriptor::new(base, bits)
    })
}

fn cell_strategy() -> impl Strategy<Value = Option<(u64, Bytes)>> {
    prop::option::of((any::<u64>(), bytes_strategy(64)))
}

fn cmp_op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Predicate trees up to `depth` combinator levels deep (well inside
/// `MAX_PREDICATE_DEPTH`, which has its own dedicated unit tests).
fn predicate_strategy_at(depth: usize) -> BoxedStrategy<Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        key_strategy().prop_map(Predicate::KeyPrefix),
        bytes_strategy(32).prop_map(Predicate::ValuePrefix),
        (0usize..64, cmp_op_strategy(), bytes_strategy(16))
            .prop_map(|(offset, op, literal)| Predicate::ValueCompare { offset, op, literal }),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = predicate_strategy_at(depth - 1);
    prop_oneof![
        3 => leaf,
        1 => prop::collection::vec(inner.clone(), 0..4).prop_map(Predicate::All),
        1 => prop::collection::vec(inner.clone(), 0..4).prop_map(Predicate::Any),
        1 => inner.prop_map(|p| Predicate::Not(Box::new(p))),
    ]
    .boxed()
}

fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    predicate_strategy_at(2)
}

fn span_kind_strategy() -> impl Strategy<Value = SpanKind> {
    (0..SpanKind::ALL.len()).prop_map(|i| SpanKind::ALL[i])
}

fn span_status_strategy() -> impl Strategy<Value = SpanStatus> {
    prop_oneof![Just(SpanStatus::Ok), Just(SpanStatus::Conflict), Just(SpanStatus::Error)]
}

/// Spans with finite virtual clocks (real timers never record NaN or
/// infinities, and `PartialEq` on the round-trip demands reflexive floats).
fn span_strategy() -> impl Strategy<Value = Span> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), span_kind_strategy()),
        (0u32..1_000_000, 0u32..1_000_000, any::<u64>(), any::<u64>()),
        (any::<u32>(), span_status_strategy()),
    )
        .prop_map(|((trace, id, parent, kind), (sv, ev, sw, ew), (count, status))| Span {
            trace,
            id,
            parent,
            kind,
            start_virt_us: sv as f64,
            end_virt_us: ev as f64,
            start_wall_us: sw,
            end_wall_us: ew,
            attrs: SpanAttrs { count, status },
        })
}

/// Every `Request` variant, all fields randomized.
fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        key_strategy().prop_map(|key| Request::Get { key }),
        prop::collection::vec(key_strategy(), 0..6).prop_map(|keys| Request::MultiGet { keys }),
        write_op_strategy().prop_map(|op| Request::Write { op }),
        prop::collection::vec(write_op_strategy(), 0..6)
            .prop_map(|ops| Request::MultiWrite { ops }),
        (key_strategy(), any::<u64>()).prop_map(|(key, delta)| Request::Increment { key, delta }),
        (key_strategy(), prop::option::of(key_strategy()), any::<u64>(), any::<bool>())
            .prop_map(|(start, end, limit, reverse)| Request::Scan { start, end, limit, reverse }),
        (key_strategy(), any::<u64>())
            .prop_map(|(prefix, limit)| Request::ScanPrefix { prefix, limit }),
        (key_strategy(), any::<u64>(), predicate_strategy()).prop_map(
            |(prefix, limit, predicate)| Request::ScanPrefixFiltered { prefix, limit, predicate }
        ),
        Just(Request::Ping),
        any::<u64>().prop_map(|hint| Request::CmStart { hint }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(tid, committed)| Request::CmComplete { tid: TxnId(tid), committed }),
        Just(Request::CmLav),
        Just(Request::CmSync),
        (any::<u64>(), any::<bool>())
            .prop_map(|(tid, committed)| Request::CmResolve { tid: TxnId(tid), committed }),
        any::<bool>().prop_map(|drain| Request::Spans { drain }),
        any::<u64>().prop_map(|since| Request::Telemetry { since }),
    ]
}

/// Metric names as the registry produces them (snake_case identifiers).
fn metric_name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,30}"
}

/// Time-series points with finite clocks and digests, the domain `Rollup`
/// produces (reflexive floats, so `PartialEq` holds on the round trip).
fn ts_point_strategy() -> impl Strategy<Value = TsPoint> {
    (
        (any::<u64>(), 0u32..1_000_000, any::<u64>()),
        prop::collection::vec(any::<u64>(), 0..8),
        prop::collection::vec(any::<u64>(), 0..8),
        prop::collection::vec(
            (any::<u64>(), 0u32..1_000_000, 0u32..1_000_000, 0u32..1_000_000).prop_map(
                |(count, p50, p99, p999)| PhaseDigest {
                    count,
                    p50: p50 as f64,
                    p99: p99 as f64,
                    p999: p999 as f64,
                },
            ),
            0..4,
        ),
    )
        .prop_map(|((seq, virt, wall_us), counters, gauges, phases)| TsPoint {
            seq,
            virt_us: virt as f64,
            wall_us,
            counters,
            gauges,
            phases,
        })
}

fn telemetry_page_strategy() -> impl Strategy<Value = TelemetryPage> {
    (
        prop::collection::vec(metric_name_strategy(), 0..6),
        prop::collection::vec(metric_name_strategy(), 0..6),
        prop::collection::vec(metric_name_strategy(), 0..4),
        prop::collection::vec(ts_point_strategy(), 0..4),
        any::<u64>(),
    )
        .prop_map(|(counter_names, gauge_names, phase_names, points, next_cursor)| {
            TelemetryPage { counter_names, gauge_names, phase_names, points, next_cursor }
        })
}

/// Every `Response` variant, all fields randomized.
fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        wire_error_strategy().prop_map(Response::Error),
        cell_strategy().prop_map(Response::Cell),
        prop::collection::vec(cell_strategy(), 0..6).prop_map(Response::Cells),
        prop::option::of(any::<u64>()).prop_map(Response::Written),
        prop::collection::vec(
            prop_oneof![
                prop::option::of(any::<u64>()).prop_map(Ok),
                wire_error_strategy().prop_map(Err),
            ],
            0..6,
        )
        .prop_map(Response::WriteResults),
        any::<u64>().prop_map(Response::Counter),
        prop::collection::vec((key_strategy(), any::<u64>(), bytes_strategy(64)), 0..6)
            .prop_map(Response::Rows),
        Just(Response::Pong),
        (any::<u64>(), any::<u64>(), snapshot_strategy()).prop_map(|(tid, lav, snapshot)| {
            Response::TxnStarted { tid: TxnId(tid), lav, snapshot }
        }),
        Just(Response::Unit),
        any::<u64>().prop_map(Response::Lav),
        prop::collection::vec(span_strategy(), 0..6).prop_map(Response::Spans),
        telemetry_page_strategy().prop_map(Response::Telemetry),
    ]
}

/// Any request the client can frame: a plain message, or a one-level batch
/// of plain messages (the protocol forbids deeper nesting).
fn any_request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        3 => request_strategy(),
        1 => prop::collection::vec(request_strategy(), 0..5)
            .prop_map(|ops| Request::Batch { ops }),
    ]
}

/// Any response the server can frame, including batches whose per-op slots
/// mix successes with typed errors.
fn any_response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        3 => response_strategy(),
        1 => prop::collection::vec(response_strategy(), 0..5)
            .prop_map(|results| Response::Batch { results }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrips(request in any_request_strategy()) {
        let encoded = request.encode();
        prop_assert_eq!(Request::decode(&encoded).unwrap(), request);
    }

    #[test]
    fn response_roundtrips(response in any_response_strategy()) {
        let encoded = response.encode();
        prop_assert_eq!(Response::decode(&encoded).unwrap(), response);
    }

    /// No strict prefix of a valid message decodes — a truncated body can
    /// never be mistaken for a (different) complete message.
    #[test]
    fn truncated_requests_never_decode(request in any_request_strategy()) {
        let encoded = request.encode();
        for cut in 0..encoded.len() {
            prop_assert!(
                Request::decode(&encoded[..cut]).is_err(),
                "prefix of length {} decoded", cut
            );
        }
    }

    #[test]
    fn truncated_responses_never_decode(response in any_response_strategy()) {
        let encoded = response.encode();
        for cut in 0..encoded.len() {
            prop_assert!(
                Response::decode(&encoded[..cut]).is_err(),
                "prefix of length {} decoded", cut
            );
        }
    }

    /// A batch response maps every nested per-op outcome — success or typed
    /// error — back to exactly the slot it was framed in.
    #[test]
    fn batch_slots_keep_their_order_and_errors(
        results in prop::collection::vec(response_strategy(), 0..5)
    ) {
        let encoded = Response::Batch { results: results.clone() }.encode();
        match Response::decode(&encoded).unwrap() {
            Response::Batch { results: decoded } => prop_assert_eq!(decoded, results),
            other => prop_assert!(false, "decoded to {:?}", other),
        }
    }

    /// A frame round-trips, and cutting it anywhere turns it into either a
    /// clean end-of-stream (cut at byte 0) or a hard I/O error — never a
    /// silently short frame.
    #[test]
    fn truncated_frames_are_rejected(
        request in request_strategy(),
        corr_id in any::<u64>(),
    ) {
        let body = request.encode();
        let mut framed = Vec::new();
        write_frame(&mut framed, corr_id, &body).unwrap();
        prop_assert_eq!(framed.len(), FRAME_HEADER + body.len());

        let (got_corr, got_body) =
            read_frame(&mut &framed[..]).unwrap().expect("whole frame reads back");
        prop_assert_eq!(got_corr, corr_id);
        prop_assert_eq!(&got_body, &body);

        prop_assert!(read_frame(&mut &framed[..0]).unwrap().is_none(), "empty = clean EOF");
        for cut in 1..framed.len() {
            prop_assert!(
                read_frame(&mut &framed[..cut]).is_err(),
                "frame prefix of length {} read back", cut
            );
        }
    }

    /// The three frame generations coexist on one wire: a span-carrying
    /// frame round-trips its full context, a trace-only context is
    /// byte-identical to what the older `write_frame_traced` emits, and an
    /// uncontexted frame is byte-identical to a v1 frame — so peers that
    /// predate spans (or traces) still decode everything they produce.
    #[test]
    fn frame_generations_coexist(
        request in request_strategy(),
        corr_id in any::<u64>(),
        trace in 1..u64::MAX,
        parent_span in 1..u64::MAX,
    ) {
        let body = request.encode();

        // Span-carrying: context survives the trip and split_trace (the
        // trace-only reader) still sees the trace id.
        let ctx = TraceContext { trace, parent_span };
        let mut framed = Vec::new();
        write_frame_ctx(&mut framed, corr_id, Some(ctx), &body).unwrap();
        let (got_corr, got_body) = read_frame(&mut &framed[..]).unwrap().unwrap();
        prop_assert_eq!(got_corr, corr_id);
        let (got_ctx, msg) = split_context(&got_body).unwrap();
        prop_assert_eq!(got_ctx, Some(ctx));
        prop_assert_eq!(&Request::decode(msg).unwrap(), &request);
        let (got_trace, msg) = split_trace(&got_body).unwrap();
        prop_assert_eq!(got_trace, Some(trace));
        prop_assert_eq!(&Request::decode(msg).unwrap(), &request);

        // Span-less v2: parent 0 degrades to the trace-marker form.
        let mut with_ctx = Vec::new();
        let span_less = TraceContext { trace, parent_span: 0 };
        write_frame_ctx(&mut with_ctx, corr_id, Some(span_less), &body).unwrap();
        let mut with_trace = Vec::new();
        write_frame_traced(&mut with_trace, corr_id, Some(trace), &body).unwrap();
        prop_assert_eq!(&with_ctx, &with_trace);
        let (_, got_body) = read_frame(&mut &with_ctx[..]).unwrap().unwrap();
        prop_assert_eq!(split_context(&got_body).unwrap().0, Some(span_less));

        // Uncontexted: byte-identical to v1, and a v1 body splits to None.
        let mut v2_none = Vec::new();
        write_frame_ctx(&mut v2_none, corr_id, None, &body).unwrap();
        let mut v1 = Vec::new();
        write_frame(&mut v1, corr_id, &body).unwrap();
        prop_assert_eq!(&v2_none, &v1);
        let (_, got_body) = read_frame(&mut &v1[..]).unwrap().unwrap();
        let (got_ctx, msg) = split_context(&got_body).unwrap();
        prop_assert_eq!(got_ctx, None);
        prop_assert_eq!(&Request::decode(msg).unwrap(), &request);
    }

    /// The incremental [`FrameDecoder`] (the reactor's receive path) agrees
    /// with the blocking `read_frame` no matter how the byte stream is cut:
    /// a mixed run of v1 / trace-only / span-carrying frames fed one byte at
    /// a time — every split point a TCP segmentation could produce — and
    /// again in arbitrary chunk sizes, yields the identical frame sequence,
    /// with no frame surfacing before its last byte arrives.
    #[test]
    fn frame_decoder_agrees_with_read_frame_at_every_split(
        frames in prop::collection::vec(
            (
                request_strategy(),
                any::<u64>(),
                prop::option::of((1..u64::MAX, any::<u64>())),
            ),
            1..5,
        ),
        chunk_sizes in prop::collection::vec(1usize..9, 1..16),
    ) {
        let mut stream = Vec::new();
        for (request, corr_id, ctx) in &frames {
            let ctx = ctx.map(|(trace, parent_span)| TraceContext { trace, parent_span });
            write_frame_ctx(&mut stream, *corr_id, ctx, &request.encode()).unwrap();
        }
        let mut reader = &stream[..];
        let mut expected = Vec::new();
        while let Some((corr_id, body)) = read_frame(&mut reader).unwrap() {
            expected.push((corr_id, body));
        }
        prop_assert_eq!(expected.len(), frames.len());

        // Byte at a time: the worst case, hitting every split point.
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &byte in &stream {
            decoder.push(&[byte]);
            while let Some((corr_id, body)) = decoder.next_frame().unwrap() {
                got.push((corr_id, body.to_vec()));
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert!(decoder.is_idle(), "no partial frame may linger");

        // Arbitrary chunk sizes (cycled over the generated list).
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        let mut offset = 0;
        for chunk in chunk_sizes.iter().cycle() {
            if offset >= stream.len() {
                break;
            }
            let end = (offset + chunk).min(stream.len());
            decoder.push(&stream[offset..end]);
            offset = end;
            while let Some((corr_id, body)) = decoder.next_frame().unwrap() {
                got.push((corr_id, body.to_vec()));
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert!(decoder.is_idle());
    }

    /// The isolation suffix rides every frame generation: appended after
    /// the message it survives a v1, trace-only or span-carrying frame,
    /// strips back to exactly the level the client pinned, and a
    /// suffix-less body decodes to `None` (an old client at the default
    /// level) — the backward-compatibility contract of `ISO_MARKER`.
    #[test]
    fn isolation_suffix_rides_every_frame_generation(
        request in request_strategy(),
        corr_id in any::<u64>(),
        level_idx in 0..IsolationLevel::ALL.len(),
        ctx in prop::option::of((1..u64::MAX, any::<u64>())),
    ) {
        let level = IsolationLevel::ALL[level_idx];
        let mut body = request.encode();
        append_isolation(&mut body, level);
        let ctx = ctx.map(|(trace, parent_span)| TraceContext { trace, parent_span });
        let mut framed = Vec::new();
        write_frame_ctx(&mut framed, corr_id, ctx, &body).unwrap();
        let (got_corr, got_body) = read_frame(&mut &framed[..]).unwrap().unwrap();
        prop_assert_eq!(got_corr, corr_id);
        let (got_ctx, msg) = split_context(&got_body).unwrap();
        prop_assert_eq!(got_ctx, ctx);
        let (got_req, got_level) = decode_request_iso(msg).unwrap();
        prop_assert_eq!(&got_req, &request);
        prop_assert_eq!(got_level, Some(level));

        // The same body without the suffix carries no level pin.
        let (got_req, got_level) = decode_request_iso(&request.encode()).unwrap();
        prop_assert_eq!(&got_req, &request);
        prop_assert_eq!(got_level, None);
    }

    /// A mixed stream of suffixed and plain requests across all frame
    /// generations, fed to the incremental decoder one byte at a time
    /// (every split point TCP segmentation could produce), agrees with the
    /// blocking `read_frame`, and every body decodes back to exactly the
    /// (request, level) pair that was framed.
    #[test]
    fn iso_suffixed_streams_survive_every_split_point(
        frames in prop::collection::vec(
            (
                request_strategy(),
                any::<u64>(),
                prop::option::of(0..IsolationLevel::ALL.len()),
                prop::option::of((1..u64::MAX, any::<u64>())),
            ),
            1..4,
        ),
    ) {
        let mut stream = Vec::new();
        for (request, corr_id, level_idx, ctx) in &frames {
            let mut body = request.encode();
            if let Some(i) = level_idx {
                append_isolation(&mut body, IsolationLevel::ALL[*i]);
            }
            let ctx = ctx.map(|(trace, parent_span)| TraceContext { trace, parent_span });
            write_frame_ctx(&mut stream, *corr_id, ctx, &body).unwrap();
        }

        let mut reader = &stream[..];
        let mut expected = Vec::new();
        while let Some((corr_id, body)) = read_frame(&mut reader).unwrap() {
            expected.push((corr_id, body));
        }
        prop_assert_eq!(expected.len(), frames.len());

        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &byte in &stream {
            decoder.push(&[byte]);
            while let Some((corr_id, body)) = decoder.next_frame().unwrap() {
                got.push((corr_id, body.to_vec()));
            }
        }
        prop_assert_eq!(&got, &expected);
        prop_assert!(decoder.is_idle());

        for ((request, _, level_idx, _), (_, body)) in frames.iter().zip(&got) {
            let (_, msg) = split_context(body).unwrap();
            let (req, level) = decode_request_iso(msg).unwrap();
            prop_assert_eq!(&req, request);
            prop_assert_eq!(level, level_idx.map(|i| IsolationLevel::ALL[i]));
        }
    }
}

#[test]
fn zero_length_values_survive_the_full_cycle() {
    let op = WriteOp { key: Bytes::new(), expect: Expect::Absent, value: Some(Bytes::new()) };
    let request = Request::Write { op };
    assert_eq!(Request::decode(&request.encode()).unwrap(), request);

    let response = Response::Cell(Some((0, Bytes::new())));
    assert_eq!(Response::decode(&response.encode()).unwrap(), response);
}

#[test]
fn frame_decoder_rejects_desynchronized_lengths() {
    // len < 8 (no room for the correlation id): corrupt, not "wait for more".
    let mut decoder = FrameDecoder::new();
    decoder.push(&3u32.to_le_bytes());
    assert!(decoder.next_frame().is_err());

    // len > MAX_FRAME: corrupt immediately, before any body bytes arrive.
    let mut decoder = FrameDecoder::new();
    decoder.push(&((MAX_FRAME as u32) + 1).to_le_bytes());
    assert!(decoder.next_frame().is_err());

    // A mid-frame cut is not an error — just not a frame yet.
    let mut framed = Vec::new();
    write_frame(&mut framed, 7, &Request::Ping.encode()).unwrap();
    let mut decoder = FrameDecoder::new();
    decoder.push(&framed[..framed.len() - 1]);
    assert!(decoder.next_frame().unwrap().is_none());
    assert!(!decoder.is_idle());
    assert_eq!(decoder.buffered(), framed.len() - 1);
}

#[test]
fn megabyte_keys_roundtrip() {
    let key = Bytes::from(vec![0xa5u8; 1 << 20]);
    let request = Request::Get { key: key.clone() };
    assert_eq!(Request::decode(&request.encode()).unwrap(), request);

    let response = Response::Rows(vec![(key, 7, Bytes::from_static(b"v"))]);
    assert_eq!(Response::decode(&response.encode()).unwrap(), response);
}

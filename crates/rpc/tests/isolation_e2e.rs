//! Per-transaction isolation levels over real loopback TCP: the level
//! rides the `CmStart` frame as the `ISO_MARKER` suffix, the commit
//! servers serve level-appropriate snapshots, and two clients running at
//! different levels observe exactly the anomalies their levels admit —
//! write skew commits cleanly at SI and dies with a *typed* conflict at
//! serializable; NMSI reads a stale cached snapshot while a concurrent SI
//! client sees the freshest one. Every failure path returns promptly:
//! typed errors, never hangs.

use std::sync::Arc;

use bytes::Bytes;
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CommitService};
use tell_common::{Error, IsolationLevel};
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};
use tell_rpc::{RemoteCmClient, RemoteEndpoint, RpcServer};
use tell_store::{StoreCluster, StoreConfig};

struct Servers {
    _sn: RpcServer,
    _cm: RpcServer,
}

/// Boot a storage server and a commit server on loopback and open a
/// database over remote clients only — the same deployment shape as the
/// main e2e suite.
fn boot(nodes: usize, cms: usize) -> (Servers, Arc<Database<RemoteEndpoint>>) {
    let store = StoreCluster::new(StoreConfig::new(nodes));
    let sn = RpcServer::serve_store("127.0.0.1:0", Arc::clone(&store)).unwrap();
    let sn_addr = sn.local_addr().to_string();

    let cm_cluster =
        CmCluster::new(RemoteEndpoint::connect(sn_addr.clone(), 2), cms, CmConfig::default());
    let cm = RpcServer::serve_commit("127.0.0.1:0", cm_cluster as Arc<dyn CommitService>).unwrap();
    let cm_addr = cm.local_addr().to_string();

    let endpoint = RemoteEndpoint::connect(sn_addr, 4);
    let commit: Arc<dyn CommitService> = Arc::new(RemoteCmClient::connect([cm_addr]));
    let db = Database::open(endpoint, commit, TellConfig::default());
    (Servers { _sn: sn, _cm: cm }, db)
}

fn account(balance: u64, id: u64) -> Bytes {
    let mut b = balance.to_be_bytes().to_vec();
    b.extend_from_slice(&id.to_be_bytes());
    Bytes::from(b)
}

fn balance_of(row: &[u8]) -> u64 {
    u64::from_be_bytes(row[..8].try_into().unwrap())
}

fn pk_spec() -> IndexSpec {
    IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice))
}

/// The classic write-skew dance: two transactions read both accounts,
/// check the invariant `x + y >= 100`, and each withdraws from a
/// *different* account. Returns the second committer's result.
fn run_skew(db: &Arc<Database<RemoteEndpoint>>, level: IsolationLevel) -> (Result<(), Error>, u64) {
    let table = db.create_table(&format!("skew_{level}"), vec![pk_spec()]).unwrap();
    let rids = db.bulk_load(&table, vec![account(60, 0), account(60, 1)]).unwrap();
    let (x, y) = (rids[0], rids[1]);

    let pn1 = db.processing_node();
    let pn2 = db.processing_node();
    let mut t1 = pn1.begin_at(level).unwrap();
    let mut t2 = pn2.begin_at(level).unwrap();

    let total1 = balance_of(&t1.get(&table, x).unwrap().unwrap())
        + balance_of(&t1.get(&table, y).unwrap().unwrap());
    let total2 = balance_of(&t2.get(&table, x).unwrap().unwrap())
        + balance_of(&t2.get(&table, y).unwrap().unwrap());
    assert_eq!(total1, 120);
    assert_eq!(total2, 120);

    // Both believe the invariant survives a 20-unit withdrawal; their
    // write sets are disjoint, so no LL/SC conflict arises at SI.
    assert!(total1 - 20 >= 100);
    t1.update(&table, x, account(40, 0)).unwrap();
    t2.update(&table, y, account(40, 1)).unwrap();

    t1.commit().unwrap();
    let second = t2.commit();

    let pn = db.processing_node();
    let mut reader = pn.begin().unwrap();
    let total = balance_of(&reader.get(&table, x).unwrap().unwrap())
        + balance_of(&reader.get(&table, y).unwrap().unwrap());
    reader.commit().unwrap();
    (second, total)
}

#[test]
fn write_skew_commits_at_si_over_tcp() {
    let (_servers, db) = boot(2, 1);
    let (second, total) = run_skew(&db, IsolationLevel::Si);
    second.expect("SI admits write skew: disjoint write sets never conflict");
    assert_eq!(total, 80, "the invariant broke, as SI allows");
}

#[test]
fn write_skew_dies_with_a_typed_conflict_at_serializable_over_tcp() {
    let (_servers, db) = boot(2, 1);
    let (second, total) = run_skew(&db, IsolationLevel::Serializable);
    let err = second.expect_err("serializable certifies the read set");
    assert_eq!(err, Error::Conflict, "typed, not a hang or a generic failure");
    assert!(err.is_retryable());
    assert_eq!(total, 100, "the invariant held: only one withdrawal landed");

    // A read-only serializable transaction over the settled state commits
    // without spurious conflicts.
    let table = db.create_table("after", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];
    let pn = db.processing_node();
    let mut ro = pn.begin_at(IsolationLevel::Serializable).unwrap();
    assert_eq!(balance_of(&ro.get(&table, rid).unwrap().unwrap()), 1);
    ro.commit().expect("read-only serializable commit is clean");
}

#[test]
fn nmsi_reads_the_cached_snapshot_while_si_sees_fresh_over_tcp() {
    let (_servers, db) = boot(2, 1);
    let table = db.create_table("stale", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];

    let pn = db.processing_node();

    // First NMSI start primes the manager's snapshot cache.
    let mut t0 = pn.begin_at(IsolationLevel::NonMonotonicSi).unwrap();
    assert_eq!(balance_of(&t0.get(&table, rid).unwrap().unwrap()), 1);
    t0.commit().unwrap();

    // A concurrent SI writer bumps the balance.
    pn.run(100, |txn| {
        txn.update(&table, rid, account(2, 0))?;
        Ok(())
    })
    .unwrap();

    // Within the refresh cadence, an NMSI begin is served the *cached*
    // snapshot: it legally misses the commit. An SI begin at the same
    // moment sees it — the level separation, observed over the wire.
    let pn_nmsi = db.processing_node();
    let pn_si = db.processing_node();
    let mut stale = pn_nmsi.begin_at(IsolationLevel::NonMonotonicSi).unwrap();
    let mut fresh = pn_si.begin_at(IsolationLevel::Si).unwrap();
    assert_eq!(
        balance_of(&stale.get(&table, rid).unwrap().unwrap()),
        1,
        "NMSI: stale cached snapshot misses the concurrent commit"
    );
    assert_eq!(
        balance_of(&fresh.get(&table, rid).unwrap().unwrap()),
        2,
        "SI: fresh snapshot sees it"
    );
    stale.commit().unwrap();
    fresh.commit().unwrap();
}

//! End-to-end tests for the epoll reactor itself: shutdown under
//! concurrent load, peers dying mid-frame, slow-reader backpressure — the
//! failure shapes the event loop must absorb without hanging anyone.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use bytes::Bytes;
use tell_common::Error;
use tell_obs::Counter;
use tell_rpc::wire::{read_frame, write_frame};
use tell_rpc::{Connection, ReactorConfig, Request, Response, RpcServer, Services};
use tell_store::{Expect, StoreCluster, StoreConfig, WriteOp};

fn serve(nodes: usize) -> (RpcServer, String) {
    let store = StoreCluster::new(StoreConfig::new(nodes));
    let server = RpcServer::serve_store("127.0.0.1:0", store).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// Join a thread with a deadline: the whole point of these tests is that
/// nothing ever blocks forever, so a plain `join()` would turn a regression
/// into a CI timeout instead of a failure message.
fn join_within<T: Send + 'static>(
    handle: std::thread::JoinHandle<T>,
    timeout: Duration,
    what: &str,
) -> T {
    let (tx, rx) = mpsc::channel();
    let waiter = std::thread::spawn(move || {
        let _ = tx.send(handle.join());
    });
    let joined = rx.recv_timeout(timeout).unwrap_or_else(|_| panic!("{what} hung"));
    waiter.join().unwrap();
    joined.unwrap_or_else(|_| panic!("{what} panicked"))
}

#[test]
fn shutdown_under_concurrent_clients_surfaces_typed_unavailable() {
    let (mut server, addr) = serve(2);

    // One raw peer parks mid-frame: a length prefix promising 100 bytes,
    // then silence. The reactor is holding a partial frame for it when the
    // server dies — exactly the state the old thread-per-connection stop
    // hack could wedge on.
    let mut mid_frame = TcpStream::connect(&addr).unwrap();
    mid_frame.write_all(&100u32.to_le_bytes()).unwrap();
    mid_frame.flush().unwrap();

    // K clients hammer the server until it goes away; each must come back
    // with a typed error, never a hang.
    const K: usize = 8;
    let stop_failed = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..K)
        .map(|_| {
            let addr = addr.clone();
            let stop_failed = Arc::clone(&stop_failed);
            std::thread::spawn(move || -> Result<(), Error> {
                let conn = Connection::connect(&addr)?;
                loop {
                    match conn.call(&Request::Ping) {
                        Ok((Response::Pong, _, _)) => {}
                        Ok((other, _, _)) => panic!("ping answered {other:?}"),
                        Err(e) => {
                            stop_failed.store(true, Ordering::SeqCst);
                            return Err(e);
                        }
                    }
                }
            })
        })
        .collect();

    // Let every client get in flight, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    // Idempotent: a second call (and the implicit one on drop) is a no-op.
    server.shutdown();

    for handle in handles {
        let err = join_within(handle, Duration::from_secs(10), "client thread")
            .expect_err("server is gone");
        assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");
    }
    assert!(stop_failed.load(Ordering::SeqCst));
}

#[test]
fn peer_dying_mid_frame_leaves_other_connections_serving() {
    let (_server, addr) = serve(1);

    // A peer starts a frame and dies mid-way through it.
    let mut dying = TcpStream::connect(&addr).unwrap();
    let mut framed = Vec::new();
    write_frame(&mut framed, 42, &Request::Ping.encode()).unwrap();
    dying.write_all(&framed[..framed.len() - 3]).unwrap();
    dying.flush().unwrap();
    drop(dying);

    // Another peer parks mid-frame and stays connected.
    let mut parked = TcpStream::connect(&addr).unwrap();
    parked.write_all(&16u32.to_le_bytes()).unwrap();
    parked.flush().unwrap();

    // Neither disturbs a healthy connection.
    let conn = Connection::connect(&addr).unwrap();
    for _ in 0..16 {
        let (response, _, _) = conn.call(&Request::Ping).unwrap();
        assert_eq!(response, Response::Pong);
    }
}

#[test]
fn slow_reader_hits_backpressure_and_drains_after_catching_up() {
    let store = StoreCluster::new(StoreConfig::new(1));
    let services = Services { store: Some(store), commit: None };
    // Tiny write cap so a peer that stops reading trips the pause quickly.
    let config = ReactorConfig { workers: 2, write_buf_cap: 4 << 10 };
    let mut server = RpcServer::serve_with("127.0.0.1:0", services, config).unwrap();
    let addr = server.local_addr().to_string();

    // Plant a value big enough that a handful of replies overflows both
    // the socket buffer and the 4 KiB write cap.
    let key = Bytes::copy_from_slice(b"big");
    let value = Bytes::from(vec![0xAB; 256 << 10]);
    let conn = Connection::connect(&addr).unwrap();
    let write = Request::Write {
        op: WriteOp { key: key.clone(), expect: Expect::Any, value: Some(value.clone()) },
    };
    assert!(matches!(conn.call(&write).unwrap().0, Response::Written(_)));
    conn.close();

    // A raw client pipelines GETs for it and refuses to read the replies.
    const GETS: usize = 64;
    let before = tell_obs::global().counter(Counter::ConnBackpressure);
    let mut slow = TcpStream::connect(&addr).unwrap();
    let mut framed = Vec::new();
    for corr_id in 0..GETS as u64 {
        write_frame(&mut framed, corr_id, &Request::Get { key: key.clone() }.encode()).unwrap();
    }
    slow.write_all(&framed).unwrap();
    slow.flush().unwrap();

    // The server must stop reading rather than buffer without bound.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while tell_obs::global().counter(Counter::ConnBackpressure) == before {
        assert!(std::time::Instant::now() < deadline, "backpressure never engaged");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Catching up releases the pause: every reply arrives, in order.
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut reader = std::io::BufReader::new(slow);
    for corr_id in 0..GETS as u64 {
        let (got_corr, body) = read_frame(&mut reader).unwrap().expect("reply arrives");
        assert_eq!(got_corr, corr_id);
        match Response::decode(&body).unwrap() {
            Response::Cell(Some((_, got))) => assert_eq!(got, value),
            other => panic!("got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn frames_served_counts_frames_not_operations() {
    let (server, addr) = serve(1);
    let conn = Connection::connect(&addr).unwrap();
    let before = server.frames_served();
    let batch = Request::Batch {
        ops: (0..8u64)
            .map(|i| Request::Get { key: Bytes::from(i.to_be_bytes().to_vec()) })
            .collect(),
    };
    match conn.call(&batch).unwrap().0 {
        Response::Batch { results } => assert_eq!(results.len(), 8),
        other => panic!("got {other:?}"),
    }
    assert_eq!(server.frames_served(), before + 1);
}

//! Remote-profiling end-to-end test over real loopback TCP: start the
//! sampler through the wire, run a mixed transactional workload across the
//! same servers, fetch the collapsed stacks through the wire, and check
//! that the profile actually saw both sides of the deployment — client-side
//! transaction phases and server-side dispatch frames.
//!
//! Lives in its own integration-test binary on purpose: the profiler is
//! process-global, and sharing a process with other tests would smear
//! their stacks into this one's assertions.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CommitService};
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};
use tell_obs::CollapsedTable;
use tell_rpc::{Connection, RemoteCmClient, RemoteEndpoint, Request, Response, RpcServer};
use tell_store::{StoreCluster, StoreConfig};

fn boot(nodes: usize, cms: usize) -> (Vec<RpcServer>, String, Arc<Database<RemoteEndpoint>>) {
    let store = StoreCluster::new(StoreConfig::new(nodes));
    let sn = RpcServer::serve_store("127.0.0.1:0", store).unwrap();
    let sn_addr = sn.local_addr().to_string();

    let cm_cluster =
        CmCluster::new(RemoteEndpoint::connect(sn_addr.clone(), 2), cms, CmConfig::default());
    let cm = RpcServer::serve_commit("127.0.0.1:0", cm_cluster as Arc<dyn CommitService>).unwrap();
    let cm_addr = cm.local_addr().to_string();

    let endpoint = RemoteEndpoint::connect(sn_addr.clone(), 4);
    let commit: Arc<dyn CommitService> = Arc::new(RemoteCmClient::connect([cm_addr]));
    let db = Database::open(endpoint, commit, TellConfig::default());
    (vec![sn, cm], sn_addr, db)
}

fn account(balance: u64, id: u64) -> Bytes {
    let mut b = balance.to_be_bytes().to_vec();
    b.extend_from_slice(&id.to_be_bytes());
    Bytes::from(b)
}

fn call(conn: &Connection, req: &Request) -> Response {
    conn.call(req).expect("rpc call").0
}

#[test]
fn remote_profile_scrape_sees_txn_and_dispatch_frames() {
    let (_servers, sn_addr, db) = boot(2, 1);
    let table = db
        .create_table(
            "prof_accounts",
            vec![IndexSpec::new("pk", true, |r: &[u8]| r.get(8..16).map(Bytes::copy_from_slice))],
        )
        .unwrap();
    let rids = db.bulk_load(&table, (0..8u64).map(|i| account(100, i)).collect()).unwrap();

    // Start the sampler over the wire, at a rate high enough that even a
    // short CI-sized workload window collects a healthy sample count.
    let conn = Connection::connect(&sn_addr).unwrap();
    assert!(matches!(call(&conn, &Request::ProfileStart { hz: 4000.0 }), Response::Unit));

    // Mixed workload: reads, read-modify-writes, and scans-by-read across
    // two worker threads, everything crossing TCP, until the profile has
    // had at least a sampling window's worth of wall time.
    let deadline = Instant::now() + Duration::from_millis(600);
    let handles: Vec<_> = (0..2)
        .map(|worker: usize| {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let rids = rids.clone();
            std::thread::spawn(move || {
                let pn = db.processing_node();
                let mut i = 0usize;
                while Instant::now() < deadline {
                    i += 1;
                    let rid = rids[(worker + i) % rids.len()];
                    if i.is_multiple_of(3) {
                        let _ = pn.run(100, |txn| txn.get(&table, rid));
                    } else {
                        let _ = pn.run(100, |txn| {
                            let row = txn.get(&table, rid)?.expect("loaded row");
                            let bal = u64::from_be_bytes(row[..8].try_into().unwrap());
                            txn.update(&table, rid, account(bal + 1, ((worker + i) % 8) as u64))
                        });
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Fetch through the wire while still running, then stop.
    let Response::Profile(report) = call(&conn, &Request::ProfileFetch) else {
        panic!("expected Response::Profile");
    };
    assert!(matches!(call(&conn, &Request::ProfileStop), Response::Unit));
    let Response::Profile(stopped) = call(&conn, &Request::ProfileFetch) else {
        panic!("expected Response::Profile");
    };
    assert!(report.running, "sampler must report running at fetch time");
    assert!(!stopped.running, "sampler must report stopped after ProfileStop");

    assert!(report.samples > 0, "workload must produce samples: {report:?}");
    let table = CollapsedTable::parse_folded(&report.folded, usize::MAX)
        .expect("wire-fetched folded payload must parse");
    assert!(!table.is_empty());
    let has = |frame: &str| table.rows().iter().any(|(names, _)| names.contains(&frame));
    // Client side: the transaction root frame (every phase nests under it).
    assert!(has("txn"), "profile must contain a transaction stack:\n{}", report.folded);
    // Server side: the reactor's dispatch frame, from the same process's
    // serving threads — the scrape covers both halves of the deployment.
    assert!(has("rpc.dispatch"), "profile must contain a dispatch stack:\n{}", report.folded);
    // The lock registry made it across the wire too, led by the rollout's
    // named hot spots.
    assert!(
        report.locks.iter().any(|l| l.name == "cm.state"),
        "lock table must name the commit path: {:?}",
        report.locks
    );
}

//! End-to-end tests over real loopback TCP: storage nodes and commit
//! managers each behind a tell-rpc server, a `tell_core::Database` opened
//! over the remote clients, and the full snapshot-isolation transaction
//! machinery — LL/SC conflicts included — running across the wire.

use std::sync::Arc;

use bytes::Bytes;
use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CommitService};
use tell_common::{Error, SnId};
use tell_core::database::IndexSpec;
use tell_core::recovery::recover_failed_pn;
use tell_core::txlog::{self, LogEntry};
use tell_core::{Database, TellConfig, VersionedRecord};
use tell_netsim::{NetMeter, NetworkProfile};
use tell_rpc::{
    Connection, RemoteCmClient, RemoteEndpoint, Request, Response, RpcServer, WireError,
};
use tell_store::{keys, Expect, StoreApi, StoreCluster, StoreConfig, StoreEndpoint, WriteOp};

/// Everything server-side: the simulated storage hardware plus the two
/// rpc servers fronting it. Held by tests so they can reach in and fail
/// nodes; dropping it tears the servers down.
struct Servers {
    store: Arc<StoreCluster>,
    sn: RpcServer,
    _cm: RpcServer,
}

/// Boot a storage server and a commit server on loopback, then open a
/// database over remote clients only. The commit managers themselves talk
/// to the storage nodes across TCP, as in the paper's deployment.
fn boot(nodes: usize, cms: usize) -> (Servers, Arc<Database<RemoteEndpoint>>) {
    let store = StoreCluster::new(StoreConfig::new(nodes));
    let sn = RpcServer::serve_store("127.0.0.1:0", Arc::clone(&store)).unwrap();
    let sn_addr = sn.local_addr().to_string();

    let cm_cluster =
        CmCluster::new(RemoteEndpoint::connect(sn_addr.clone(), 2), cms, CmConfig::default());
    let cm = RpcServer::serve_commit("127.0.0.1:0", cm_cluster as Arc<dyn CommitService>).unwrap();
    let cm_addr = cm.local_addr().to_string();

    let endpoint = RemoteEndpoint::connect(sn_addr, 4);
    let commit: Arc<dyn CommitService> = Arc::new(RemoteCmClient::connect([cm_addr]));
    let db = Database::open(endpoint, commit, TellConfig::default());
    (Servers { store, sn, _cm: cm }, db)
}

fn account(balance: u64, id: u64) -> Bytes {
    let mut b = balance.to_be_bytes().to_vec();
    b.extend_from_slice(&id.to_be_bytes());
    Bytes::from(b)
}

fn balance_of(row: &[u8]) -> u64 {
    u64::from_be_bytes(row[..8].try_into().unwrap())
}

fn pk_spec() -> IndexSpec {
    IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice))
}

#[test]
fn remote_si_workload_transfers_conserve_total() {
    let (_servers, db) = boot(3, 2);
    let table = db.create_table("accounts", vec![pk_spec()]).unwrap();
    let rids = db.bulk_load(&table, (0..4u64).map(|i| account(100, i)).collect()).unwrap();

    // Two worker threads move money between accounts concurrently; every
    // read, write, conflict retry and commit notification crosses TCP.
    let handles: Vec<_> = (0..2)
        .map(|worker| {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let rids = rids.clone();
            std::thread::spawn(move || {
                let pn = db.processing_node();
                for i in 0..20usize {
                    let from = rids[(worker + i) % 4];
                    let to = rids[(worker + i + 1) % 4];
                    pn.run(10_000, |txn| {
                        let from_row = txn.get(&table, from)?.unwrap();
                        let to_row = txn.get(&table, to)?.unwrap();
                        let amount = 1 + (i as u64 % 5);
                        let from_bal = balance_of(&from_row);
                        if from_bal < amount {
                            return Ok(());
                        }
                        let from_id = u64::from_be_bytes(from_row[8..16].try_into().unwrap());
                        let to_id = u64::from_be_bytes(to_row[8..16].try_into().unwrap());
                        txn.update(&table, from, account(from_bal - amount, from_id))?;
                        txn.update(&table, to, account(balance_of(&to_row) + amount, to_id))?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let pn = db.processing_node();
    let mut txn = pn.begin().unwrap();
    let total: u64 =
        rids.iter().map(|rid| balance_of(&txn.get(&table, *rid).unwrap().unwrap())).sum();
    txn.commit().unwrap();
    assert_eq!(total, 400, "transfers conserve the total balance");

    // The meter recorded real traffic, not simulated time.
    assert!(db.traffic().request_count() > 0);
    assert!(db.traffic().total_bytes() > 0);
}

#[test]
fn remote_conflict_aborts_second_writer_via_ll_sc() {
    let (_servers, db) = boot(3, 1);
    let table = db.create_table("items", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(7, 0)]).unwrap()[0];

    let pn1 = db.processing_node();
    let pn2 = db.processing_node();
    let mut t1 = pn1.begin().unwrap();
    let mut t2 = pn2.begin().unwrap();

    // Both read (load-link) the same record under their snapshots.
    assert_eq!(balance_of(&t1.get(&table, rid).unwrap().unwrap()), 7);
    assert_eq!(balance_of(&t2.get(&table, rid).unwrap().unwrap()), 7);
    t1.update(&table, rid, account(8, 0)).unwrap();
    t2.update(&table, rid, account(9, 0)).unwrap();

    // First committer wins; the second store-conditional fails on the
    // storage node and comes back across the wire as `Conflict`.
    t1.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert_eq!(err, Error::Conflict);
    assert!(err.is_retryable());

    let pn3 = db.processing_node();
    let mut reader = pn3.begin().unwrap();
    assert_eq!(balance_of(&reader.get(&table, rid).unwrap().unwrap()), 8);
    reader.commit().unwrap();
}

#[test]
fn remote_index_scan_and_insert_in_transaction() {
    let (_servers, db) = boot(2, 1);
    let table = db.create_table("events", vec![pk_spec()]).unwrap();
    db.bulk_load(&table, (0..3u64).map(|i| account(i * 10, i)).collect()).unwrap();

    let pn = db.processing_node();
    pn.run(100, |txn| {
        txn.insert(&table, account(99, 1000))?;
        Ok(())
    })
    .unwrap();

    let mut txn = pn.begin().unwrap();
    let rows = txn.scan_table(&table, usize::MAX).unwrap();
    assert_eq!(rows.len(), 4);
    let hits = txn
        .index_lookup(
            &table,
            table.primary_index().id,
            &Bytes::copy_from_slice(&1000u64.to_be_bytes()),
        )
        .unwrap();
    assert_eq!(hits.len(), 1);
    txn.commit().unwrap();
}

#[test]
fn killed_storage_node_surfaces_typed_errors_not_hangs() {
    let (servers, db) = boot(1, 1);
    let table = db.create_table("t", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];

    let pn = db.processing_node();
    let mut txn = pn.begin().unwrap();
    assert!(txn.get(&table, rid).unwrap().is_some());
    txn.update(&table, rid, account(2, 0)).unwrap();

    // The storage node dies mid-transaction. The TCP server stays up —
    // it answers with the storage layer's error, typed, over the wire.
    servers.store.kill_node(SnId(0));
    let err = txn.commit().unwrap_err();
    assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");

    // A raw remote client op also fails fast and typed.
    let client = db.endpoint().client(NetMeter::free());
    let err = client.get(&keys::record(table.id, rid)).unwrap_err();
    assert!(matches!(err, Error::Unavailable(_)), "got {err:?}");

    // Starting a transaction still works: interleaved tid allocation is
    // manager-local (no storage round trip), so the commit server keeps
    // issuing tids while the storage node is down. The transaction then
    // fails fast with a typed error at its first storage access.
    let pn_dark = db.processing_node();
    let mut txn = pn_dark.begin().unwrap();
    match txn.get(&table, rid) {
        Err(Error::Unavailable(_)) => {}
        other => panic!("expected Unavailable, got {other:?}"),
    }
    drop(txn);

    // After revival everything heals without reconnecting anything.
    servers.store.revive_node(SnId(0));
    let pn2 = db.processing_node();
    let mut txn = pn2.begin().unwrap();
    assert_eq!(balance_of(&txn.get(&table, rid).unwrap().unwrap()), 1);
    txn.commit().unwrap();
}

#[test]
fn pn_recovery_rolls_back_partial_write_set_over_the_wire() {
    let (servers, db) = boot(2, 1);
    let table = db.create_table("t", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(5, 0)]).unwrap()[0];

    // A PN starts a transaction and crashes mid-commit: the uncommitted
    // log entry and the dirty version are in the store (written through
    // the remote client), but no commit flag and no CM notification.
    let pn = db.processing_node();
    let failed_pn = pn.id();
    let txn = pn.begin().unwrap();
    let dirty_tid = txn.tid();
    let client = db.admin_client();
    txlog::append(
        &client,
        &LogEntry {
            tid: dirty_tid,
            pn: failed_pn,
            timestamp_us: 0,
            write_set: vec![(table.id, rid)],
            committed: false,
        },
    )
    .unwrap();
    let key = keys::record(table.id, rid);
    let (token, raw) = client.get(&key).unwrap().unwrap();
    let mut rec = VersionedRecord::decode(&raw).unwrap();
    rec.add_version(dirty_tid, Some(account(666, 0)));
    client.store_conditional(&key, token, rec.encode()).unwrap();
    std::mem::forget(txn); // the PN is gone; nobody aborts this txn

    // A storage node also bounces before anyone notices — the typed
    // error/heal cycle must not confuse recovery afterwards.
    servers.store.kill_node(SnId(1));
    servers.store.revive_node(SnId(1));

    // Other transactions never see the dirty version.
    let pn2 = db.processing_node();
    let mut reader = pn2.begin().unwrap();
    assert_eq!(balance_of(&reader.get(&table, rid).unwrap().unwrap()), 5);
    reader.commit().unwrap();

    // §4.4.1: scan the log backwards, roll the incomplete transaction
    // back, resolve it with the (remote) commit managers.
    let report = recover_failed_pn(&db, failed_pn).unwrap();
    assert_eq!(report.rolled_back, 1);
    assert_eq!(report.versions_reverted, 1);

    let (_, raw) = client.get(&key).unwrap().unwrap();
    let rec = VersionedRecord::decode(&raw).unwrap();
    assert!(!rec.has_version(dirty_tid.raw()));

    // The tid is resolved: new snapshots advance past it.
    let pn3 = db.processing_node();
    let mut txn = pn3.begin().unwrap();
    assert_eq!(balance_of(&txn.get(&table, rid).unwrap().unwrap()), 5);
    txn.update(&table, rid, account(6, 0)).unwrap();
    txn.commit().unwrap();
}

#[test]
fn concurrent_async_gets_batch_into_one_frame_and_survive_node_failure() {
    let (servers, db) = boot(1, 1);
    let table = db.create_table("t", vec![pk_spec()]).unwrap();
    let rids = db.bulk_load(&table, (0..8u64).map(|i| account(i * 11, i)).collect()).unwrap();
    let record_keys: Vec<_> = rids.iter().map(|rid| keys::record(table.id, *rid)).collect();
    let stored_balance = |raw: &[u8]| {
        let rec = VersionedRecord::decode(raw).unwrap();
        balance_of(rec.versions()[0].payload.as_ref().unwrap())
    };

    // Eight operations in flight on one client, resolved out of submission
    // order: the whole window crosses the wire as a single batch frame.
    let client = db.endpoint().client(NetMeter::free());
    let before = servers.sn.frames_served();
    let mut handles: Vec<_> = record_keys.iter().map(|k| client.get_async(k)).collect();
    handles.reverse();
    for (i, handle) in handles.into_iter().enumerate() {
        let (_, raw) = handle.wait().unwrap().expect("loaded record exists");
        assert_eq!(stored_balance(&raw), (7 - i as u64) * 11);
    }
    assert_eq!(servers.sn.frames_served() - before, 1, "eight async gets, one frame");

    // The storage node dies with a full window outstanding. The TCP server
    // stays up, so every handle resolves to the storage layer's typed
    // error — carried per-op inside the batch response, never a hang.
    let handles: Vec<_> = record_keys.iter().map(|k| client.get_async(k)).collect();
    servers.store.kill_node(SnId(0));
    for handle in handles {
        match handle.wait() {
            Err(Error::Unavailable(_)) => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }

    // After revival the same client's next window works unchanged.
    servers.store.revive_node(SnId(0));
    let handles: Vec<_> = record_keys.iter().map(|k| client.get_async(k)).collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let (_, raw) = handle.wait().unwrap().expect("record survived the bounce");
        assert_eq!(stored_balance(&raw), i as u64 * 11);
    }
}

#[test]
fn batch_straddling_a_dead_node_half_applies_with_per_op_errors_not_a_hang() {
    // Two nodes, rf 1: each owns half the partitions, so killing one leaves
    // a batch window straddling live and dead key ranges.
    let (servers, _db) = boot(2, 1);
    let conn = Connection::connect(&servers.sn.local_addr().to_string()).unwrap();
    let scratch: Vec<Bytes> =
        (0..16u64).map(|i| Bytes::from(format!("e2e/straddle/{i}"))).collect();
    let put = |i: usize, round: u64| Request::Write {
        op: WriteOp::put(
            scratch[i].clone(),
            Expect::Any,
            Bytes::from(round.to_be_bytes().to_vec()),
        ),
    };

    // Round 0, both nodes alive: seed every scratch key in one frame.
    let ops: Vec<Request> = (0..scratch.len()).map(|i| put(i, 0)).collect();
    let (resp, _, _) = conn.call(&Request::Batch { ops }).unwrap();
    let Response::Batch { results } = resp else { panic!("expected Batch, got {resp:?}") };
    assert!(results.iter().all(|r| matches!(r, Response::Written(Some(_)))));

    // Round 1, node 1 dead: one frame pairing a get and a put per key. The
    // batch is a framing unit, not an atomic one — ops on live partitions
    // apply, ops on dead ones come back as nested typed errors in their
    // slots, and the call returns promptly either way.
    servers.store.kill_node(SnId(1));
    let ops: Vec<Request> = (0..scratch.len())
        .flat_map(|i| [Request::Get { key: scratch[i].clone() }, put(i, 1)])
        .collect();
    let (resp, _, _) = conn.call(&Request::Batch { ops }).unwrap();
    let Response::Batch { results } = resp else { panic!("expected Batch, got {resp:?}") };
    assert_eq!(results.len(), scratch.len() * 2);
    let mut live = 0;
    let mut dead = 0;
    for pair in results.chunks(2) {
        match (&pair[0], &pair[1]) {
            (Response::Cell(Some(_)), Response::Written(Some(_))) => live += 1,
            (
                Response::Error(WireError::Unavailable(_)),
                Response::Error(WireError::Unavailable(_)),
            ) => dead += 1,
            other => panic!("a key's get/put pair must fail or succeed together: {other:?}"),
        }
    }
    assert!(live > 0, "some keys stay on the surviving node");
    assert!(dead > 0, "some keys were on the killed node");

    // After revival the same connection reads every key: the window really
    // was half-applied — keys on the survivor carry the round-1 value, keys
    // on the revived node still carry round 0, and nothing is torn or lost.
    servers.store.revive_node(SnId(1));
    let ops: Vec<Request> = scratch.iter().map(|k| Request::Get { key: k.clone() }).collect();
    let (resp, _, _) = conn.call(&Request::Batch { ops }).unwrap();
    let Response::Batch { results } = resp else { panic!("expected Batch, got {resp:?}") };
    let mut round1 = 0;
    let mut round0 = 0;
    for r in &results {
        let Response::Cell(Some((_, value))) = r else { panic!("expected a cell, got {r:?}") };
        match u64::from_be_bytes(value[..8].try_into().unwrap()) {
            1 => round1 += 1,
            0 => round0 += 1,
            v => panic!("unexpected round marker {v}"),
        }
    }
    assert_eq!(round1, live, "every acknowledged round-1 write survived");
    assert_eq!(round0, dead, "every errored write left round 0 intact");
}

#[test]
fn pipelined_counter_increments_share_one_connection() {
    let (_servers, db) = boot(1, 1);
    // Pool of one: every thread's requests interleave on a single TCP
    // stream and are demultiplexed by correlation id.
    let endpoint = RemoteEndpoint::connect(db.endpoint().addr(), 1);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let client = endpoint.client(NetMeter::free());
                for _ in 0..25 {
                    client.increment(&keys::counter("e2e/pipeline"), 1).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let client = endpoint.unmetered_client();
    assert_eq!(client.increment(&keys::counter("e2e/pipeline"), 0), Ok(100));
}

// ---------------------------------------------------------------------------
// Observability over the wire.

#[test]
fn traced_call_echoes_trace_id_over_tcp() {
    let (servers, _db) = boot(1, 1);
    let conn = Connection::connect(&servers.sn.local_addr().to_string()).unwrap();

    // An explicit trace id crosses the wire in the request frame and comes
    // back stamped on the response frame.
    let (resp, _, _, echoed) = conn.call_traced(&Request::Ping, Some(0x5EED_CAFE)).unwrap();
    assert!(matches!(resp, Response::Pong));
    assert_eq!(echoed, Some(0x5EED_CAFE));

    // An untraced call stays wire-compatible with v1 frames: nothing goes
    // out, nothing comes back.
    let (resp, _, _, echoed) = conn.call_traced(&Request::Ping, None).unwrap();
    assert!(matches!(resp, Response::Pong));
    assert_eq!(echoed, None);
}

#[test]
fn metrics_scrape_over_tcp_returns_parseable_snapshot() {
    let (servers, db) = boot(2, 1);
    let table = db.create_table("m", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];

    // Run real transactions first so the scrape has something to show.
    let pn = db.processing_node();
    for _ in 0..4 {
        pn.run(100, |txn| {
            let row = txn.get(&table, rid)?.unwrap();
            txn.update(&table, rid, account(balance_of(&row) + 1, 0))?;
            Ok(())
        })
        .unwrap();
    }

    let conn = Connection::connect(&servers.sn.local_addr().to_string()).unwrap();
    let (resp, _, _) = conn.call(&Request::Metrics).unwrap();
    let Response::Metrics(json) = resp else { panic!("expected Metrics, got {resp:?}") };
    let snap = tell_obs::MetricsSnapshot::from_json(&json).unwrap();

    // Servers and clients share this process, so the snapshot covers both
    // sides: transactions begun, frames served, and the scrape itself
    // (request accounting runs before dispatch takes the snapshot).
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .1
    };
    assert!(counter("txn_begun_total") > 0);
    assert!(counter("rpc_server_frames_in_total") > 0);
    assert!(counter("rpc_client_frames_out_total") > 0);
    assert!(counter("rpc_req_metrics_total") >= 1);

    // Phase timers are sampled but the first transaction on a thread is
    // always in the sample, so the per-phase histograms have data.
    let total = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "txn_total_us")
        .expect("txn_total_us histogram missing");
    assert!(total.1.count > 0);

    // And the same snapshot renders as Prometheus text exposition. A
    // histogram with samples carries bucket data, so it renders as a
    // native cumulative histogram rather than a quantile summary.
    let text = snap.to_prometheus_text();
    assert!(text.contains("# TYPE tell_txn_begun_total counter"));
    assert!(text.contains("# TYPE tell_txn_total_us histogram"));
    assert!(text.contains("tell_txn_total_us_bucket{le=\"+Inf\"}"));
}

#[test]
fn assembled_trace_parents_pn_sn_and_cm_spans_correctly() {
    use std::collections::HashMap;
    use tell_obs::{Span, SpanKind};

    let (servers, db) = boot(2, 1);
    let table = db.create_table("spans", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];

    // Run one update transaction on a fresh thread: the first transaction
    // on a thread is always in the phase sample, so tail-based retention
    // keeps its trace deterministically.
    let trace = std::thread::spawn({
        let db = Arc::clone(&db);
        let table = Arc::clone(&table);
        move || {
            let pn = db.processing_node();
            let mut txn = pn.begin().unwrap();
            let trace = tell_obs::current_trace().expect("begin mints a trace id");
            let row = txn.get(&table, rid).unwrap().unwrap();
            txn.update(&table, rid, account(balance_of(&row) + 1, 0)).unwrap();
            txn.commit().unwrap();
            trace
        }
    })
    .join()
    .unwrap();

    // Drain the span ring over the wire, exactly as an external collector
    // would. Servers and the PN share this test process, so one scrape
    // returns every process role's spans; other tests' traces are filtered
    // out by id. (This is the only test in this binary that drains.)
    let conn = Connection::connect(&servers.sn.local_addr().to_string()).unwrap();
    let (resp, _, _) = conn.call(&Request::Spans { drain: true }).unwrap();
    let Response::Spans(all) = resp else { panic!("expected Spans, got {resp:?}") };
    let spans: Vec<Span> = all.into_iter().filter(|s| s.trace == trace).collect();
    assert!(spans.len() >= 5, "expected a multi-span trace, got {spans:#?}");

    let by_id: HashMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let kinds_up = |from: &Span| {
        let mut chain = Vec::new();
        let mut cur = from.parent;
        while cur != 0 {
            let s = by_id.get(&cur).unwrap_or_else(|| {
                panic!("span {:016x} has dangling parent {:016x}", from.id, cur)
            });
            chain.push(s.kind);
            cur = s.parent;
        }
        chain
    };

    // The PN side: a root transaction span with every phase nested in it.
    let root = spans.iter().find(|s| s.kind == SpanKind::Txn).expect("root txn span");
    assert_eq!(root.parent, 0, "the root span has no parent");
    for kind in [
        SpanKind::TxnBegin,
        SpanKind::TxnRead,
        SpanKind::TxnValidate,
        SpanKind::TxnInstall,
        SpanKind::TxnCmComplete,
    ] {
        let phase = spans
            .iter()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("missing {} span", kind.name()));
        assert_eq!(phase.parent, root.id, "{} parents onto the root", kind.name());
    }

    // The SN side: the storage node's apply work, reached through the
    // install phase's RPC (install → [batch flush →] client call →
    // dispatch → store write).
    let sw = spans.iter().find(|s| s.kind == SpanKind::StoreWrite).expect("store.write span");
    let chain = kinds_up(sw);
    assert_eq!(chain[0], SpanKind::ServerDispatch, "store write runs under dispatch: {chain:?}");
    assert!(chain.contains(&SpanKind::RpcClientCall), "reached via an rpc: {chain:?}");
    assert!(chain.contains(&SpanKind::TxnInstall), "caused by the install phase: {chain:?}");
    assert_eq!(*chain.last().unwrap(), SpanKind::Txn, "chain tops out at the root: {chain:?}");

    // The CM side: outcome application, reached through the cm-complete
    // phase's RPC.
    let ca = spans.iter().find(|s| s.kind == SpanKind::CmApply).expect("cm.apply span");
    let chain = kinds_up(ca);
    assert_eq!(chain[0], SpanKind::ServerDispatch, "cm apply runs under dispatch: {chain:?}");
    assert!(chain.contains(&SpanKind::RpcClientCall), "reached via an rpc: {chain:?}");
    assert!(chain.contains(&SpanKind::TxnCmComplete), "caused by cm-complete: {chain:?}");

    // The assembled trace renders as well-formed Chrome trace-event JSON.
    let sourced: Vec<tell_obs::export::SourcedSpan> = spans
        .iter()
        .map(|s| tell_obs::export::SourcedSpan { node: "test".to_string(), span: s.clone() })
        .collect();
    assert_eq!(tell_obs::export::orphan_parents(&sourced), 0);
    let json = tell_obs::export::chrome_trace_json(&sourced);
    tell_obs::export::validate_json(&json).expect("emitted JSON is well-formed");
    assert!(json.contains("\"name\":\"store.write\""));
    assert!(json.contains("\"name\":\"cm.apply\""));
}

#[test]
fn netsim_latency_spike_emits_slow_op_with_originating_trace() {
    // A local simulated deployment on the WAN profile: every exchange costs
    // milliseconds of virtual time, far past the budget set below.
    let db = Database::create(TellConfig { profile: NetworkProfile::wan(), ..Default::default() });
    let table = db.create_table("t", vec![pk_spec()]).unwrap();
    let rid = db.bulk_load(&table, vec![account(1, 0)]).unwrap()[0];

    let buf = tell_obs::slowlog::capture();
    tell_obs::slowlog::set_budget_us(Some(50.0));

    let pn = db.processing_node();
    let mut txn = pn.begin().unwrap();
    let trace = tell_obs::current_trace().expect("begin mints a trace id");
    assert!(txn.get(&table, rid).unwrap().is_some());
    txn.update(&table, rid, account(2, 0)).unwrap();
    txn.commit().unwrap();

    tell_obs::slowlog::set_budget_us(None);
    tell_obs::slowlog::log_to_stderr();

    // The spike surfaced as at least one structured line naming the slow
    // exchange and carrying the transaction's trace id. (Other tests in
    // this process may log their own lines while the budget is set; only
    // ours carries our trace.)
    let needle = format!("\"trace\":\"{}\"", tell_obs::fmt_trace(trace));
    let lines = buf.lock();
    assert!(
        lines.iter().any(|l| l.contains("\"op\":\"net.exchange\"") && l.contains(&needle)),
        "expected a net.exchange slow-op line with {needle}, got: {lines:#?}"
    );
}

//! End-to-end durability over real loopback TCP: a storage server backed
//! by the tell-durable log tier is killed mid-window and restarted from
//! its data directory — the same lifecycle as `tell_sn --data-dir` being
//! SIGKILLed and relaunched. In-flight `Request::Batch` windows resolve to
//! typed per-op errors, and after the restart every acknowledged write is
//! readable again.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use tell_common::SnId;
use tell_durable::{DurableNodeConfig, FsDurability, FsyncPolicy};
use tell_rpc::{Connection, Request, Response, RpcServer, WireError};
use tell_store::{DurabilityProvider, Expect, StoreCluster, StoreConfig, WriteOp};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tell-rpc-durable-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small segments so a handful of writes exercises rotation, and
/// `Always` fsync so an ack really means "on disk" — the contract the
/// post-restart assertions lean on.
fn provider(root: &Path) -> Arc<dyn DurabilityProvider> {
    FsDurability::new(
        root.to_path_buf(),
        DurableNodeConfig {
            segment_bytes: 512,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 32,
            cache_bytes: 1 << 20,
            background_eviction: false,
        },
    )
}

/// Boot (or re-boot) a durable storage server over `root`. Each call
/// builds a fresh provider and recovers from whatever the previous
/// incarnation left on disk, exactly as a restarted `tell_sn` process
/// would.
fn boot(root: &Path, nodes: usize) -> (Arc<StoreCluster>, RpcServer) {
    let store = StoreCluster::open(StoreConfig::new(nodes).durability(provider(root)))
        .expect("durable recovery");
    let server = RpcServer::serve_store("127.0.0.1:0", Arc::clone(&store)).unwrap();
    (store, server)
}

fn put(key: &Bytes, round: u64) -> Request {
    Request::Write {
        op: WriteOp::put(key.clone(), Expect::Any, Bytes::from(round.to_be_bytes().to_vec())),
    }
}

fn batch(conn: &Connection, ops: Vec<Request>) -> Vec<Response> {
    let (resp, _, _) = conn.call(&Request::Batch { ops }).unwrap();
    let Response::Batch { results } = resp else { panic!("expected Batch, got {resp:?}") };
    results
}

fn round_of(resp: &Response) -> u64 {
    let Response::Cell(Some((_, value))) = resp else { panic!("expected a cell, got {resp:?}") };
    u64::from_be_bytes(value[..8].try_into().unwrap())
}

#[test]
fn killed_durable_server_restarts_from_data_dir_with_every_acked_write() {
    let root = fresh_root("restart");
    let keys: Vec<Bytes> = (0..16u64).map(|i| Bytes::from(format!("dur/e2e/{i}"))).collect();

    // First incarnation: two nodes, rf 1, so each owns half the keys.
    let (store, server) = boot(&root, 2);
    let conn = Connection::connect(&server.local_addr().to_string()).unwrap();

    // Round 0, everything alive: seed every key in one frame; all acked.
    let results = batch(&conn, keys.iter().map(|k| put(k, 0)).collect());
    assert!(results.iter().all(|r| matches!(r, Response::Written(Some(_)))));

    // One storage node dies with a round-1 window outstanding. The TCP
    // server stays up, so the batch comes back promptly with typed per-op
    // errors in the dead keys' slots — acks only for the survivor's keys.
    store.kill_node(SnId(1));
    let results = batch(&conn, keys.iter().map(|k| put(k, 1)).collect());
    let mut acked_round1 = Vec::new();
    let mut errored = 0;
    for (key, result) in keys.iter().zip(&results) {
        match result {
            Response::Written(Some(_)) => acked_round1.push(key.clone()),
            Response::Error(WireError::Unavailable(_)) => errored += 1,
            other => panic!("expected an ack or a typed error, got {other:?}"),
        }
    }
    assert!(!acked_round1.is_empty(), "some keys stay on the surviving node");
    assert!(errored > 0, "some keys were on the killed node");

    // The whole process dies: server and cluster drop, the data dir stays.
    drop(conn);
    drop(server);
    drop(store);

    // Second incarnation over the same directory. Recovery must surface
    // exactly the acked writes: round 1 where the ack came back, round 0
    // where the window errored — nothing torn, nothing lost.
    let (_store2, server2) = boot(&root, 2);
    let conn = Connection::connect(&server2.local_addr().to_string()).unwrap();
    let results = batch(&conn, keys.iter().map(|k| Request::Get { key: k.clone() }).collect());
    for (key, result) in keys.iter().zip(&results) {
        let expected = if acked_round1.contains(key) { 1 } else { 0 };
        assert_eq!(round_of(result), expected, "key {key:?} after restart");
    }

    // The restarted server is fully writable: a round-2 window on every
    // key acks, and reads see it.
    let results = batch(&conn, keys.iter().map(|k| put(k, 2)).collect());
    assert!(results.iter().all(|r| matches!(r, Response::Written(Some(_)))));
    let results = batch(&conn, keys.iter().map(|k| Request::Get { key: k.clone() }).collect());
    assert!(results.iter().all(|r| round_of(r) == 2));

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn durable_counters_are_visible_over_a_metrics_scrape() {
    let root = fresh_root("metrics");
    let keys: Vec<Bytes> = (0..8u64).map(|i| Bytes::from(format!("dur/metrics/{i}"))).collect();

    let (_store, server) = boot(&root, 1);
    let conn = Connection::connect(&server.local_addr().to_string()).unwrap();
    let results = batch(&conn, keys.iter().map(|k| put(k, 0)).collect());
    assert!(results.iter().all(|r| matches!(r, Response::Written(Some(_)))));
    drop(conn);
    drop(server);
    drop(_store);

    // Restart so the scrape covers the recovery counters too.
    let (_store2, server2) = boot(&root, 1);
    let conn = Connection::connect(&server2.local_addr().to_string()).unwrap();
    let results = batch(&conn, keys.iter().map(|k| Request::Get { key: k.clone() }).collect());
    assert!(results.iter().all(|r| round_of(r) == 0));

    let (resp, _, _) = conn.call(&Request::Metrics).unwrap();
    let Response::Metrics(json) = resp else { panic!("expected Metrics, got {resp:?}") };
    let snap = tell_obs::MetricsSnapshot::from_json(&json).unwrap();
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .1
    };
    assert!(counter("durable_log_appends_total") >= keys.len() as u64);
    assert!(counter("durable_fsyncs_total") > 0);
    assert!(counter("durable_recovered_records_total") >= keys.len() as u64);

    let _ = std::fs::remove_dir_all(&root);
}

//! End-to-end SQL tests: DDL, DML, queries, transactions, plans — all
//! running through the full stack (parser → planner → executors →
//! Tell transactions → shared store).

use std::sync::Arc;

use tell_core::{Database, TellConfig};
use tell_sql::{QueryResult, SqlEngine, SqlSession, Value};

fn session() -> SqlSession {
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(db);
    engine.session()
}

fn setup_inventory(s: &SqlSession) {
    s.execute(
        "CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR(24) NOT NULL, \
         price DECIMAL(5,2) NOT NULL, category TEXT)",
    )
    .unwrap();
    s.execute("CREATE INDEX by_category ON item (category)").unwrap();
    s.execute(
        "INSERT INTO item (id, name, price, category) VALUES \
         (1, 'bolt', 0.10, 'hardware'), \
         (2, 'nut', 0.05, 'hardware'), \
         (3, 'sprocket', 2.50, 'gears'), \
         (4, 'cog', 3.75, 'gears'), \
         (5, 'manual', 15.00, NULL)",
    )
    .unwrap();
}

fn ints(r: &QueryResult, col: usize) -> Vec<i64> {
    r.rows.iter().map(|row| row[col].as_i64().unwrap()).collect()
}

#[test]
fn create_insert_select_roundtrip() {
    let s = session();
    setup_inventory(&s);
    let r = s.execute("SELECT id, name FROM item WHERE id = 3").unwrap();
    assert_eq!(r.columns, vec!["id", "name"]);
    assert_eq!(r.rows, vec![vec![Value::Int(3), Value::Text("sprocket".into())]]);
}

#[test]
fn select_star_and_order_by() {
    let s = session();
    setup_inventory(&s);
    let r = s.execute("SELECT * FROM item ORDER BY price DESC LIMIT 2").unwrap();
    assert_eq!(r.columns, vec!["id", "name", "price", "category"]);
    assert_eq!(ints(&r, 0), vec![5, 4]);
    let asc = s.execute("SELECT id FROM item ORDER BY price").unwrap();
    assert_eq!(ints(&asc, 0), vec![2, 1, 3, 4, 5]);
}

#[test]
fn where_with_expressions() {
    let s = session();
    setup_inventory(&s);
    let r = s
        .execute("SELECT id FROM item WHERE price * 2 >= 5.0 AND category IS NOT NULL ORDER BY id")
        .unwrap();
    assert_eq!(ints(&r, 0), vec![3, 4]);
    let n = s.execute("SELECT id FROM item WHERE category IS NULL").unwrap();
    assert_eq!(ints(&n, 0), vec![5]);
    let between = s.execute("SELECT id FROM item WHERE id BETWEEN 2 AND 4 ORDER BY id").unwrap();
    assert_eq!(ints(&between, 0), vec![2, 3, 4]);
    let inlist =
        s.execute("SELECT id FROM item WHERE name IN ('bolt', 'cog') ORDER BY id").unwrap();
    assert_eq!(ints(&inlist, 0), vec![1, 4]);
}

#[test]
fn aggregates_and_group_by() {
    let s = session();
    setup_inventory(&s);
    let r = s
        .execute(
            "SELECT category, COUNT(*) AS n, SUM(price) AS total, MIN(price), MAX(price) \
             FROM item WHERE category IS NOT NULL GROUP BY category ORDER BY category",
        )
        .unwrap();
    assert_eq!(r.columns[0], "category");
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Text("gears".into()));
    assert_eq!(r.rows[0][1], Value::Int(2));
    assert_eq!(r.rows[0][2], Value::Double(6.25));
    assert_eq!(r.rows[1][0], Value::Text("hardware".into()));
    assert_eq!(r.rows[1][3], Value::Double(0.05));
    assert_eq!(r.rows[1][4], Value::Double(0.10));
}

#[test]
fn grand_aggregate_without_group_by() {
    let s = session();
    setup_inventory(&s);
    let r = s.execute("SELECT COUNT(*), AVG(price) FROM item").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(5));
    let avg = r.rows[0][1].as_f64().unwrap();
    assert!((avg - 4.28).abs() < 1e-9);
    // Empty input: COUNT is 0, AVG is NULL.
    let empty = s.execute("SELECT COUNT(*), AVG(price) FROM item WHERE id > 100").unwrap();
    assert_eq!(empty.rows[0][0], Value::Int(0));
    assert_eq!(empty.rows[0][1], Value::Null);
}

#[test]
fn update_and_delete() {
    let s = session();
    setup_inventory(&s);
    let u = s.execute("UPDATE item SET price = price * 2 WHERE category = 'hardware'").unwrap();
    assert_eq!(u.affected, 2);
    let r = s.execute("SELECT price FROM item WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Double(0.20));
    let d = s.execute("DELETE FROM item WHERE price > 10").unwrap();
    assert_eq!(d.affected, 1);
    let left = s.execute("SELECT COUNT(*) FROM item").unwrap();
    assert_eq!(left.scalar(), Some(&Value::Int(4)));
}

#[test]
fn secondary_index_is_used_and_correct() {
    let s = session();
    setup_inventory(&s);
    let r = s.execute("SELECT id FROM item WHERE category = 'gears' ORDER BY id").unwrap();
    assert_eq!(ints(&r, 0), vec![3, 4]);
    // Move an item across categories; the index must follow.
    s.execute("UPDATE item SET category = 'gears' WHERE id = 1").unwrap();
    let r2 = s.execute("SELECT id FROM item WHERE category = 'gears' ORDER BY id").unwrap();
    assert_eq!(ints(&r2, 0), vec![1, 3, 4]);
    let r3 = s.execute("SELECT id FROM item WHERE category = 'hardware'").unwrap();
    assert_eq!(ints(&r3, 0), vec![2]);
}

#[test]
fn joins() {
    let s = session();
    s.execute("CREATE TABLE customer (id INT PRIMARY KEY, name TEXT NOT NULL)").unwrap();
    s.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT NOT NULL, amount DOUBLE NOT NULL)",
    )
    .unwrap();
    s.execute("INSERT INTO customer VALUES (1, 'ada'), (2, 'bob'), (3, 'eve')").unwrap();
    s.execute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.5), (12, 2, 1.0)").unwrap();
    let r = s
        .execute(
            "SELECT c.name, SUM(o.amount) AS total FROM orders o \
             JOIN customer c ON o.cust_id = c.id GROUP BY c.name ORDER BY total DESC",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][0], Value::Text("ada".into()));
    assert_eq!(r.rows[0][1], Value::Double(12.5));
    assert_eq!(r.rows[1][0], Value::Text("bob".into()));
    // eve has no orders: inner join drops her.
    let names = s
        .execute("SELECT c.name FROM customer c JOIN orders o ON c.id = o.cust_id GROUP BY c.name")
        .unwrap();
    assert_eq!(names.rows.len(), 2);
}

#[test]
fn multi_statement_transaction_commits_atomically() {
    let s = session();
    s.execute("CREATE TABLE account (id INT PRIMARY KEY, balance DOUBLE NOT NULL)").unwrap();
    s.execute("INSERT INTO account VALUES (1, 100.0), (2, 50.0)").unwrap();
    // A transfer in one transaction.
    s.transaction(|tx| {
        tx.execute("UPDATE account SET balance = balance - 30 WHERE id = 1")?;
        tx.execute("UPDATE account SET balance = balance + 30 WHERE id = 2")?;
        Ok(())
    })
    .unwrap();
    let r = s.execute("SELECT balance FROM account ORDER BY id").unwrap();
    assert_eq!(r.rows[0][0], Value::Double(70.0));
    assert_eq!(r.rows[1][0], Value::Double(80.0));
    // A failing closure aborts everything.
    let result: Result<(), _> = s.transaction(|tx| {
        tx.execute("UPDATE account SET balance = 0 WHERE id = 1")?;
        Err(tell_common::Error::invalid("changed my mind"))
    });
    assert!(result.is_err());
    let r2 = s.execute("SELECT balance FROM account WHERE id = 1").unwrap();
    assert_eq!(r2.rows[0][0], Value::Double(70.0), "aborted update invisible");
}

#[test]
fn unique_pk_violation_surfaces_as_error() {
    let s = session();
    s.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
    s.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
    assert!(s.execute("INSERT INTO t VALUES (1, 'b')").is_err());
    let r = s.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Text("a".into()));
}

#[test]
fn two_sessions_share_data_and_schemas() {
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(Arc::clone(&db));
    let s1 = engine.session();
    s1.execute("CREATE TABLE shared (id INT PRIMARY KEY, v INT NOT NULL)").unwrap();
    s1.execute("INSERT INTO shared VALUES (1, 10)").unwrap();
    // A separate engine instance over the same database (another "PN
    // process"): schema is loaded from the store.
    let engine2 = SqlEngine::new(db);
    let s2 = engine2.session();
    let r = s2.execute("SELECT v FROM shared WHERE id = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(10)));
    s2.execute("UPDATE shared SET v = 11 WHERE id = 1").unwrap();
    let r2 = s1.execute("SELECT v FROM shared WHERE id = 1").unwrap();
    assert_eq!(r2.scalar(), Some(&Value::Int(11)));
}

#[test]
fn snapshot_isolation_through_sql() {
    let s = session();
    s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)").unwrap();
    s.execute("INSERT INTO kv VALUES (1, 100)").unwrap();
    // Writers race on the same row; every increment must survive.
    let engine = Arc::clone(s.engine());
    let mut handles = Vec::new();
    for _ in 0..3 {
        let engine = Arc::clone(&engine);
        handles.push(std::thread::spawn(move || {
            let s = engine.session();
            for _ in 0..10 {
                s.execute("UPDATE kv SET v = v + 1 WHERE k = 1").unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let r = s.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(130)));
}

#[test]
fn composite_primary_key() {
    let s = session();
    s.execute("CREATE TABLE wd (w INT, d INT, ytd DOUBLE NOT NULL, PRIMARY KEY (w, d))").unwrap();
    for w in 1..=3 {
        for d in 1..=4 {
            s.execute(&format!("INSERT INTO wd VALUES ({w}, {d}, 0.0)")).unwrap();
        }
    }
    let one = s.execute("SELECT ytd FROM wd WHERE w = 2 AND d = 3").unwrap();
    assert_eq!(one.rows.len(), 1);
    let prefix = s.execute("SELECT d FROM wd WHERE w = 2 ORDER BY d").unwrap();
    assert_eq!(ints(&prefix, 0), vec![1, 2, 3, 4]);
    let range =
        s.execute("SELECT w, d FROM wd WHERE w >= 2 AND w <= 2 AND d > 2 ORDER BY d").unwrap();
    assert_eq!(ints(&range, 1), vec![3, 4]);
}

#[test]
fn error_paths() {
    let s = session();
    assert!(s.execute("SELECT * FROM missing").is_err());
    s.execute("CREATE TABLE e (id INT PRIMARY KEY, v INT)").unwrap();
    assert!(s.execute("SELECT nope FROM e").is_err());
    assert!(s.execute("INSERT INTO e VALUES (1)").is_err(), "arity mismatch");
    assert!(s.execute("INSERT INTO e VALUES ('x', 1)").is_err(), "type mismatch");
    assert!(s.execute("CREATE TABLE e (id INT PRIMARY KEY)").is_err(), "duplicate table");
    assert!(s.execute("SELECT id FROM e WHERE v = ").is_err(), "parse error");
}

//! Property tests for the SQL layer: the row codec roundtrips any typed
//! row, the order-preserving key encoding sorts exactly like SQL values,
//! and parser → display → parser is stable for generated predicates.

use proptest::prelude::*;
use tell_sql::row::{decode_row, encode_key, encode_row};
use tell_sql::{Column, DataType, TableSchema, Value};

fn value_strategy(dtype: DataType) -> BoxedStrategy<Value> {
    match dtype {
        DataType::Int => prop_oneof![2 => any::<i64>().prop_map(Value::Int), 1 => Just(Value::Null)].boxed(),
        DataType::Double => prop_oneof![
            2 => (-1e12f64..1e12).prop_map(Value::Double),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Text => prop_oneof![
            3 => ".{0,24}".prop_map(Value::Text),
            1 => prop::collection::vec(prop_oneof![Just(0u8), Just(1), Just(255), any::<u8>()], 0..8)
                .prop_map(|b| Value::Text(String::from_utf8_lossy(&b).into_owned())),
            1 => Just(Value::Null)
        ]
        .boxed(),
        DataType::Bool => prop_oneof![2 => any::<bool>().prop_map(Value::Bool), 1 => Just(Value::Null)].boxed(),
    }
}

fn schema_of(types: &[DataType]) -> TableSchema {
    TableSchema {
        name: "t".into(),
        columns: types
            .iter()
            .enumerate()
            .map(|(i, t)| Column { name: format!("c{i}"), dtype: *t, nullable: true })
            .collect(),
        primary_key: vec![0],
        secondary: vec![],
    }
}

fn types_strategy() -> impl Strategy<Value = Vec<DataType>> {
    prop::collection::vec(
        prop_oneof![
            Just(DataType::Int),
            Just(DataType::Double),
            Just(DataType::Text),
            Just(DataType::Bool)
        ],
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any row of any schema roundtrips byte-exactly.
    #[test]
    fn row_codec_roundtrip(types in types_strategy().prop_flat_map(|ts| {
        let values: Vec<BoxedStrategy<Value>> = ts.iter().map(|t| value_strategy(*t)).collect();
        (Just(ts), values)
    })) {
        let (types, row) = types;
        let schema = schema_of(&types);
        let encoded = encode_row(&schema, &row).unwrap();
        let decoded = decode_row(&schema, &encoded).unwrap();
        prop_assert_eq!(decoded, row);
    }

    /// The composite key encoding is order-preserving: byte order of the
    /// encodings equals the SQL total order of the value tuples.
    #[test]
    fn key_encoding_is_order_preserving(
        a in prop::collection::vec(value_strategy(DataType::Int), 1..3)
            .prop_union(prop::collection::vec(value_strategy(DataType::Text), 1..3)),
        b in prop::collection::vec(value_strategy(DataType::Int), 1..3)
            .prop_union(prop::collection::vec(value_strategy(DataType::Text), 1..3)),
    ) {
        // Compare only same-arity, same-type tuples (mixed comparisons are
        // rejected at plan time in SQL).
        prop_assume!(a.len() == b.len());
        prop_assume!(a.iter().zip(b.iter()).all(|(x, y)| {
            x.is_null() || y.is_null() || x.data_type() == y.data_type()
        }));
        let tuple_cmp = a
            .iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal);
        let ka = encode_key(&a);
        let kb = encode_key(&b);
        prop_assert_eq!(tuple_cmp, ka.cmp(&kb), "a={:?} b={:?}", a, b);
    }

    /// The lexer + parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        let _ = tell_sql::parse(&input);
    }

    /// Parsed literal arithmetic evaluates like Rust's.
    #[test]
    fn arithmetic_agrees_with_rust(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let stmt = tell_sql::parse(&format!("SELECT {a} + {b}, {a} * {b}, {a} - {b} FROM t")).unwrap();
        if let tell_sql::Statement::Select(sel) = stmt {
            if let tell_sql::parser::Projection::Exprs(exprs) = sel.projection {
                prop_assert_eq!(exprs[0].0.eval(&[]).unwrap(), Value::Int(a.wrapping_add(b)));
                prop_assert_eq!(exprs[1].0.eval(&[]).unwrap(), Value::Int(a.wrapping_mul(b)));
                prop_assert_eq!(exprs[2].0.eval(&[]).unwrap(), Value::Int(a.wrapping_sub(b)));
            }
        }
    }
}

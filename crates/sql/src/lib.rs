//! `tell-sql` — the SQL front-end of Tell.
//!
//! "Tell provides a SQL interface and enables complex queries on relational
//! data. The query processor parses incoming queries and uses the iterator
//! model to access records" (§5). This crate implements that layer from
//! scratch:
//!
//! * a typed value system and a binary row codec with **order-preserving
//!   index-key encoding** (so B+tree range scans follow SQL ordering),
//! * a hand-written lexer and recursive-descent parser covering
//!   `CREATE TABLE` / `CREATE INDEX` / `INSERT` / `SELECT` (projection,
//!   `WHERE`, inner `JOIN`, `GROUP BY` with aggregates, `ORDER BY`,
//!   `LIMIT`) / `UPDATE` / `DELETE`,
//! * a planner that picks index point-lookups and range scans over full
//!   table scans based on the `WHERE` clause, and
//! * executors in the iterator-model style running on top of
//!   [`tell_core::Transaction`] — "data is shipped to the query" (§2.1).

pub mod engine;
pub mod exec;
pub mod expr;
pub mod parser;
pub mod plan;
pub mod row;
pub mod schema;
pub mod token;
pub mod types;

pub use engine::{QueryResult, SqlEngine, SqlSession, SqlTxn};
pub use expr::Expr;
pub use parser::{parse, Statement};
pub use schema::{Column, TableSchema};
pub use types::{DataType, Value};

//! Access-path selection.
//!
//! Tell's query processor retrieves the records required to execute a
//! query ("data is shipped to the query", §2.1). The planner's job is to
//! retrieve as few as possible: it inspects the conjunctive `WHERE` clause
//! and picks, in order of preference,
//!
//! 1. an **exact index lookup** when equality literals cover every column
//!    of some index (primary key first),
//! 2. an **index prefix/range scan** when equality literals cover a prefix
//!    of an index and/or the next column is range-constrained,
//! 3. a **full table scan** otherwise.
//!
//! The full `WHERE` clause is always re-applied as a residual filter, so
//! access-path bounds may be approximate-but-covering.

use bytes::Bytes;

use crate::expr::{BinOp, Expr};
use crate::row::{encode_key, key_prefix_successor};
use crate::schema::TableSchema;
use crate::types::Value;

/// How to fetch the base table's rows.
#[derive(Clone, Debug, PartialEq)]
pub enum Access {
    /// Scan every record of the table.
    FullScan,
    /// Exact lookup on the named index with a fully-encoded key.
    IndexEq { index: String, key: Bytes },
    /// Range scan `[lo, hi)` on the named index.
    IndexRange { index: String, lo: Bytes, hi: Option<Bytes> },
}

/// An equality or range constraint on one column, extracted from WHERE.
#[derive(Clone, Debug)]
struct Constraint {
    column: usize,
    op: BinOp,
    value: Value,
}

/// Split a WHERE clause into top-level conjuncts.
fn conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary(BinOp::And, l, r) => {
            conjuncts(l, out);
            conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// Extract `column <op> literal` constraints (either operand order) that
/// reference the base table (qualifier `base` or none).
fn constraints(schema: &TableSchema, base: &str, where_clause: &Expr) -> Vec<Constraint> {
    let mut cj = Vec::new();
    conjuncts(where_clause, &mut cj);
    let mut out = Vec::new();
    let col_of = |e: &Expr| -> Option<usize> {
        match e {
            Expr::Column(q, n) if q.as_deref().map(|q| q == base).unwrap_or(true) => {
                schema.column_index(n)
            }
            _ => None,
        }
    };
    let lit_of = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v.clone()),
            Expr::Neg(inner) => match inner.as_ref() {
                Expr::Literal(Value::Int(i)) => Some(Value::Int(-i)),
                Expr::Literal(Value::Double(d)) => Some(Value::Double(-d)),
                _ => None,
            },
            _ => None,
        }
    };
    for c in cj {
        match &c {
            Expr::Binary(op, l, r)
                if matches!(op, BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) =>
            {
                if let (Some(col), Some(v)) = (col_of(l), lit_of(r)) {
                    out.push(Constraint { column: col, op: *op, value: v });
                } else if let (Some(col), Some(v)) = (col_of(r), lit_of(l)) {
                    // Flip the operator: `5 < a` is `a > 5`.
                    let flipped = match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Le => BinOp::Ge,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::Ge => BinOp::Le,
                        other => *other,
                    };
                    out.push(Constraint { column: col, op: flipped, value: v });
                }
            }
            Expr::Between(e, lo, hi) => {
                if let (Some(col), Some(l), Some(h)) = (col_of(e), lit_of(lo), lit_of(hi)) {
                    out.push(Constraint { column: col, op: BinOp::Ge, value: l });
                    out.push(Constraint { column: col, op: BinOp::Le, value: h });
                }
            }
            _ => {}
        }
    }
    out
}

/// Every index of the table as `(name, column indices)`; pk first.
fn indexes(schema: &TableSchema) -> Vec<(String, Vec<usize>)> {
    let mut out = vec![("pk".to_string(), schema.primary_key.clone())];
    out.extend(schema.secondary.iter().cloned());
    out
}

/// Pick the access path for `schema` given an optional WHERE clause.
/// `base` is the effective (aliased) name of the FROM table.
pub fn plan_access(schema: &TableSchema, base: &str, where_clause: Option<&Expr>) -> Access {
    let Some(w) = where_clause else { return Access::FullScan };
    let cons = constraints(schema, base, w);
    if cons.is_empty() {
        return Access::FullScan;
    }
    let eq_of = |col: usize| -> Option<&Value> {
        cons.iter().find(|c| c.column == col && c.op == BinOp::Eq).map(|c| &c.value)
    };

    // 1. Full equality cover (pk first).
    for (name, cols) in indexes(schema) {
        let values: Option<Vec<Value>> = cols.iter().map(|c| eq_of(*c).cloned()).collect();
        if let Some(values) = values {
            return Access::IndexEq { index: name, key: encode_key(&values) };
        }
    }

    // 2. Equality prefix (+ optional range on the next column).
    let mut best: Option<(Access, usize)> = None; // (plan, matched columns)
    for (name, cols) in indexes(schema) {
        let mut prefix = Vec::new();
        for c in &cols {
            match eq_of(*c) {
                Some(v) => prefix.push(v.clone()),
                None => break,
            }
        }
        let next_col = cols.get(prefix.len()).copied();
        let mut lo_val: Option<Value> = None;
        let mut hi_val: Option<(Value, bool)> = None; // (value, inclusive)
        if let Some(nc) = next_col {
            for c in cons.iter().filter(|c| c.column == nc) {
                match c.op {
                    BinOp::Gt | BinOp::Ge => lo_val = Some(c.value.clone()),
                    BinOp::Lt => hi_val = Some((c.value.clone(), false)),
                    BinOp::Le => hi_val = Some((c.value.clone(), true)),
                    _ => {}
                }
            }
        }
        let matched = prefix.len() + usize::from(lo_val.is_some() || hi_val.is_some());
        if matched == 0 {
            continue;
        }
        let lo = match &lo_val {
            Some(v) => {
                let mut vals = prefix.clone();
                vals.push(v.clone());
                encode_key(&vals)
            }
            None => encode_key(&prefix),
        };
        let hi = match &hi_val {
            Some((v, inclusive)) => {
                let mut vals = prefix.clone();
                vals.push(v.clone());
                Some(if *inclusive { key_prefix_successor(&vals) } else { encode_key(&vals) })
            }
            None if !prefix.is_empty() => Some(key_prefix_successor(&prefix)),
            None => None,
        };
        let plan = Access::IndexRange { index: name, lo, hi };
        if best.as_ref().map(|(_, m)| matched > *m).unwrap_or(true) {
            best = Some((plan, matched));
        }
    }
    best.map(|(p, _)| p).unwrap_or(Access::FullScan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, Statement};
    use crate::schema::Column;
    use crate::types::DataType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                Column { name: "w".into(), dtype: DataType::Int, nullable: false },
                Column { name: "d".into(), dtype: DataType::Int, nullable: false },
                Column { name: "name".into(), dtype: DataType::Text, nullable: true },
            ],
            primary_key: vec![0, 1],
            secondary: vec![("by_name".into(), vec![2])],
        }
    }

    fn where_of(sql: &str) -> Expr {
        match parse(sql).unwrap() {
            Statement::Select(s) => s.where_clause.unwrap(),
            _ => panic!(),
        }
    }

    #[test]
    fn pk_equality_becomes_exact_lookup() {
        let w = where_of("SELECT * FROM t WHERE w = 1 AND d = 2");
        let access = plan_access(&schema(), "t", Some(&w));
        assert_eq!(
            access,
            Access::IndexEq {
                index: "pk".into(),
                key: encode_key(&[Value::Int(1), Value::Int(2)])
            }
        );
    }

    #[test]
    fn secondary_equality_lookup() {
        let w = where_of("SELECT * FROM t WHERE name = 'x'");
        let access = plan_access(&schema(), "t", Some(&w));
        assert_eq!(
            access,
            Access::IndexEq {
                index: "by_name".into(),
                key: encode_key(&[Value::Text("x".into())])
            }
        );
    }

    #[test]
    fn pk_prefix_becomes_range() {
        let w = where_of("SELECT * FROM t WHERE w = 5");
        match plan_access(&schema(), "t", Some(&w)) {
            Access::IndexRange { index, lo, hi } => {
                assert_eq!(index, "pk");
                assert_eq!(lo, encode_key(&[Value::Int(5)]));
                assert_eq!(hi.unwrap(), key_prefix_successor(&[Value::Int(5)]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn range_on_leading_column() {
        let w = where_of("SELECT * FROM t WHERE w >= 3 AND w < 7");
        match plan_access(&schema(), "t", Some(&w)) {
            Access::IndexRange { index, lo, hi } => {
                assert_eq!(index, "pk");
                assert_eq!(lo, encode_key(&[Value::Int(3)]));
                assert_eq!(hi.unwrap(), encode_key(&[Value::Int(7)]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_becomes_range() {
        let w = where_of("SELECT * FROM t WHERE w BETWEEN 3 AND 7");
        match plan_access(&schema(), "t", Some(&w)) {
            Access::IndexRange { lo, hi, .. } => {
                assert_eq!(lo, encode_key(&[Value::Int(3)]));
                assert_eq!(hi.unwrap(), key_prefix_successor(&[Value::Int(7)]));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn flipped_literal_order() {
        let w = where_of("SELECT * FROM t WHERE 1 = w AND 2 = d");
        assert!(matches!(plan_access(&schema(), "t", Some(&w)), Access::IndexEq { .. }));
        let w2 = where_of("SELECT * FROM t WHERE 3 < w");
        match plan_access(&schema(), "t", Some(&w2)) {
            Access::IndexRange { lo, .. } => assert_eq!(lo, encode_key(&[Value::Int(3)])),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unindexed_predicates_full_scan() {
        assert_eq!(plan_access(&schema(), "t", None), Access::FullScan);
        let w = where_of("SELECT * FROM t WHERE name <> 'x'");
        assert_eq!(plan_access(&schema(), "t", Some(&w)), Access::FullScan);
        // Qualifier mismatch: constraint belongs to another table.
        let w2 = where_of("SELECT * FROM t WHERE other.w = 1");
        assert_eq!(plan_access(&schema(), "t", Some(&w2)), Access::FullScan);
    }

    #[test]
    fn negative_literals() {
        let w = where_of("SELECT * FROM t WHERE w = -5 AND d = -1");
        assert!(matches!(plan_access(&schema(), "t", Some(&w)), Access::IndexEq { .. }));
    }
}

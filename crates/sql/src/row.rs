//! Row codec and order-preserving index-key encoding.
//!
//! Rows are the opaque byte payloads `tell-core` stores inside versioned
//! records. Index keys must sort as raw bytes in the distributed B+tree
//! exactly the way SQL orders the column values, so every component uses an
//! order-preserving encoding.

use bytes::Bytes;
use tell_common::codec::{orderpreserving, Reader, Writer};
use tell_common::{Error, Result};

use crate::schema::TableSchema;
use crate::types::Value;

/// Encode a row per its schema.
pub fn encode_row(schema: &TableSchema, row: &[Value]) -> Result<Bytes> {
    debug_assert_eq!(row.len(), schema.arity());
    let mut out = Vec::with_capacity(16 * row.len());
    for value in row {
        match value {
            Value::Null => out.put_u8(0),
            Value::Int(i) => {
                out.put_u8(1);
                out.put_i64(*i);
            }
            Value::Double(d) => {
                out.put_u8(2);
                out.put_f64(*d);
            }
            Value::Text(s) => {
                out.put_u8(3);
                out.put_string(s);
            }
            Value::Bool(b) => {
                out.put_u8(4);
                out.put_u8(*b as u8);
            }
        }
    }
    Ok(Bytes::from(out))
}

/// Decode a row; the schema fixes the arity (types are self-describing so
/// schema evolution could reuse old rows).
pub fn decode_row(schema: &TableSchema, buf: &[u8]) -> Result<Vec<Value>> {
    let mut r = Reader::new(buf);
    let mut row = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        row.push(decode_value(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(Error::corrupt("trailing bytes in row"));
    }
    Ok(row)
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Double(r.f64()?),
        3 => Value::Text(r.string()?),
        4 => Value::Bool(r.u8()? == 1),
        x => return Err(Error::corrupt(format!("unknown value tag {x}"))),
    })
}

/// Append the order-preserving encoding of one key component.
///
/// * NULL sorts before everything (tag 0 vs 1).
/// * Ints use the sign-flipped big-endian transform.
/// * Doubles use the IEEE-754 total-order transform.
/// * Text is terminated with `0x00 0x01`, embedded zero bytes escaped as
///   `0x00 0xff`, so prefixes sort correctly in composite keys.
pub fn encode_key_component(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&orderpreserving::encode_i64(*i));
        }
        Value::Double(d) => {
            out.push(1);
            let bits = d.to_bits();
            let flipped = if bits >> 63 == 1 { !bits } else { bits | (1 << 63) };
            out.extend_from_slice(&flipped.to_be_bytes());
        }
        Value::Text(s) => {
            out.push(1);
            for b in s.as_bytes() {
                if *b == 0 {
                    out.extend_from_slice(&[0x00, 0xff]);
                } else {
                    out.push(*b);
                }
            }
            out.extend_from_slice(&[0x00, 0x01]);
        }
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
    }
}

/// Composite key over several values.
pub fn encode_key(values: &[Value]) -> Bytes {
    let mut out = Vec::with_capacity(values.len() * 10);
    for v in values {
        encode_key_component(v, &mut out);
    }
    Bytes::from(out)
}

/// Extract the index key of `cols` from an encoded row. Returns `None` on
/// decode failure (treated as "no key" — the row cannot be indexed).
pub fn extract_key(schema: &TableSchema, cols: &[usize], row_bytes: &[u8]) -> Option<Bytes> {
    let row = decode_row(schema, row_bytes).ok()?;
    let values: Vec<Value> = cols.iter().map(|i| row.get(*i).cloned()).collect::<Option<_>>()?;
    Some(encode_key(&values))
}

/// Smallest key strictly greater than every composite key starting with
/// `values` (exclusive upper bound for index prefix scans).
pub fn key_prefix_successor(values: &[Value]) -> Bytes {
    let mut out = encode_key(values).to_vec();
    out.push(0xff);
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                Column { name: "a".into(), dtype: DataType::Int, nullable: false },
                Column { name: "b".into(), dtype: DataType::Double, nullable: true },
                Column { name: "c".into(), dtype: DataType::Text, nullable: true },
                Column { name: "d".into(), dtype: DataType::Bool, nullable: false },
            ],
            primary_key: vec![0],
            secondary: vec![],
        }
    }

    #[test]
    fn row_roundtrip() {
        let s = schema();
        let row = vec![
            Value::Int(-5),
            Value::Null,
            Value::Text("h\u{00e9}llo\0world".into()),
            Value::Bool(true),
        ];
        let bytes = encode_row(&s, &row).unwrap();
        assert_eq!(decode_row(&s, &bytes).unwrap(), row);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let s = schema();
        let row =
            vec![Value::Int(1), Value::Double(2.0), Value::Text("x".into()), Value::Bool(false)];
        let mut bytes = encode_row(&s, &row).unwrap().to_vec();
        bytes.push(7);
        assert!(decode_row(&s, &bytes).is_err());
    }

    #[test]
    fn int_keys_sort_numerically() {
        let vals = [-100i64, -1, 0, 1, 100, i64::MAX];
        let keys: Vec<Bytes> = vals.iter().map(|i| encode_key(&[Value::Int(*i)])).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn double_keys_sort_numerically() {
        let vals = [-1e9, -1.5, -0.0, 0.5, 2.0, 1e9];
        let keys: Vec<Bytes> = vals.iter().map(|d| encode_key(&[Value::Double(*d)])).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn text_keys_with_embedded_zero_sort_correctly() {
        let a = encode_key(&[Value::Text("ab".into())]);
        let b = encode_key(&[Value::Text("ab\0".into())]);
        let c = encode_key(&[Value::Text("abc".into())]);
        assert!(a < b && b < c);
    }

    #[test]
    fn composite_keys_sort_component_wise() {
        let k = |a: &str, b: i64| encode_key(&[Value::Text(a.into()), Value::Int(b)]);
        assert!(k("a", 9) < k("b", 0), "first component dominates");
        assert!(k("a", 1) < k("a", 2), "second breaks ties");
        // A shorter text prefix sorts before its extensions regardless of
        // the following component.
        assert!(k("a", i64::MAX) < k("aa", i64::MIN));
    }

    #[test]
    fn null_sorts_first() {
        assert!(encode_key(&[Value::Null]) < encode_key(&[Value::Int(i64::MIN)]));
        assert!(encode_key(&[Value::Null]) < encode_key(&[Value::Text(String::new())]));
    }

    #[test]
    fn extract_key_pulls_columns() {
        let s = schema();
        let row =
            vec![Value::Int(7), Value::Double(1.0), Value::Text("x".into()), Value::Bool(true)];
        let bytes = encode_row(&s, &row).unwrap();
        let key = extract_key(&s, &[0], &bytes).unwrap();
        assert_eq!(key, encode_key(&[Value::Int(7)]));
        let composite = extract_key(&s, &[2, 0], &bytes).unwrap();
        assert_eq!(composite, encode_key(&[Value::Text("x".into()), Value::Int(7)]));
        assert!(extract_key(&s, &[0], b"garbage").is_none());
    }

    #[test]
    fn prefix_successor_bounds_prefix_scans() {
        let start = encode_key(&[Value::Int(5)]);
        let end = key_prefix_successor(&[Value::Int(5)]);
        let with_more = encode_key(&[Value::Int(5), Value::Int(999)]);
        let next = encode_key(&[Value::Int(6)]);
        assert!(start < with_more && with_more < end);
        assert!(end <= next);
    }
}

//! SQL engine and sessions.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;
use tell_common::{Error, Result};
use tell_core::database::IndexSpec;
use tell_core::{Database, ProcessingNode, Transaction};
use tell_store::keys;

use crate::exec;
use crate::parser::{parse, Statement};
use crate::row::extract_key;
use crate::schema::{Column, TableSchema};
use crate::types::Value;

/// Result of one statement.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub affected: u64,
}

impl QueryResult {
    pub(crate) fn affected(n: u64) -> Self {
        QueryResult { columns: Vec::new(), rows: Vec::new(), affected: n }
    }

    /// Convenience: the single scalar of a one-row/one-column result.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(r)) if r.len() == 1 => Some(&r[0]),
            _ => None,
        }
    }
}

/// The SQL layer over a Tell database: schema registry + DDL.
pub struct SqlEngine {
    db: Arc<Database>,
    schemas: RwLock<HashMap<String, Arc<TableSchema>>>,
}

impl SqlEngine {
    /// Wrap a database.
    pub fn new(db: Arc<Database>) -> Arc<SqlEngine> {
        Arc::new(SqlEngine { db, schemas: RwLock::new(HashMap::new()) })
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// A new session (one worker / processing node). Create sessions on the
    /// threads that use them.
    pub fn session(self: &Arc<Self>) -> SqlSession {
        SqlSession { engine: Arc::clone(self), pn: self.db.processing_node() }
    }

    /// Look up a table's SQL schema (loading it from the store if another
    /// node created it).
    pub fn schema(&self, table: &str) -> Result<Arc<TableSchema>> {
        if let Some(s) = self.schemas.read().get(table) {
            return Ok(Arc::clone(s));
        }
        let client = self.db.admin_client();
        match client.get(&keys::meta(&format!("sqlschema/{table}")))? {
            Some((_, raw)) => {
                let schema = Arc::new(TableSchema::decode(&raw)?);
                self.ensure_extractors(&schema)?;
                self.schemas.write().insert(table.to_string(), Arc::clone(&schema));
                Ok(schema)
            }
            None => Err(Error::NotFound),
        }
    }

    /// Re-register extractors for a schema loaded from the store
    /// (extractors are code; every process must rebuild them).
    fn ensure_extractors(&self, schema: &Arc<TableSchema>) -> Result<()> {
        let client = self.db.admin_client();
        let def = self.db.catalog().table(&client, &schema.name)?;
        for idx in &def.indexes {
            if self.db.extractor(idx.id).is_some() {
                continue;
            }
            let cols = if idx.name == "pk" {
                schema.primary_key.clone()
            } else {
                schema
                    .secondary
                    .iter()
                    .find(|(n, _)| *n == idx.name)
                    .map(|(_, c)| c.clone())
                    .ok_or_else(|| {
                        Error::corrupt(format!("index '{}' missing from schema", idx.name))
                    })?
            };
            let s = Arc::clone(schema);
            self.db.register_extractor(
                idx.id,
                Arc::new(move |row: &[u8]| extract_key(&s, &cols, row)),
            );
        }
        Ok(())
    }

    fn create_table(
        &self,
        name: &str,
        columns: &[(String, crate::types::DataType, bool)],
        primary_key: &[String],
    ) -> Result<QueryResult> {
        let cols: Vec<Column> = columns
            .iter()
            .map(|(n, t, nullable)| Column { name: n.clone(), dtype: *t, nullable: *nullable })
            .collect();
        let schema_probe = TableSchema {
            name: name.to_string(),
            columns: cols,
            primary_key: Vec::new(),
            secondary: Vec::new(),
        };
        let pk: Vec<usize> = primary_key
            .iter()
            .map(|c| {
                schema_probe
                    .column_index(c)
                    .ok_or_else(|| Error::Query(format!("unknown PRIMARY KEY column '{c}'")))
            })
            .collect::<Result<_>>()?;
        let schema = Arc::new(TableSchema { primary_key: pk.clone(), ..schema_probe });

        let s = Arc::clone(&schema);
        let pk_cols = pk;
        let spec = IndexSpec {
            name: "pk".to_string(),
            unique: true,
            extractor: Arc::new(move |row: &[u8]| extract_key(&s, &pk_cols, row)),
        };
        self.db.create_table(name, vec![spec])?;
        let client = self.db.admin_client();
        client.insert(&keys::meta(&format!("sqlschema/{name}")), Bytes::from(schema.encode()))?;
        self.schemas.write().insert(name.to_string(), schema);
        Ok(QueryResult::affected(0))
    }

    fn create_index(&self, name: &str, table: &str, columns: &[String]) -> Result<QueryResult> {
        let schema = self.schema(table)?;
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                schema.column_index(c).ok_or_else(|| Error::Query(format!("unknown column '{c}'")))
            })
            .collect::<Result<_>>()?;
        // Persist the updated schema first, then add the core index.
        let mut updated = (*schema).clone();
        updated.secondary.push((name.to_string(), cols.clone()));
        let updated = Arc::new(updated);
        let s = Arc::clone(&updated);
        let c2 = cols;
        self.db.add_index(
            table,
            IndexSpec {
                name: name.to_string(),
                unique: false,
                extractor: Arc::new(move |row: &[u8]| extract_key(&s, &c2, row)),
            },
        )?;
        let client = self.db.admin_client();
        client.put(&keys::meta(&format!("sqlschema/{table}")), Bytes::from(updated.encode()))?;
        self.schemas.write().insert(table.to_string(), updated);
        Ok(QueryResult::affected(0))
    }
}

/// A connection-like handle: one processing node + autocommit execution.
pub struct SqlSession {
    engine: Arc<SqlEngine>,
    pn: ProcessingNode,
}

impl SqlSession {
    /// The engine behind this session.
    pub fn engine(&self) -> &Arc<SqlEngine> {
        &self.engine
    }

    /// The session's processing node (metrics, virtual clock).
    pub fn processing_node(&self) -> &ProcessingNode {
        &self.pn
    }

    /// Execute one statement. DDL runs immediately; DML/queries run in an
    /// autocommit transaction retried on SI conflicts.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        match &stmt {
            Statement::CreateTable { name, columns, primary_key } => {
                self.engine.create_table(name, columns, primary_key)
            }
            Statement::CreateIndex { name, table, columns } => {
                self.engine.create_index(name, table, columns)
            }
            _ => self.pn.run(64, |txn| exec::execute(&self.engine, txn, &stmt)),
        }
    }

    /// Run several statements in one transaction. The closure receives a
    /// [`SqlTxn`]; returning `Err` aborts, committing happens on `Ok`.
    /// SI conflicts retry the whole closure.
    pub fn transaction<T>(
        &self,
        mut body: impl FnMut(&mut SqlTxn<'_, '_>) -> Result<T>,
    ) -> Result<T> {
        self.pn.run(64, |txn| {
            let mut sql_txn = SqlTxn { engine: &self.engine, txn };
            body(&mut sql_txn)
        })
    }
}

/// SQL execution bound to an open transaction.
pub struct SqlTxn<'a, 'p> {
    engine: &'a Arc<SqlEngine>,
    txn: &'a mut Transaction<'p>,
}

impl<'a, 'p> SqlTxn<'a, 'p> {
    /// Execute a DML/query statement inside the transaction.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = parse(sql)?;
        exec::execute(self.engine, self.txn, &stmt)
    }

    /// The underlying core transaction (for mixed SQL + programmatic use).
    pub fn raw(&mut self) -> &mut Transaction<'p> {
        self.txn
    }
}

//! SQL lexer.

use tell_common::{Error, Result};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier, upper-cased for keywords (`word` keeps the
    /// original spelling for identifiers).
    Word(String),
    Int(i64),
    Double(f64),
    Str(String),
    /// Punctuation / operator: `( ) , . ; * = <> < <= > >= + - /`.
    Sym(&'static str),
    Eof,
}

impl Token {
    /// Is this the keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Is this the symbol `s`?
    pub fn is_sym(&self, s: &str) -> bool {
        matches!(self, Token::Sym(t) if *t == s)
    }
}

/// Tokenize a SQL string. Produces positions for error messages.
pub fn tokenize(input: &str) -> Result<Vec<(Token, usize)>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'-' if b.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => {
                            return Err(Error::Parse {
                                message: "unterminated string literal".into(),
                                position: start,
                            })
                        }
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // consume one UTF-8 char
                            let ch_len = utf8_len(b[i]);
                            s.push_str(&input[i..i + ch_len]);
                            i += ch_len;
                        }
                    }
                }
                out.push((Token::Str(s), start));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len()
                    && b[i] == b'.'
                    && b.get(i + 1).map(|c| c.is_ascii_digit()).unwrap_or(false)
                {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let tok = if is_float {
                    Token::Double(text.parse().map_err(|_| Error::Parse {
                        message: format!("bad number '{text}'"),
                        position: start,
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| Error::Parse {
                        message: format!("bad number '{text}'"),
                        position: start,
                    })?)
                };
                out.push((tok, start));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push((Token::Word(input[start..i].to_string()), start));
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Sym("<="), i));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push((Token::Sym("<>"), i));
                    i += 2;
                } else {
                    out.push((Token::Sym("<"), i));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Token::Sym(">="), i));
                    i += 2;
                } else {
                    out.push((Token::Sym(">"), i));
                    i += 1;
                }
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push((Token::Sym("<>"), i));
                i += 2;
            }
            b'(' | b')' | b',' | b'.' | b';' | b'*' | b'=' | b'+' | b'-' | b'/' => {
                let s = match c {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'.' => ".",
                    b';' => ";",
                    b'*' => "*",
                    b'=' => "=",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    _ => unreachable!(),
                };
                out.push((Token::Sym(s), i));
                i += 1;
            }
            _ => {
                return Err(Error::Parse {
                    message: format!(
                        "unexpected character '{}'",
                        input[i..].chars().next().unwrap()
                    ),
                    position: i,
                })
            }
        }
    }
    out.push((Token::Eof, input.len()));
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn words_numbers_strings() {
        let t = toks("SELECT a1, 'it''s', 3.5, -7 FROM t_x");
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[1], Token::Word("a1".into()));
        assert_eq!(t[3], Token::Str("it's".into()));
        assert_eq!(t[5], Token::Double(3.5));
        assert_eq!(t[7], Token::Sym("-"));
        assert_eq!(t[8], Token::Int(7));
        assert_eq!(t[10], Token::Word("t_x".into()));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn operators() {
        let t = toks("a <= b <> c >= d != e");
        assert!(t[1].is_sym("<="));
        assert!(t[3].is_sym("<>"));
        assert!(t[5].is_sym(">="));
        assert!(t[7].is_sym("<>"));
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("SELECT 1 -- the answer\n, 2");
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Sym(","),
                Token::Int(2),
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        match tokenize("SELECT 'oops") {
            Err(Error::Parse { position, .. }) => assert_eq!(position, 7),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let t = toks("select");
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }

    #[test]
    fn unicode_in_strings() {
        let t = toks("'h\u{00e9}llo \u{4e16}\u{754c}'");
        assert_eq!(t[0], Token::Str("h\u{00e9}llo \u{4e16}\u{754c}".into()));
    }
}

//! Expression AST and evaluation.

use std::fmt;

use tell_common::{Error, Result};

use crate::types::Value;

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// An expression. Column references start as names
/// (`Expr::Column`) and are resolved to positional `Expr::ColumnIdx`
/// references by the planner.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Unresolved column reference: optional qualifier + name.
    Column(Option<String>, String),
    /// Resolved reference into the executor's combined row.
    ColumnIdx(usize),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    IsNull(Box<Expr>, /*negated=*/ bool),
    /// `expr BETWEEN a AND b` (inclusive).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Expr>),
    /// Aggregate call; `None` argument is `COUNT(*)`. Only valid in
    /// projections of grouped queries.
    Aggregate(AggFunc, Option<Box<Expr>>),
}

impl Expr {
    /// Evaluate against a resolved row. Aggregates must have been replaced
    /// by the executor before evaluation.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::ColumnIdx(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Query(format!("column index {i} out of range"))),
            Expr::Column(q, n) => Err(Error::Query(format!(
                "unresolved column reference '{}{}'",
                q.as_deref().map(|s| format!("{s}.")).unwrap_or_default(),
                n
            ))),
            Expr::Binary(op, l, r) => eval_binary(*op, l.eval(row)?, r.eval(row)?),
            Expr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Query(format!("NOT applied to non-boolean {v}"))),
            },
            Expr::Neg(e) => match e.eval(row)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Double(d) => Ok(Value::Double(-d)),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Query(format!("cannot negate {v}"))),
            },
            Expr::IsNull(e, negated) => {
                let is_null = e.eval(row)?.is_null();
                Ok(Value::Bool(is_null != *negated))
            }
            Expr::Between(e, lo, hi) => {
                let v = e.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                    (Some(a), Some(b)) => Ok(Value::Bool(
                        a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater,
                    )),
                    _ => Ok(Value::Null),
                }
            }
            Expr::InList(e, list) => {
                let v = e.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                for item in list {
                    let i = item.eval(row)?;
                    if v.sql_cmp(&i) == Some(std::cmp::Ordering::Equal) {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Aggregate(..) => Err(Error::Query("aggregate outside GROUP BY context".into())),
        }
    }

    /// Recursively visit sub-expressions.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Binary(_, l, r) => {
                l.walk(f);
                r.walk(f);
            }
            Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e, _) => e.walk(f),
            Expr::Between(a, b, c) => {
                a.walk(f);
                b.walk(f);
                c.walk(f);
            }
            Expr::InList(e, list) => {
                e.walk(f);
                for i in list {
                    i.walk(f);
                }
            }
            Expr::Aggregate(_, Some(e)) => e.walk(f),
            _ => {}
        }
    }

    /// Does the expression contain an aggregate call?
    pub fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::Aggregate(..)) {
                found = true;
            }
        });
        found
    }

    /// Map every node bottom-up (used by the planner to resolve columns).
    pub fn map(&self, f: &impl Fn(Expr) -> Result<Expr>) -> Result<Expr> {
        let mapped = match self {
            Expr::Binary(op, l, r) => Expr::Binary(*op, Box::new(l.map(f)?), Box::new(r.map(f)?)),
            Expr::Not(e) => Expr::Not(Box::new(e.map(f)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.map(f)?)),
            Expr::IsNull(e, n) => Expr::IsNull(Box::new(e.map(f)?), *n),
            Expr::Between(a, b, c) => {
                Expr::Between(Box::new(a.map(f)?), Box::new(b.map(f)?), Box::new(c.map(f)?))
            }
            Expr::InList(e, list) => Expr::InList(
                Box::new(e.map(f)?),
                list.iter().map(|i| i.map(f)).collect::<Result<_>>()?,
            ),
            Expr::Aggregate(func, arg) => Expr::Aggregate(
                *func,
                match arg {
                    Some(e) => Some(Box::new(e.map(f)?)),
                    None => None,
                },
            ),
            other => other.clone(),
        };
        f(mapped)
    }
}

fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use std::cmp::Ordering;
    match op {
        BinOp::And => Ok(match (&l, &r) {
            (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a && *b),
            _ => return Err(Error::Query("AND on non-boolean".into())),
        }),
        BinOp::Or => Ok(match (&l, &r) {
            (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Bool(a), Value::Bool(b)) => Value::Bool(*a || *b),
            _ => return Err(Error::Query("OR on non-boolean".into())),
        }),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let cmp = l.sql_cmp(&r);
            Ok(match cmp {
                None => Value::Null,
                Some(o) => Value::Bool(match op {
                    BinOp::Eq => o == Ordering::Equal,
                    BinOp::Ne => o != Ordering::Equal,
                    BinOp::Lt => o == Ordering::Less,
                    BinOp::Le => o != Ordering::Greater,
                    BinOp::Gt => o == Ordering::Greater,
                    BinOp::Ge => o != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                return Ok(match op {
                    BinOp::Add => Value::Int(a.wrapping_add(*b)),
                    BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
                    BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
                    BinOp::Div => {
                        if *b == 0 {
                            return Err(Error::Query("division by zero".into()));
                        }
                        Value::Int(a / b)
                    }
                    _ => unreachable!(),
                });
            }
            let (a, b) = (
                l.as_f64().ok_or_else(|| Error::Query(format!("arithmetic on {l}")))?,
                r.as_f64().ok_or_else(|| Error::Query(format!("arithmetic on {r}")))?,
            );
            Ok(Value::Double(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Query("division by zero".into()));
                    }
                    a / b
                }
                _ => unreachable!(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    #[test]
    fn arithmetic() {
        assert_eq!(bin(BinOp::Add, lit(2i64), lit(3i64)).eval(&[]).unwrap(), Value::Int(5));
        assert_eq!(bin(BinOp::Mul, lit(2i64), lit(2.5)).eval(&[]).unwrap(), Value::Double(5.0));
        assert_eq!(bin(BinOp::Div, lit(7i64), lit(2i64)).eval(&[]).unwrap(), Value::Int(3));
        assert!(bin(BinOp::Div, lit(1i64), lit(0i64)).eval(&[]).is_err());
        assert_eq!(
            bin(BinOp::Add, lit(1i64), Expr::Literal(Value::Null)).eval(&[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let t = bin(BinOp::Lt, lit(1i64), lit(2i64));
        let f = bin(BinOp::Eq, lit("a"), lit("b"));
        assert_eq!(t.eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(f.eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(bin(BinOp::And, t.clone(), f.clone()).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(bin(BinOp::Or, t.clone(), f.clone()).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(Expr::Not(Box::new(t)).eval(&[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::Literal(Value::Null);
        let tru = lit(true);
        let fal = lit(false);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        assert_eq!(bin(BinOp::And, null.clone(), fal).eval(&[]).unwrap(), Value::Bool(false));
        assert_eq!(bin(BinOp::Or, null.clone(), tru.clone()).eval(&[]).unwrap(), Value::Bool(true));
        assert_eq!(bin(BinOp::And, null.clone(), tru).eval(&[]).unwrap(), Value::Null);
        assert_eq!(bin(BinOp::Eq, null.clone(), lit(1i64)).eval(&[]).unwrap(), Value::Null);
        assert_eq!(Expr::IsNull(Box::new(null), false).eval(&[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_and_in() {
        let between = Expr::Between(Box::new(lit(5i64)), Box::new(lit(1i64)), Box::new(lit(10i64)));
        assert_eq!(between.eval(&[]).unwrap(), Value::Bool(true));
        let inlist = Expr::InList(Box::new(lit("b")), vec![lit("a"), lit("b")]);
        assert_eq!(inlist.eval(&[]).unwrap(), Value::Bool(true));
        let notin = Expr::InList(Box::new(lit("z")), vec![lit("a"), lit("b")]);
        assert_eq!(notin.eval(&[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn column_resolution_required() {
        let unresolved = Expr::Column(None, "x".into());
        assert!(unresolved.eval(&[Value::Int(1)]).is_err());
        let resolved = Expr::ColumnIdx(0);
        assert_eq!(resolved.eval(&[Value::Int(1)]).unwrap(), Value::Int(1));
        assert!(Expr::ColumnIdx(5).eval(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn aggregate_detection() {
        let agg = bin(
            BinOp::Add,
            Expr::Aggregate(AggFunc::Sum, Some(Box::new(Expr::ColumnIdx(0)))),
            lit(1i64),
        );
        assert!(agg.has_aggregate());
        assert!(!lit(1i64).has_aggregate());
    }
}

//! Recursive-descent SQL parser.

use tell_common::{Error, Result};

use crate::expr::{AggFunc, BinOp, Expr};
use crate::token::{tokenize, Token};
use crate::types::{DataType, Value};

/// A table reference with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    pub name: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name queries refer to this table by.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// SELECT projection list.
#[derive(Clone, Debug, PartialEq)]
pub enum Projection {
    Star,
    Exprs(Vec<(Expr, Option<String>)>),
}

/// A parsed SELECT.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectStmt {
    pub projection: Projection,
    pub from: TableRef,
    pub joins: Vec<(TableRef, Expr)>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub order_by: Vec<(Expr, bool)>,
    pub limit: Option<usize>,
}

/// Any parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    CreateTable { name: String, columns: Vec<(String, DataType, bool)>, primary_key: Vec<String> },
    CreateIndex { name: String, table: String, columns: Vec<String> },
    Insert { table: String, columns: Option<Vec<String>>, rows: Vec<Vec<Expr>> },
    Select(SelectStmt),
    Update { table: String, sets: Vec<(String, Expr)>, where_clause: Option<Expr> },
    Delete { table: String, where_clause: Option<Expr> },
}

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].0
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].0.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::Parse { message: msg.into(), position: self.position() })
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn accept_sym(&mut self, s: &str) -> bool {
        if self.peek().is_sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if self.accept_sym(s) {
            Ok(())
        } else {
            self.err(format!("expected '{s}', found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek()))
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Word(w) if !is_reserved(&w) => {
                self.bump();
                Ok(w)
            }
            t => self.err(format!("expected identifier, found {t:?}")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek().is_kw("CREATE") {
            self.bump();
            if self.accept_kw("TABLE") {
                return self.create_table();
            }
            if self.accept_kw("INDEX") {
                return self.create_index();
            }
            return self.err("expected TABLE or INDEX after CREATE");
        }
        if self.accept_kw("INSERT") {
            return self.insert();
        }
        if self.peek().is_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.accept_kw("UPDATE") {
            return self.update();
        }
        if self.accept_kw("DELETE") {
            return self.delete();
        }
        self.err(format!("expected a statement, found {:?}", self.peek()))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.accept_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect_sym("(")?;
                loop {
                    primary_key.push(self.identifier()?);
                    if !self.accept_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            } else {
                let cname = self.identifier()?;
                let dtype = self.data_type()?;
                let mut nullable = true;
                loop {
                    if self.accept_kw("NOT") {
                        self.expect_kw("NULL")?;
                        nullable = false;
                    } else if self.accept_kw("PRIMARY") {
                        self.expect_kw("KEY")?;
                        primary_key.push(cname.clone());
                        nullable = false;
                    } else {
                        break;
                    }
                }
                columns.push((cname, dtype, nullable));
            }
            if !self.accept_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        if primary_key.is_empty() {
            return self.err("table needs a PRIMARY KEY");
        }
        Ok(Statement::CreateTable { name, columns, primary_key })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let word = match self.bump() {
            Token::Word(w) => w.to_ascii_uppercase(),
            t => return self.err(format!("expected a type, found {t:?}")),
        };
        let dtype = match word.as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => DataType::Int,
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => DataType::Double,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => return self.err(format!("unknown type '{other}'")),
        };
        // Optional length/precision arguments: VARCHAR(16), DECIMAL(12,2).
        if self.accept_sym("(") {
            loop {
                match self.bump() {
                    Token::Int(_) => {}
                    t => return self.err(format!("expected type argument, found {t:?}")),
                }
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        Ok(dtype)
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_kw("ON")?;
        let table = self.identifier()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.identifier()?);
            if !self.accept_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex { name, table, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.identifier()?;
        let columns = if self.accept_sym("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            rows.push(row);
            if !self.accept_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.identifier()?;
        let alias =
            if self.accept_kw("AS") || matches!(self.peek(), Token::Word(w) if !is_reserved(w)) {
                Some(self.identifier()?)
            } else {
                None
            };
        Ok(TableRef { name, alias })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let projection = if self.accept_sym("*") {
            Projection::Star
        } else {
            let mut exprs = Vec::new();
            loop {
                let e = self.expr()?;
                let alias = if self.accept_kw("AS") { Some(self.identifier()?) } else { None };
                exprs.push((e, alias));
                if !self.accept_sym(",") {
                    break;
                }
            }
            Projection::Exprs(exprs)
        };
        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.accept_kw("INNER");
            if !self.peek().is_kw("JOIN") {
                if inner {
                    return self.err("expected JOIN after INNER");
                }
                break;
            }
            self.bump();
            let t = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push((t, on));
        }
        let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.accept_kw("DESC") {
                    true
                } else {
                    self.accept_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.accept_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.bump() {
                Token::Int(n) if n >= 0 => Some(n as usize),
                t => return self.err(format!("expected LIMIT count, found {t:?}")),
            }
        } else {
            None
        };
        Ok(SelectStmt { projection, from, joins, where_clause, group_by, order_by, limit })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.identifier()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_sym("=")?;
            sets.push((col, self.expr()?));
            if !self.accept_sym(",") {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        if self.accept_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between(Box::new(left), Box::new(lo), Box::new(hi)));
        }
        if self.accept_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.accept_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(Expr::InList(Box::new(left), list));
        }
        for (sym, op) in [
            ("=", BinOp::Eq),
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.accept_sym(sym) {
                let right = self.additive()?;
                return Ok(Expr::Binary(op, Box::new(left), Box::new(right)));
            }
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.accept_sym("+") {
                let right = self.multiplicative()?;
                left = Expr::Binary(BinOp::Add, Box::new(left), Box::new(right));
            } else if self.accept_sym("-") {
                let right = self.multiplicative()?;
                left = Expr::Binary(BinOp::Sub, Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            if self.accept_sym("*") {
                let right = self.unary()?;
                left = Expr::Binary(BinOp::Mul, Box::new(left), Box::new(right));
            } else if self.accept_sym("/") {
                let right = self.unary()?;
                left = Expr::Binary(BinOp::Div, Box::new(left), Box::new(right));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept_sym("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.accept_sym("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Token::Double(d) => {
                self.bump();
                Ok(Expr::Literal(Value::Double(d)))
            }
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Token::Word(w) => {
                let upper = w.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(true)))
                    }
                    "FALSE" => {
                        self.bump();
                        Ok(Expr::Literal(Value::Bool(false)))
                    }
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                        self.bump();
                        self.expect_sym("(")?;
                        let func = match upper.as_str() {
                            "COUNT" => AggFunc::Count,
                            "SUM" => AggFunc::Sum,
                            "AVG" => AggFunc::Avg,
                            "MIN" => AggFunc::Min,
                            _ => AggFunc::Max,
                        };
                        let arg = if self.accept_sym("*") {
                            if func != AggFunc::Count {
                                return self.err("only COUNT accepts *");
                            }
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_sym(")")?;
                        Ok(Expr::Aggregate(func, arg))
                    }
                    _ if is_reserved(&w) => {
                        self.err(format!("unexpected keyword '{w}' in expression"))
                    }
                    _ => {
                        self.bump();
                        if self.accept_sym(".") {
                            let col = self.identifier()?;
                            Ok(Expr::Column(Some(w), col))
                        } else {
                            Ok(Expr::Column(None, w))
                        }
                    }
                }
            }
            t => self.err(format!("unexpected token {t:?} in expression")),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "INSERT", "INTO", "VALUES",
        "UPDATE", "SET", "DELETE", "CREATE", "TABLE", "INDEX", "ON", "JOIN", "INNER", "AND", "OR",
        "NOT", "AS", "PRIMARY", "KEY", "BETWEEN", "IN", "IS", "DESC", "ASC", "HAVING",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_pk() {
        let s = parse(
            "CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR(24) NOT NULL, price DECIMAL(5,2))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns, primary_key } => {
                assert_eq!(name, "item");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[0], ("id".into(), DataType::Int, false));
                assert_eq!(columns[1], ("name".into(), DataType::Text, false));
                assert_eq!(columns[2], ("price".into(), DataType::Double, true));
                assert_eq!(primary_key, vec!["id"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_composite_pk() {
        let s = parse("CREATE TABLE t (a INT, b INT, c TEXT, PRIMARY KEY (a, b))").unwrap();
        match s {
            Statement::CreateTable { primary_key, .. } => assert_eq!(primary_key, vec!["a", "b"]),
            other => panic!("{other:?}"),
        }
        assert!(parse("CREATE TABLE t (a INT)").is_err(), "PK required");
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse(
            "SELECT g, COUNT(*) AS n, SUM(v) FROM t WHERE v > 10 AND g IN (1,2) \
             GROUP BY g ORDER BY n DESC, g LIMIT 5;",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.projection, Projection::Exprs(ref e) if e.len() == 3));
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by.len(), 2);
                assert!(sel.order_by[0].1, "DESC");
                assert!(!sel.order_by[1].1);
                assert_eq!(sel.limit, Some(5));
                assert!(sel.where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_join_and_aliases() {
        let s = parse(
            "SELECT o.id, c.name FROM orders o JOIN customer AS c ON o.cust_id = c.id WHERE c.name = 'bob'",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from.name, "orders");
                assert_eq!(sel.from.alias.as_deref(), Some("o"));
                assert_eq!(sel.joins.len(), 1);
                assert_eq!(sel.joins[0].0.effective_name(), "c");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 7").unwrap();
        match s {
            Statement::Update { sets, where_clause, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(where_clause.is_some());
            }
            other => panic!("{other:?}"),
        }
        let d = parse("DELETE FROM t WHERE a BETWEEN 1 AND 3").unwrap();
        assert!(matches!(d, Statement::Delete { .. }));
    }

    #[test]
    fn operator_precedence() {
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s {
            Statement::Select(sel) => {
                // OR at the top: (a=1) OR ((b=2) AND (c=3))
                match sel.where_clause.unwrap() {
                    Expr::Binary(BinOp::Or, _, rhs) => {
                        assert!(matches!(*rhs, Expr::Binary(BinOp::And, _, _)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        match s {
            Statement::Select(sel) => match sel.projection {
                Projection::Exprs(e) => {
                    assert_eq!(e[0].0.eval(&[]).unwrap(), Value::Int(7));
                }
                _ => panic!(),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT t VALUES (1)").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("CREATE INDEX i ON t").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }
}

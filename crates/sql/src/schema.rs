//! Table schemas: column definitions, persisted next to the core catalog.

use tell_common::codec::{Reader, Writer};
use tell_common::{Error, Result};

use crate::types::{DataType, Value};

/// One column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// A table's columns plus key/index definitions (by column indices).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
    /// Primary-key column indices.
    pub primary_key: Vec<usize>,
    /// Secondary indexes: `(index_name, column indices)`.
    pub secondary: Vec<(String, Vec<usize>)>,
}

impl TableSchema {
    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validate a row against the schema, coercing ints into double columns.
    pub fn validate(&self, row: Vec<Value>) -> Result<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(Error::Query(format!(
                "table '{}' has {} columns, got {} values",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(self.columns.iter())
            .map(|(v, c)| {
                if v.is_null() && !c.nullable {
                    return Err(Error::Query(format!("column '{}' is NOT NULL", c.name)));
                }
                v.coerce(c.dtype)
                    .map_err(|_| Error::Query(format!("type mismatch for column '{}'", c.name)))
            })
            .collect()
    }

    /// Serialize for the store.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_string(&self.name);
        out.put_u32(self.columns.len() as u32);
        for c in &self.columns {
            out.put_string(&c.name);
            out.put_u8(match c.dtype {
                DataType::Int => 0,
                DataType::Double => 1,
                DataType::Text => 2,
                DataType::Bool => 3,
            });
            out.put_u8(c.nullable as u8);
        }
        out.put_u32(self.primary_key.len() as u32);
        for i in &self.primary_key {
            out.put_u32(*i as u32);
        }
        out.put_u32(self.secondary.len() as u32);
        for (name, cols) in &self.secondary {
            out.put_string(name);
            out.put_u32(cols.len() as u32);
            for i in cols {
                out.put_u32(*i as u32);
            }
        }
        out
    }

    /// Inverse of [`TableSchema::encode`].
    pub fn decode(buf: &[u8]) -> Result<TableSchema> {
        let mut r = Reader::new(buf);
        let name = r.string()?;
        let ncols = r.u32()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = r.string()?;
            let dtype = match r.u8()? {
                0 => DataType::Int,
                1 => DataType::Double,
                2 => DataType::Text,
                3 => DataType::Bool,
                x => return Err(Error::corrupt(format!("unknown data type tag {x}"))),
            };
            let nullable = r.u8()? == 1;
            columns.push(Column { name: cname, dtype, nullable });
        }
        let npk = r.u32()? as usize;
        let mut primary_key = Vec::with_capacity(npk);
        for _ in 0..npk {
            primary_key.push(r.u32()? as usize);
        }
        let nsec = r.u32()? as usize;
        let mut secondary = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            let iname = r.string()?;
            let nc = r.u32()? as usize;
            let mut cols = Vec::with_capacity(nc);
            for _ in 0..nc {
                cols.push(r.u32()? as usize);
            }
            secondary.push((iname, cols));
        }
        Ok(TableSchema { name, columns, primary_key, secondary })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                Column { name: "id".into(), dtype: DataType::Int, nullable: false },
                Column { name: "price".into(), dtype: DataType::Double, nullable: false },
                Column { name: "note".into(), dtype: DataType::Text, nullable: true },
            ],
            primary_key: vec![0],
            secondary: vec![("by_note".into(), vec![2])],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = schema();
        assert_eq!(TableSchema::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn validate_coerces_and_checks_nulls() {
        let s = schema();
        let row = s.validate(vec![Value::Int(1), Value::Int(2), Value::Null]).unwrap();
        assert_eq!(row[1], Value::Double(2.0));
        assert!(s.validate(vec![Value::Null, Value::Double(1.0), Value::Null]).is_err());
        assert!(s.validate(vec![Value::Int(1), Value::Double(1.0)]).is_err());
        assert!(s
            .validate(vec![Value::Text("x".into()), Value::Double(1.0), Value::Null])
            .is_err());
    }

    #[test]
    fn column_lookup() {
        let s = schema();
        assert_eq!(s.column_index("price"), Some(1));
        assert_eq!(s.column_index("absent"), None);
        assert_eq!(s.arity(), 3);
    }
}

//! SQL value system.

use std::cmp::Ordering;
use std::fmt;

use tell_common::{Error, Result};

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (`INT` / `BIGINT`).
    Int,
    /// 64-bit float (`DOUBLE` / `DECIMAL` — monetary TPC-C columns use
    /// this; precision is sufficient for the reproduction).
    Double,
    /// UTF-8 string (`TEXT` / `VARCHAR(n)`, length unenforced).
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

/// A runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Int(i64),
    Double(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    /// The value's type, if not null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Is this SQL NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for WHERE clauses (NULL and non-bool are falsy).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Numeric view (int promoted to double).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Does the value fit the column type (NULL fits everything here;
    /// nullability is checked separately)? Ints coerce into double columns.
    pub fn conforms_to(&self, t: DataType) -> bool {
        matches!(
            (self, t),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Double)
                | (Value::Double(_), DataType::Double)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Coerce into the column type (int → double when needed).
    pub fn coerce(self, t: DataType) -> Result<Value> {
        match (&self, t) {
            (Value::Int(i), DataType::Double) => Ok(Value::Double(*i as f64)),
            _ if self.conforms_to(t) => Ok(self),
            _ => Err(Error::Query(format!("cannot store {self} in a {t} column"))),
        }
    }

    /// SQL comparison. NULL compares as unknown (`None`). Ints and doubles
    /// compare numerically; other cross-type comparisons are errors caught
    /// at plan time, here they yield `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering for ORDER BY / GROUP BY (NULLs first, then by type).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Null, _) => Ordering::Less,
            (_, Value::Null) => Ordering::Greater,
            _ => self
                .sql_cmp(other)
                .unwrap_or_else(|| format!("{self:?}").cmp(&format!("{other:?}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Text("b".into())), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_puts_nulls_first() {
        let mut v = vec![Value::Int(2), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v, vec![Value::Null, Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn coercion() {
        assert_eq!(Value::Int(3).coerce(DataType::Double).unwrap(), Value::Double(3.0));
        assert_eq!(Value::Null.coerce(DataType::Int).unwrap(), Value::Null);
        assert!(Value::Text("x".into()).coerce(DataType::Int).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }
}

//! Iterator-model execution of resolved statements over a
//! [`tell_core::Transaction`].

use std::collections::HashMap;
use std::sync::Arc;

use tell_common::{Error, Result, Rid};
use tell_core::catalog::TableDef;
use tell_core::Transaction;

use crate::engine::{QueryResult, SqlEngine};
use crate::expr::{AggFunc, BinOp, Expr};
use crate::parser::{Projection, SelectStmt, Statement, TableRef};
use crate::plan::{plan_access, Access};
use crate::row::{decode_row, encode_row};
use crate::schema::TableSchema;
use crate::types::Value;

/// Per-row ORDER BY key: one `(value, descending)` pair per sort term.
type SortKey = Vec<(Value, bool)>;

/// One table in the current name scope.
struct ScopeEntry {
    name: String,
    schema: Arc<TableSchema>,
    offset: usize,
}

struct Scope {
    entries: Vec<ScopeEntry>,
    width: usize,
}

impl Scope {
    fn new() -> Self {
        Scope { entries: Vec::new(), width: 0 }
    }

    fn push(&mut self, name: &str, schema: Arc<TableSchema>) {
        let offset = self.width;
        self.width += schema.arity();
        self.entries.push(ScopeEntry { name: name.to_string(), schema, offset });
    }

    /// Resolve `qualifier.column` to an absolute index.
    fn resolve(&self, qualifier: Option<&str>, column: &str) -> Result<usize> {
        let mut found = None;
        for e in &self.entries {
            if let Some(q) = qualifier {
                if q != e.name {
                    continue;
                }
            }
            if let Some(i) = e.schema.column_index(column) {
                if found.is_some() {
                    return Err(Error::Query(format!("ambiguous column '{column}'")));
                }
                found = Some(e.offset + i);
            }
        }
        found.ok_or_else(|| {
            Error::Query(format!(
                "unknown column '{}{column}'",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))
        })
    }

    /// Resolve every column reference in an expression.
    fn resolve_expr(&self, e: &Expr) -> Result<Expr> {
        e.map(&|node| match node {
            Expr::Column(q, n) => Ok(Expr::ColumnIdx(self.resolve(q.as_deref(), &n)?)),
            other => Ok(other),
        })
    }

    /// All column names, for `SELECT *`.
    fn all_columns(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.width);
        for e in &self.entries {
            for c in &e.schema.columns {
                out.push(c.name.clone());
            }
        }
        out
    }
}

/// Execute a DML/query statement inside `txn`. DDL is handled by the
/// engine, not here.
pub fn execute(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    stmt: &Statement,
) -> Result<QueryResult> {
    match stmt {
        Statement::Insert { table, columns, rows } => insert(engine, txn, table, columns, rows),
        Statement::Select(sel) => select(engine, txn, sel),
        Statement::Update { table, sets, where_clause } => {
            update(engine, txn, table, sets, where_clause.as_ref())
        }
        Statement::Delete { table, where_clause } => {
            delete(engine, txn, table, where_clause.as_ref())
        }
        Statement::CreateTable { .. } | Statement::CreateIndex { .. } => {
            Err(Error::invalid("DDL must run outside a transaction (use SqlSession::execute)"))
        }
    }
}

/// Fetch the base rows of a table according to the chosen access path.
fn fetch_rows(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    schema: &Arc<TableSchema>,
    table: &Arc<TableDef>,
    base_name: &str,
    where_clause: Option<&Expr>,
) -> Result<Vec<(Rid, Vec<Value>)>> {
    let access = plan_access(schema, base_name, where_clause);
    let raw: Vec<(Rid, bytes::Bytes)> = match &access {
        Access::FullScan => txn.scan_table(table, usize::MAX)?,
        Access::IndexEq { index, key } => {
            let idx = table
                .index(index)
                .ok_or_else(|| Error::Query(format!("planner chose missing index '{index}'")))?;
            txn.index_lookup(table, idx.id, key)?
        }
        Access::IndexRange { index, lo, hi } => {
            let idx = table
                .index(index)
                .ok_or_else(|| Error::Query(format!("planner chose missing index '{index}'")))?;
            txn.index_range(table, idx.id, lo, hi.as_ref(), usize::MAX)?
                .into_iter()
                .map(|(_, rid, row)| (rid, row))
                .collect()
        }
    };
    let _ = engine;
    raw.into_iter().map(|(rid, bytes)| Ok((rid, decode_row(schema, &bytes)?))).collect()
}

fn insert(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    table: &str,
    columns: &Option<Vec<String>>,
    rows: &[Vec<Expr>],
) -> Result<QueryResult> {
    let schema = engine.schema(table)?;
    let def = txn.processing_node().table(table)?;
    let mut affected = 0u64;
    for row_exprs in rows {
        let values: Vec<Value> = row_exprs.iter().map(|e| e.eval(&[])).collect::<Result<_>>()?;
        let full = match columns {
            None => values,
            Some(cols) => {
                if cols.len() != values.len() {
                    return Err(Error::Query("column/value count mismatch".into()));
                }
                let mut full = vec![Value::Null; schema.arity()];
                for (c, v) in cols.iter().zip(values) {
                    let i = schema
                        .column_index(c)
                        .ok_or_else(|| Error::Query(format!("unknown column '{c}'")))?;
                    full[i] = v;
                }
                full
            }
        };
        let validated = schema.validate(full)?;
        txn.insert(&def, encode_row(&schema, &validated)?)?;
        affected += 1;
    }
    Ok(QueryResult::affected(affected))
}

fn update(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    table: &str,
    sets: &[(String, Expr)],
    where_clause: Option<&Expr>,
) -> Result<QueryResult> {
    let schema = engine.schema(table)?;
    let def = txn.processing_node().table(table)?;
    let mut scope = Scope::new();
    scope.push(table, Arc::clone(&schema));
    let filter = where_clause.map(|w| scope.resolve_expr(w)).transpose()?;
    let resolved_sets: Vec<(usize, Expr)> = sets
        .iter()
        .map(|(c, e)| {
            let i = schema
                .column_index(c)
                .ok_or_else(|| Error::Query(format!("unknown column '{c}'")))?;
            Ok((i, scope.resolve_expr(e)?))
        })
        .collect::<Result<_>>()?;
    let rows = fetch_rows(engine, txn, &schema, &def, table, where_clause)?;
    let mut affected = 0u64;
    for (rid, row) in rows {
        if let Some(f) = &filter {
            if !f.eval(&row)?.is_true() {
                continue;
            }
        }
        let mut new_row = row.clone();
        for (i, e) in &resolved_sets {
            new_row[*i] = e.eval(&row)?;
        }
        let validated = schema.validate(new_row)?;
        txn.update(&def, rid, encode_row(&schema, &validated)?)?;
        affected += 1;
    }
    Ok(QueryResult::affected(affected))
}

fn delete(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    table: &str,
    where_clause: Option<&Expr>,
) -> Result<QueryResult> {
    let schema = engine.schema(table)?;
    let def = txn.processing_node().table(table)?;
    let mut scope = Scope::new();
    scope.push(table, Arc::clone(&schema));
    let filter = where_clause.map(|w| scope.resolve_expr(w)).transpose()?;
    let rows = fetch_rows(engine, txn, &schema, &def, table, where_clause)?;
    let mut affected = 0u64;
    for (rid, row) in rows {
        if let Some(f) = &filter {
            if !f.eval(&row)?.is_true() {
                continue;
            }
        }
        txn.delete(&def, rid)?;
        affected += 1;
    }
    Ok(QueryResult::affected(affected))
}

fn select(engine: &SqlEngine, txn: &mut Transaction<'_>, sel: &SelectStmt) -> Result<QueryResult> {
    // Build the scope: FROM table, then each JOIN table.
    let base_schema = engine.schema(&sel.from.name)?;
    let base_def = txn.processing_node().table(&sel.from.name)?;
    let mut scope = Scope::new();
    scope.push(sel.from.effective_name(), Arc::clone(&base_schema));

    // Base rows: index-assisted only when there are no joins (join
    // predicates confuse single-table constraint extraction conservatively).
    let where_for_plan = if sel.joins.is_empty() { sel.where_clause.as_ref() } else { None };
    let mut rows: Vec<Vec<Value>> = fetch_rows(
        engine,
        txn,
        &base_schema,
        &base_def,
        sel.from.effective_name(),
        where_for_plan,
    )?
    .into_iter()
    .map(|(_, r)| r)
    .collect();

    // Joins (hash join on equi-conditions, nested loop otherwise).
    for (tref, on) in &sel.joins {
        rows = join(engine, txn, &mut scope, rows, tref, on)?;
    }

    // Residual filter.
    if let Some(w) = &sel.where_clause {
        let filter = scope.resolve_expr(w)?;
        let mut kept = Vec::with_capacity(rows.len());
        for r in rows {
            if filter.eval(&r)?.is_true() {
                kept.push(r);
            }
        }
        rows = kept;
    }

    // Projection setup.
    let (proj_exprs, column_names): (Vec<Expr>, Vec<String>) = match &sel.projection {
        Projection::Star => {
            let names = scope.all_columns();
            ((0..scope.width).map(Expr::ColumnIdx).collect(), names)
        }
        Projection::Exprs(list) => {
            let mut exprs = Vec::with_capacity(list.len());
            let mut names = Vec::with_capacity(list.len());
            for (e, alias) in list {
                exprs.push(scope.resolve_expr(e)?);
                names.push(alias.clone().unwrap_or_else(|| display_name(e)));
            }
            (exprs, names)
        }
    };

    let grouped = !sel.group_by.is_empty() || proj_exprs.iter().any(|e| e.has_aggregate());
    let mut output: Vec<Vec<Value>>;
    if grouped {
        let group_exprs: Vec<Expr> =
            sel.group_by.iter().map(|e| scope.resolve_expr(e)).collect::<Result<_>>()?;
        let order_exprs: Vec<(Expr, bool)> = sel
            .order_by
            .iter()
            .map(|(e, d)| Ok((resolve_order_expr(&scope, &column_names, e)?, *d)))
            .collect::<Result<_>>()?;
        output = aggregate(&rows, &group_exprs, &proj_exprs, &order_exprs)?;
    } else {
        // Sort on the pre-projection scope rows so ORDER BY can reference
        // non-projected columns; aliases referencing projections also work.
        if !sel.order_by.is_empty() {
            let mut keyed: Vec<(SortKey, Vec<Value>)> = Vec::with_capacity(rows.len());
            for r in rows {
                let mut keys = Vec::with_capacity(sel.order_by.len());
                for (e, desc) in &sel.order_by {
                    let resolved = match resolve_alias(&column_names, &proj_exprs, e) {
                        Some(pe) => pe.clone(),
                        None => scope.resolve_expr(e)?,
                    };
                    keys.push((resolved.eval(&r)?, *desc));
                }
                keyed.push((keys, r));
            }
            keyed.sort_by(|a, b| compare_keys(&a.0, &b.0));
            rows = keyed.into_iter().map(|(_, r)| r).collect();
        }
        output = Vec::with_capacity(rows.len());
        for r in &rows {
            output.push(proj_exprs.iter().map(|e| e.eval(r)).collect::<Result<_>>()?);
        }
    }

    if let Some(n) = sel.limit {
        output.truncate(n);
    }
    Ok(QueryResult { columns: column_names, rows: output, affected: 0 })
}

/// ORDER BY expression in a grouped query: alias → the projection's
/// expression; otherwise resolve against the scope (must then be a group
/// column or aggregate).
fn resolve_order_expr(scope: &Scope, names: &[String], e: &Expr) -> Result<Expr> {
    if let Expr::Column(None, n) = e {
        if let Some(i) = names.iter().position(|c| c == n) {
            // Marker: refer to output column i via a special index beyond
            // the group row — handled in aggregate() by evaluating the
            // projection first. Encode as the projection expression itself.
            return Ok(Expr::Aggregate(
                AggFunc::Count,
                Some(Box::new(Expr::ColumnIdx(usize::MAX - i))),
            ));
        }
    }
    scope.resolve_expr(e)
}

fn resolve_alias<'a>(names: &[String], proj: &'a [Expr], e: &Expr) -> Option<&'a Expr> {
    if let Expr::Column(None, n) = e {
        if let Some(i) = names.iter().position(|c| c == n) {
            return proj.get(i);
        }
    }
    None
}

fn compare_keys(a: &[(Value, bool)], b: &[(Value, bool)]) -> std::cmp::Ordering {
    for ((va, desc), (vb, _)) in a.iter().zip(b.iter()) {
        let o = va.total_cmp(vb);
        let o = if *desc { o.reverse() } else { o };
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column(_, n) => n.clone(),
        Expr::Aggregate(f, arg) => {
            let fname = match f {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                None => format!("{fname}(*)"),
                Some(a) => format!("{fname}({})", display_name(a)),
            }
        }
        _ => "expr".into(),
    }
}

/// Hash/nested-loop join `left` (the accumulated scope rows) with `tref`.
fn join(
    engine: &SqlEngine,
    txn: &mut Transaction<'_>,
    scope: &mut Scope,
    left: Vec<Vec<Value>>,
    tref: &TableRef,
    on: &Expr,
) -> Result<Vec<Vec<Value>>> {
    let right_schema = engine.schema(&tref.name)?;
    let right_def = txn.processing_node().table(&tref.name)?;
    let right_rows: Vec<Vec<Value>> = txn
        .scan_table(&right_def, usize::MAX)?
        .into_iter()
        .map(|(_, b)| decode_row(&right_schema, &b))
        .collect::<Result<_>>()?;
    let left_width = scope.width;
    scope.push(tref.effective_name(), Arc::clone(&right_schema));
    let on_resolved = scope.resolve_expr(on)?;

    // Try to extract equi-join columns: conjuncts `ColumnIdx(i) = ColumnIdx(j)`
    // with i on the left side and j on the right.
    let mut pairs = Vec::new();
    let mut cj = Vec::new();
    split_conjuncts(&on_resolved, &mut cj);
    let mut all_equi = true;
    for c in &cj {
        match c {
            Expr::Binary(BinOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
                (Expr::ColumnIdx(a), Expr::ColumnIdx(b)) if *a < left_width && *b >= left_width => {
                    pairs.push((*a, *b - left_width));
                }
                (Expr::ColumnIdx(b), Expr::ColumnIdx(a)) if *a < left_width && *b >= left_width => {
                    pairs.push((*a, *b - left_width));
                }
                _ => all_equi = false,
            },
            _ => all_equi = false,
        }
    }

    let mut out = Vec::new();
    if all_equi && !pairs.is_empty() {
        // Hash join: build on the right side.
        let mut table: HashMap<Vec<String>, Vec<&Vec<Value>>> = HashMap::new();
        for r in &right_rows {
            let key: Vec<String> = pairs.iter().map(|(_, j)| format!("{:?}", r[*j])).collect();
            table.entry(key).or_default().push(r);
        }
        for l in &left {
            let key: Vec<String> = pairs.iter().map(|(i, _)| format!("{:?}", l[*i])).collect();
            if let Some(matches) = table.get(&key) {
                for r in matches {
                    let mut combined = l.clone();
                    combined.extend_from_slice(r);
                    // Re-check the full ON expression (covers NULL semantics
                    // and any extra conjuncts).
                    if on_resolved.eval(&combined)?.is_true() {
                        out.push(combined);
                    }
                }
            }
        }
    } else {
        for l in &left {
            for r in &right_rows {
                let mut combined = l.clone();
                combined.extend_from_slice(r);
                if on_resolved.eval(&combined)?.is_true() {
                    out.push(combined);
                }
            }
        }
    }
    Ok(out)
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(BinOp::And, l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// GROUP BY + aggregate evaluation.
fn aggregate(
    rows: &[Vec<Value>],
    group_exprs: &[Expr],
    proj_exprs: &[Expr],
    order_exprs: &[(Expr, bool)],
) -> Result<Vec<Vec<Value>>> {
    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<&Vec<Value>>)> = Vec::new();
    let mut lookup: HashMap<Vec<String>, usize> = HashMap::new();
    for r in rows {
        let key_vals: Vec<Value> = group_exprs.iter().map(|e| e.eval(r)).collect::<Result<_>>()?;
        let key: Vec<String> = key_vals.iter().map(|v| format!("{v:?}")).collect();
        match lookup.get(&key) {
            Some(&i) => groups[i].1.push(r),
            None => {
                lookup.insert(key, groups.len());
                groups.push((key_vals, vec![r]));
            }
        }
    }
    // A grand aggregate over an empty input still yields one group.
    if groups.is_empty() && group_exprs.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut output = Vec::with_capacity(groups.len());
    let mut order_keys: Vec<Vec<(Value, bool)>> = Vec::with_capacity(groups.len());
    for (_, members) in &groups {
        let row: Vec<Value> =
            proj_exprs.iter().map(|e| eval_with_aggregates(e, members)).collect::<Result<_>>()?;
        let mut keys = Vec::with_capacity(order_exprs.len());
        for (e, desc) in order_exprs {
            // Output-column back-references were encoded with usize::MAX - i.
            let v = if let Expr::Aggregate(AggFunc::Count, Some(inner)) = e {
                if let Expr::ColumnIdx(i) = inner.as_ref() {
                    if *i > usize::MAX / 2 {
                        row[usize::MAX - *i].clone()
                    } else {
                        eval_with_aggregates(e, members)?
                    }
                } else {
                    eval_with_aggregates(e, members)?
                }
            } else {
                eval_with_aggregates(e, members)?
            };
            keys.push((v, *desc));
        }
        output.push(row);
        order_keys.push(keys);
    }
    if !order_exprs.is_empty() {
        let mut zipped: Vec<(SortKey, Vec<Value>)> = order_keys.into_iter().zip(output).collect();
        zipped.sort_by(|a, b| compare_keys(&a.0, &b.0));
        output = zipped.into_iter().map(|(_, r)| r).collect();
    }
    Ok(output)
}

/// Evaluate an expression over a group by substituting aggregate nodes
/// with their computed values.
fn eval_with_aggregates(e: &Expr, members: &[&Vec<Value>]) -> Result<Value> {
    let substituted = e.map(&|node| match node {
        Expr::Aggregate(func, arg) => {
            let v = compute_aggregate(func, arg.as_deref(), members)?;
            Ok(Expr::Literal(v))
        }
        other => Ok(other),
    })?;
    // Non-aggregate parts reference group columns: every member agrees, so
    // evaluate on the first (or an empty row for empty grand aggregates).
    static EMPTY: &[Value] = &[];
    let row: &[Value] = members.first().map(|r| r.as_slice()).unwrap_or(EMPTY);
    substituted.eval(row)
}

fn compute_aggregate(func: AggFunc, arg: Option<&Expr>, members: &[&Vec<Value>]) -> Result<Value> {
    match func {
        AggFunc::Count => match arg {
            None => Ok(Value::Int(members.len() as i64)),
            Some(e) => {
                let mut n = 0i64;
                for m in members {
                    if !e.eval(m)?.is_null() {
                        n += 1;
                    }
                }
                Ok(Value::Int(n))
            }
        },
        AggFunc::Sum | AggFunc::Avg => {
            let e = arg.ok_or_else(|| Error::Query(format!("{func:?} needs an argument")))?;
            let mut sum = 0.0;
            let mut n = 0i64;
            let mut all_int = true;
            for m in members {
                let v = e.eval(m)?;
                if v.is_null() {
                    continue;
                }
                if !matches!(v, Value::Int(_)) {
                    all_int = false;
                }
                sum += v.as_f64().ok_or_else(|| Error::Query(format!("cannot aggregate {v}")))?;
                n += 1;
            }
            if n == 0 {
                return Ok(Value::Null);
            }
            Ok(match func {
                AggFunc::Sum if all_int => Value::Int(sum as i64),
                AggFunc::Sum => Value::Double(sum),
                _ => Value::Double(sum / n as f64),
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let e = arg.ok_or_else(|| Error::Query(format!("{func:?} needs an argument")))?;
            let mut best: Option<Value> = None;
            for m in members {
                let v = e.eval(m)?;
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let take_new = match v.sql_cmp(&b) {
                            Some(std::cmp::Ordering::Less) => func == AggFunc::Min,
                            Some(std::cmp::Ordering::Greater) => func == AggFunc::Max,
                            _ => false,
                        };
                        if take_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

//! Model-based property tests: the distributed latch-free B+tree must
//! behave exactly like a sorted set of `(key, rid)` pairs under arbitrary
//! insert/remove/lookup/range sequences, for any node fan-out.

use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use proptest::prelude::*;
use tell_common::IndexId;
use tell_index::{BTreeConfig, DistributedBTree};
use tell_store::{StoreClient, StoreCluster, StoreConfig};

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, u8),
    Remove(Vec<u8>, u8),
    Lookup(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet + short keys => plenty of duplicates and adjacency.
    prop::collection::vec(0u8..4, 0..4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u8>()).prop_map(|(k, r)| Op::Insert(k, r)),
        (key_strategy(), any::<u8>()).prop_map(|(k, r)| Op::Remove(k, r)),
        key_strategy().prop_map(Op::Lookup),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Range(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_sorted_set_model(
        ops in prop::collection::vec(op_strategy(), 0..150),
        fanout in 3usize..12,
    ) {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let tree = DistributedBTree::create(
            StoreClient::unmetered(Arc::clone(&cluster)),
            IndexId(1),
            BTreeConfig { max_entries: fanout, max_retries: 10_000 },
        )
        .unwrap();
        let mut model: BTreeSet<(Vec<u8>, u64)> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Insert(k, r) => {
                    let fresh = tree.insert(Bytes::from(k.clone()), r as u64).unwrap();
                    prop_assert_eq!(fresh, model.insert((k, r as u64)));
                }
                Op::Remove(k, r) => {
                    let removed = tree.remove(&Bytes::from(k.clone()), r as u64).unwrap();
                    prop_assert_eq!(removed, model.remove(&(k, r as u64)));
                }
                Op::Lookup(k) => {
                    let got = tree.lookup(&Bytes::from(k.clone())).unwrap();
                    let expected: Vec<u64> = model
                        .iter()
                        .filter(|(mk, _)| *mk == k)
                        .map(|(_, r)| *r)
                        .collect();
                    prop_assert_eq!(got, expected);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree
                        .range(&Bytes::from(lo.clone()), Some(&Bytes::from(hi.clone())), usize::MAX)
                        .unwrap();
                    let expected: Vec<(Bytes, u64)> = model
                        .iter()
                        .filter(|(mk, _)| *mk >= lo && *mk < hi)
                        .map(|(mk, r)| (Bytes::from(mk.clone()), *r))
                        .collect();
                    prop_assert_eq!(got, expected);
                }
            }
        }
        // Structural invariants hold and the count matches.
        prop_assert_eq!(tree.check_invariants().unwrap(), model.len());
        prop_assert_eq!(tree.len().unwrap(), model.len());
    }
}

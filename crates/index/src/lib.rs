//! `tell-index` — a latch-free distributed B+tree (§5.3 of the paper).
//!
//! Every tree node is stored as one key-value pair in the shared record
//! store and modified atomically with LL/SC, so the index can be read and
//! written by any number of processing nodes concurrently without latches.
//! The design follows the paper's Bw-tree-inspired description, realised as
//! a **B-link tree**:
//!
//! * every node carries a high fence key and a right-sibling pointer, so a
//!   reader that lands on a node that has since split simply hops right —
//!   no latch coupling, system-wide progress is guaranteed (§5.3);
//! * splits install the new right sibling *first*, then conditionally update
//!   the split node, then insert the separator into the parent — each step a
//!   single LL/SC, each retryable;
//! * inner nodes are cached on the processing node, leaves are always
//!   fetched fresh; when a leaf's fences show the cached parents are stale,
//!   the cached path is refreshed (§5.3.1 caching rule);
//! * entries are **version-unaware** `(key, rid)` pairs (§5.3.2): updates
//!   that do not change the indexed key touch no index node at all.
//!
//! Duplicate keys (secondary indexes) are supported by ordering entries on
//! the composite `(key, rid)`.

pub mod cache;
pub mod node;
pub mod tree;

pub use cache::{CacheStats, NodeCache};
pub use node::{EntryKey, NodeData};
pub use tree::{BTreeConfig, DistributedBTree};

//! The distributed latch-free B+tree.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tell_common::{Error, IndexId, Result};
use tell_store::cell::Token;
use tell_store::{keys, StoreApi, StoreClient};

use crate::cache::NodeCache;
use crate::node::{cmp_entry, min_key, EntryKey, NodeData};

/// Tree tuning knobs.
#[derive(Clone, Debug)]
pub struct BTreeConfig {
    /// Maximum entries per node before it splits.
    pub max_entries: usize,
    /// Upper bound on optimistic retries before reporting contention. The
    /// algorithm is latch-free (some operation always makes progress); this
    /// bound only turns a livelocked *test* into an error instead of a hang.
    pub max_retries: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig { max_entries: 64, max_retries: 10_000 }
    }
}

struct Descent {
    leaf_id: u64,
    leaf_token: Token,
    leaf: NodeData,
    /// Ancestor node ids, root first.
    path: Vec<u64>,
}

/// A handle to one distributed B+tree for one processing node.
///
/// The tree's nodes live in the shared store; any number of handles (on any
/// number of PNs) can operate concurrently. Each handle carries the PN-local
/// inner-node cache. Generic over the storage client so the same tree code
/// runs against the in-process store or a remote one via `tell-rpc`.
pub struct DistributedBTree<C: StoreApi = StoreClient> {
    index_id: IndexId,
    client: C,
    cache: Arc<NodeCache>,
    config: BTreeConfig,
    root_hint: Mutex<Option<u64>>,
}

impl<C: StoreApi> DistributedBTree<C> {
    /// Create a brand-new tree in the store (an empty root leaf).
    pub fn create(client: C, index_id: IndexId, config: BTreeConfig) -> Result<Self> {
        let tree = DistributedBTree {
            index_id,
            client,
            cache: Arc::new(NodeCache::new()),
            config,
            root_hint: Mutex::new(None),
        };
        let root_id = tree.alloc_node_id()?;
        tree.client.insert(&tree.node_key(root_id), NodeData::empty_root_leaf().encode())?;
        tree.client.insert(&tree.root_ptr_key(), Bytes::copy_from_slice(&root_id.to_le_bytes()))?;
        *tree.root_hint.lock() = Some(root_id);
        Ok(tree)
    }

    /// Open an existing tree (a second handle, e.g. on another PN).
    pub fn open(client: C, index_id: IndexId, config: BTreeConfig) -> Result<Self> {
        let tree = DistributedBTree {
            index_id,
            client,
            cache: Arc::new(NodeCache::new()),
            config,
            root_hint: Mutex::new(None),
        };
        tree.read_root()?; // fail fast if the tree does not exist
        Ok(tree)
    }

    /// The PN-local cache (for stats and explicit invalidation).
    pub fn cache(&self) -> &Arc<NodeCache> {
        &self.cache
    }

    /// This tree's index id.
    pub fn index_id(&self) -> IndexId {
        self.index_id
    }

    fn node_key(&self, node_id: u64) -> Bytes {
        keys::index_node(self.index_id, node_id)
    }

    fn root_ptr_key(&self) -> Bytes {
        keys::meta(&format!("idx/{}/root", self.index_id.raw()))
    }

    fn alloc_node_id(&self) -> Result<u64> {
        self.client.increment(&keys::counter(&format!("idx/{}/next", self.index_id.raw())), 1)
    }

    fn read_root(&self) -> Result<(Token, u64)> {
        let (token, raw) = self
            .client
            .get(&self.root_ptr_key())?
            .ok_or_else(|| Error::corrupt("index root pointer missing"))?;
        let id = u64::from_le_bytes(
            raw.as_ref().try_into().map_err(|_| Error::corrupt("bad root pointer"))?,
        );
        *self.root_hint.lock() = Some(id);
        Ok((token, id))
    }

    fn root_id(&self) -> Result<u64> {
        if let Some(id) = *self.root_hint.lock() {
            return Ok(id);
        }
        Ok(self.read_root()?.1)
    }

    fn fetch(&self, node_id: u64) -> Result<(Token, NodeData)> {
        let (token, raw) = self
            .client
            .get(&self.node_key(node_id))?
            .ok_or_else(|| Error::corrupt(format!("index node {node_id} missing")))?;
        Ok((token, NodeData::decode(&raw)?))
    }

    /// Fetch, preferring the cache. Freshly fetched inner nodes are cached;
    /// leaves never are (§5.3.1).
    fn fetch_cached(&self, node_id: u64) -> Result<(Token, NodeData)> {
        if let Some(hit) = self.cache.get(node_id) {
            return Ok(hit);
        }
        let (token, node) = self.fetch(node_id)?;
        if !node.is_leaf {
            self.cache.put(node_id, token, node.clone());
        }
        Ok((token, node))
    }

    fn descend(&self, k: &EntryKey, use_cache: bool) -> Result<Descent> {
        let mut node_id = self.root_id()?;
        let mut path = Vec::new();
        let mut hops = 0usize;
        for _ in 0..self.config.max_retries {
            let (token, node) =
                if use_cache { self.fetch_cached(node_id)? } else { self.fetch(node_id)? };
            if node.beyond_high(k) {
                // B-link right hop: the node split since our routing info was
                // read. If a *cached* inner node sent us here, it is stale.
                let right =
                    node.right.ok_or_else(|| Error::corrupt("high fence without right sibling"))?;
                node_id = right;
                hops += 1;
                continue;
            }
            if node.is_leaf {
                if hops > 0 && use_cache {
                    // §5.3.1: "the parent nodes are recursively updated to
                    // keep the cache consistent". Dropping them re-fetches
                    // the latest versions on the next descent.
                    for id in &path {
                        self.cache.invalidate(*id);
                    }
                    let _ = self.read_root();
                }
                return Ok(Descent { leaf_id: node_id, leaf_token: token, leaf: node, path });
            }
            path.push(node_id);
            node_id = node.route(k);
        }
        Err(Error::Unavailable("index descend retry limit exceeded".into()))
    }

    /// Insert `(key, rid)`. Returns `false` if the exact entry already
    /// existed.
    pub fn insert(&self, key: Bytes, rid: u64) -> Result<bool> {
        let k: EntryKey = (key, rid);
        for _ in 0..self.config.max_retries {
            let d = self.descend(&k, true)?;
            let mut leaf = d.leaf;
            match leaf.search(&k) {
                Ok(_) => return Ok(false),
                Err(pos) => leaf.entries.insert(pos, (k.clone(), rid)),
            }
            if leaf.entries.len() <= self.config.max_entries {
                match self.client.store_conditional(
                    &self.node_key(d.leaf_id),
                    d.leaf_token,
                    leaf.encode(),
                ) {
                    Ok(_) => return Ok(true),
                    Err(Error::Conflict) => continue,
                    Err(e) => return Err(e),
                }
            }
            // Overflow: B-link split. Install the new right sibling first
            // (unreachable until the SC below publishes it), then swing the
            // split node, then tell the parent.
            let new_id = self.alloc_node_id()?;
            let (sep, right) = leaf.split(new_id);
            self.client.insert(&self.node_key(new_id), right.encode())?;
            match self.client.store_conditional(
                &self.node_key(d.leaf_id),
                d.leaf_token,
                leaf.encode(),
            ) {
                Ok(_) => {
                    self.add_separator(&d.path, d.leaf_id, sep, new_id)?;
                    return Ok(true);
                }
                Err(Error::Conflict) => {
                    // Lost the race: remove the orphan and retry.
                    let _ = self.client.delete(&self.node_key(new_id));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(Error::Unavailable("index insert retry limit exceeded".into()))
    }

    /// Remove `(key, rid)`. Returns `false` if it was not present.
    pub fn remove(&self, key: &Bytes, rid: u64) -> Result<bool> {
        let k: EntryKey = (key.clone(), rid);
        for _ in 0..self.config.max_retries {
            // Deletions always verify against a fresh leaf.
            let d = self.descend(&k, true)?;
            let mut leaf = d.leaf;
            let pos = match leaf.search(&k) {
                Ok(p) => p,
                Err(_) => return Ok(false),
            };
            leaf.entries.remove(pos);
            match self.client.store_conditional(
                &self.node_key(d.leaf_id),
                d.leaf_token,
                leaf.encode(),
            ) {
                Ok(_) => return Ok(true),
                Err(Error::Conflict) => continue,
                Err(e) => return Err(e),
            }
        }
        Err(Error::Unavailable("index remove retry limit exceeded".into()))
    }

    /// All rids indexed under exactly `key`, in rid order.
    pub fn lookup(&self, key: &Bytes) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.walk((key.clone(), 0), |entry| {
            if entry.0 == *key {
                out.push(entry.1);
                true
            } else {
                false
            }
        })?;
        Ok(out)
    }

    /// Entries with `start <= key < end` (end `None` = unbounded), up to
    /// `limit`.
    pub fn range(
        &self,
        start: &Bytes,
        end: Option<&Bytes>,
        limit: usize,
    ) -> Result<Vec<(Bytes, u64)>> {
        let mut out = Vec::new();
        self.walk((start.clone(), 0), |entry| {
            if let Some(e) = end {
                if entry.0.as_ref() >= e.as_ref() {
                    return false;
                }
            }
            out.push((entry.0.clone(), entry.1));
            out.len() < limit
        })?;
        Ok(out)
    }

    /// Total number of entries (test/diagnostic helper; full leaf walk).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0usize;
        self.walk(min_key(), |_| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Walk leaf entries in order starting at `from`, calling `f` per entry
    /// until it returns `false` or the tree is exhausted.
    fn walk(&self, from: EntryKey, mut f: impl FnMut(&EntryKey) -> bool) -> Result<()> {
        let d = self.descend(&from, true)?;
        let mut node = d.leaf;
        loop {
            for (ek, _) in &node.entries {
                if cmp_entry(ek, &from) == std::cmp::Ordering::Less {
                    continue;
                }
                if !f(ek) {
                    return Ok(());
                }
            }
            match node.right {
                Some(r) => node = self.fetch(r)?.1,
                None => return Ok(()),
            }
        }
    }

    fn add_separator(
        &self,
        ancestors: &[u64],
        split_node: u64,
        sep: EntryKey,
        new_child: u64,
    ) -> Result<()> {
        match ancestors.split_last() {
            Some((&parent, rest)) => self.insert_into_inner(parent, rest, sep, new_child),
            None => self.grow_root_or_find_parent(split_node, sep, new_child),
        }
    }

    fn insert_into_inner(
        &self,
        mut parent_id: u64,
        ancestors: &[u64],
        sep: EntryKey,
        child: u64,
    ) -> Result<()> {
        for _ in 0..self.config.max_retries {
            let (token, mut node) = self.fetch(parent_id)?; // always fresh for writes
            if node.beyond_high(&sep) {
                parent_id = node
                    .right
                    .ok_or_else(|| Error::corrupt("inner high fence without right sibling"))?;
                continue;
            }
            if node.is_leaf {
                return Err(Error::corrupt("separator insert reached a leaf"));
            }
            match node.search(&sep) {
                Ok(_) => return Ok(()), // idempotent
                Err(pos) => node.entries.insert(pos, (sep.clone(), child)),
            }
            if node.entries.len() <= self.config.max_entries {
                match self.client.store_conditional(&self.node_key(parent_id), token, node.encode())
                {
                    Ok(t) => {
                        self.cache.put(parent_id, t, node);
                        return Ok(());
                    }
                    Err(Error::Conflict) => continue,
                    Err(e) => return Err(e),
                }
            }
            // Parent overflows: split it too (recursing toward the root).
            let new_pid = self.alloc_node_id()?;
            let (psep, pright) = node.split(new_pid);
            self.client.insert(&self.node_key(new_pid), pright.encode())?;
            match self.client.store_conditional(&self.node_key(parent_id), token, node.encode()) {
                Ok(t) => {
                    self.cache.put(parent_id, t, node);
                    self.cache.invalidate(new_pid);
                    self.add_separator(ancestors, parent_id, psep, new_pid)?;
                    return Ok(());
                }
                Err(Error::Conflict) => {
                    let _ = self.client.delete(&self.node_key(new_pid));
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Err(Error::Unavailable("separator insert retry limit exceeded".into()))
    }

    fn grow_root_or_find_parent(
        &self,
        split_node: u64,
        sep: EntryKey,
        new_child: u64,
    ) -> Result<()> {
        for _ in 0..self.config.max_retries {
            let (root_token, root_id) = self.read_root()?;
            if root_id == split_node {
                // We split the root: grow the tree by one level.
                let new_root_id = self.alloc_node_id()?;
                let new_root = NodeData {
                    is_leaf: false,
                    low: min_key(),
                    high: None,
                    right: None,
                    entries: vec![(min_key(), split_node), (sep.clone(), new_child)],
                };
                self.client.insert(&self.node_key(new_root_id), new_root.encode())?;
                match self.client.store_conditional(
                    &self.root_ptr_key(),
                    root_token,
                    Bytes::copy_from_slice(&new_root_id.to_le_bytes()),
                ) {
                    Ok(_) => {
                        *self.root_hint.lock() = Some(new_root_id);
                        return Ok(());
                    }
                    Err(Error::Conflict) => {
                        let _ = self.client.delete(&self.node_key(new_root_id));
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            // Someone grew the tree first: our split node now has a parent.
            if let Some(parent) = self.find_parent(root_id, split_node, &sep)? {
                return self.insert_into_inner(parent, &[], sep, new_child);
            }
            // Racing structure change; retry from the (re-read) root.
        }
        Err(Error::Unavailable("root grow retry limit exceeded".into()))
    }

    /// Locate the inner node whose child pointer routes `sep` to
    /// `split_node`.
    fn find_parent(&self, root_id: u64, split_node: u64, sep: &EntryKey) -> Result<Option<u64>> {
        let mut node_id = root_id;
        for _ in 0..self.config.max_retries {
            let (_, node) = self.fetch(node_id)?;
            if node.beyond_high(sep) {
                node_id = match node.right {
                    Some(r) => r,
                    None => return Ok(None),
                };
                continue;
            }
            if node.is_leaf {
                return Ok(None);
            }
            let child = node.route(sep);
            if child == split_node {
                return Ok(Some(node_id));
            }
            node_id = child;
        }
        Ok(None)
    }

    /// Structural invariant check used by tests: walks the whole tree and
    /// verifies fence chaining, entry ordering and fence containment.
    pub fn check_invariants(&self) -> Result<usize> {
        // Find the leftmost leaf by descending on the minimum key.
        let d = self.descend(&min_key(), false)?;
        let mut node = d.leaf;
        let mut count = 0usize;
        let mut prev: Option<EntryKey> = None;
        loop {
            for w in node.entries.windows(2) {
                if cmp_entry(&w[0].0, &w[1].0) != std::cmp::Ordering::Less {
                    return Err(Error::corrupt("leaf entries out of order"));
                }
            }
            for (ek, _) in &node.entries {
                if !node.covers(ek) {
                    return Err(Error::corrupt("entry outside node fences"));
                }
                if let Some(p) = &prev {
                    if cmp_entry(p, ek) != std::cmp::Ordering::Less {
                        return Err(Error::corrupt("entries out of order across leaves"));
                    }
                }
                prev = Some(ek.clone());
                count += 1;
            }
            match (node.high.clone(), node.right) {
                (Some(h), Some(r)) => {
                    let (_, next) = self.fetch(r)?;
                    if next.low != h {
                        return Err(Error::corrupt("fence chain broken between siblings"));
                    }
                    node = next;
                }
                (None, None) => return Ok(count),
                _ => return Err(Error::corrupt("high fence and right pointer disagree")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_store::{StoreCluster, StoreConfig};

    fn small_tree() -> DistributedBTree {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let client = StoreClient::unmetered(cluster);
        DistributedBTree::create(
            client,
            IndexId(1),
            BTreeConfig { max_entries: 4, max_retries: 10_000 },
        )
        .unwrap()
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn insert_lookup_remove() {
        let t = small_tree();
        assert!(t.insert(b("apple"), 1).unwrap());
        assert!(t.insert(b("banana"), 2).unwrap());
        assert!(!t.insert(b("apple"), 1).unwrap(), "duplicate entry rejected");
        assert_eq!(t.lookup(&b("apple")).unwrap(), vec![1]);
        assert_eq!(t.lookup(&b("cherry")).unwrap(), Vec::<u64>::new());
        assert!(t.remove(&b("apple"), 1).unwrap());
        assert!(!t.remove(&b("apple"), 1).unwrap());
        assert_eq!(t.lookup(&b("apple")).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn duplicate_keys_collect_all_rids() {
        let t = small_tree();
        for rid in [5u64, 1, 9, 3] {
            assert!(t.insert(b("dup"), rid).unwrap());
        }
        assert_eq!(t.lookup(&b("dup")).unwrap(), vec![1, 3, 5, 9]);
        t.remove(&b("dup"), 3).unwrap();
        assert_eq!(t.lookup(&b("dup")).unwrap(), vec![1, 5, 9]);
    }

    #[test]
    fn splits_cascade_and_order_is_kept() {
        let t = small_tree();
        let n = 500;
        for i in 0..n {
            assert!(t.insert(b(&format!("key{:05}", (i * 7919) % n)), i as u64).unwrap());
        }
        assert_eq!(t.check_invariants().unwrap(), n);
        assert_eq!(t.len().unwrap(), n);
        // Every key is findable.
        for i in 0..n {
            let key = b(&format!("key{:05}", i));
            assert_eq!(t.lookup(&key).unwrap().len(), 1, "missing {i}");
        }
    }

    #[test]
    fn range_scan_is_ordered_and_bounded() {
        let t = small_tree();
        for i in 0..100 {
            t.insert(b(&format!("r{:03}", i)), i as u64).unwrap();
        }
        let rows = t.range(&b("r010"), Some(&b("r020")), 1000).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].0, b("r010"));
        assert_eq!(rows[9].0, b("r019"));
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        // Limit applies.
        let limited = t.range(&b("r000"), None, 5).unwrap();
        assert_eq!(limited.len(), 5);
    }

    #[test]
    fn second_handle_sees_writes() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let t1 = DistributedBTree::create(
            StoreClient::unmetered(Arc::clone(&cluster)),
            IndexId(9),
            BTreeConfig { max_entries: 4, max_retries: 10_000 },
        )
        .unwrap();
        for i in 0..50 {
            t1.insert(b(&format!("x{:03}", i)), i).unwrap();
        }
        let t2 = DistributedBTree::open(
            StoreClient::unmetered(cluster),
            IndexId(9),
            BTreeConfig { max_entries: 4, max_retries: 10_000 },
        )
        .unwrap();
        assert_eq!(t2.len().unwrap(), 50);
        assert_eq!(t2.lookup(&b("x025")).unwrap(), vec![25]);
    }

    #[test]
    fn stale_cache_is_corrected_not_wrong() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = BTreeConfig { max_entries: 4, max_retries: 10_000 };
        let t1 = DistributedBTree::create(
            StoreClient::unmetered(Arc::clone(&cluster)),
            IndexId(3),
            cfg.clone(),
        )
        .unwrap();
        // Warm a second handle's cache with the small tree.
        let t2 =
            DistributedBTree::open(StoreClient::unmetered(Arc::clone(&cluster)), IndexId(3), cfg)
                .unwrap();
        for i in 0..10 {
            t1.insert(b(&format!("w{:04}", i)), i).unwrap();
        }
        t2.lookup(&b("w0005")).unwrap();
        // t1 grows the tree massively: t2's cached inner nodes are now stale.
        for i in 10..400 {
            t1.insert(b(&format!("w{:04}", i)), i).unwrap();
        }
        // t2 must still find everything through right-hops + path refresh.
        for i in (0..400).step_by(37) {
            assert_eq!(t2.lookup(&b(&format!("w{:04}", i))).unwrap(), vec![i as u64], "key {i}");
        }
        assert_eq!(t2.check_invariants().unwrap(), 400);
    }

    #[test]
    fn concurrent_inserts_lose_nothing() {
        let cluster = StoreCluster::new(StoreConfig::new(4));
        let cfg = BTreeConfig { max_entries: 8, max_retries: 100_000 };
        let t = DistributedBTree::create(
            StoreClient::unmetered(Arc::clone(&cluster)),
            IndexId(5),
            cfg.clone(),
        )
        .unwrap();
        let threads = 4;
        let per = 150;
        let mut handles = Vec::new();
        for th in 0..threads {
            let cluster = Arc::clone(&cluster);
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let t = DistributedBTree::open(StoreClient::unmetered(cluster), IndexId(5), cfg)
                    .unwrap();
                for i in 0..per {
                    let key = format!("c{:03}-{:03}", i, th);
                    t.insert(Bytes::from(key), (th * per + i) as u64).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.check_invariants().unwrap(), threads * per);
        for th in 0..threads {
            for i in 0..per {
                let key = b(&format!("c{:03}-{:03}", i, th));
                assert_eq!(t.lookup(&key).unwrap(), vec![(th * per + i) as u64]);
            }
        }
    }

    #[test]
    fn concurrent_inserts_and_removes() {
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let cfg = BTreeConfig { max_entries: 8, max_retries: 100_000 };
        let t = DistributedBTree::create(
            StoreClient::unmetered(Arc::clone(&cluster)),
            IndexId(6),
            cfg.clone(),
        )
        .unwrap();
        for i in 0..200u64 {
            t.insert(b(&format!("d{:03}", i)), i).unwrap();
        }
        let remover = {
            let cluster = Arc::clone(&cluster);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let t = DistributedBTree::open(StoreClient::unmetered(cluster), IndexId(6), cfg)
                    .unwrap();
                for i in (0..200u64).step_by(2) {
                    assert!(t.remove(&b(&format!("d{:03}", i)), i).unwrap());
                }
            })
        };
        let inserter = {
            let cluster = Arc::clone(&cluster);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let t = DistributedBTree::open(StoreClient::unmetered(cluster), IndexId(6), cfg)
                    .unwrap();
                for i in 200..300u64 {
                    assert!(t.insert(b(&format!("d{:03}", i)), i).unwrap());
                }
            })
        };
        remover.join().unwrap();
        inserter.join().unwrap();
        // 200 - 100 removed + 100 added
        assert_eq!(t.check_invariants().unwrap(), 200);
        assert!(t.lookup(&b("d000")).unwrap().is_empty());
        assert_eq!(t.lookup(&b("d299")).unwrap(), vec![299]);
    }

    #[test]
    fn cache_reduces_store_reads() {
        use tell_common::SimClock;
        use tell_netsim::{NetMeter, NetworkProfile, TrafficStats};
        let cluster = StoreCluster::new(StoreConfig::new(2));
        let clock = SimClock::new();
        let stats = TrafficStats::new();
        let meter = NetMeter::new(NetworkProfile::infiniband(), clock.clone(), Arc::clone(&stats));
        let t = DistributedBTree::create(
            StoreClient::new(Arc::clone(&cluster), meter),
            IndexId(8),
            BTreeConfig { max_entries: 8, max_retries: 10_000 },
        )
        .unwrap();
        for i in 0..300 {
            t.insert(b(&format!("h{:04}", i)), i).unwrap();
        }
        let before = stats.request_count();
        for i in 0..300 {
            t.lookup(&b(&format!("h{:04}", i))).unwrap();
        }
        let with_cache = stats.request_count() - before;
        assert!(t.cache().stats().hit_ratio() > 0.5);
        // Cold path: a fresh handle with cache disabled conceptually — use
        // uncached descends by clearing the cache every lookup.
        let before = stats.request_count();
        for i in 0..300 {
            t.cache().clear();
            t.lookup(&b(&format!("h{:04}", i))).unwrap();
        }
        let without_cache = stats.request_count() - before;
        assert!(
            with_cache * 2 <= without_cache,
            "caching inner nodes must save requests: {with_cache} vs {without_cache}"
        );
    }

    #[test]
    fn empty_tree_operations() {
        let t = small_tree();
        assert!(t.is_empty().unwrap());
        assert_eq!(t.lookup(&b("nope")).unwrap(), Vec::<u64>::new());
        assert_eq!(t.range(&b(""), None, 10).unwrap(), Vec::new());
        assert!(!t.remove(&b("nope"), 0).unwrap());
        assert_eq!(t.check_invariants().unwrap(), 0);
    }
}

//! PN-side caching of inner index nodes (§5.3.1).
//!
//! "All index nodes with exception of the leaf level are cached. The
//! leaf-level nodes are always retrieved from the storage system." The cache
//! holds decoded inner nodes keyed by node id, together with the store token
//! observed when they were fetched, so a cached node can be used as the
//! load-link of a later store-conditional.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use tell_obs::ProfMutex;
use tell_store::cell::Token;

use crate::node::NodeData;

/// Hit/miss counters (exposed so benchmarks can show cache effectiveness).
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub invalidations: AtomicU64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// Inner-node cache of one processing node.
pub struct NodeCache {
    nodes: ProfMutex<HashMap<u64, (Token, NodeData)>>,
    stats: CacheStats,
}

impl Default for NodeCache {
    fn default() -> Self {
        NodeCache::new()
    }
}

impl NodeCache {
    /// Empty cache.
    pub fn new() -> Self {
        NodeCache {
            nodes: ProfMutex::with_default("index.cache.nodes"),
            stats: CacheStats::default(),
        }
    }

    /// Look up a cached inner node.
    pub fn get(&self, id: u64) -> Option<(Token, NodeData)> {
        let got = self.nodes.lock().get(&id).cloned();
        match &got {
            Some(_) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                tell_obs::incr(tell_obs::Counter::IndexCacheHits);
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                tell_obs::incr(tell_obs::Counter::IndexCacheMisses);
            }
        };
        got
    }

    /// Install or refresh an inner node. Leaves must never be cached; the
    /// caller enforces that, this method just stores what it is given.
    pub fn put(&self, id: u64, token: Token, node: NodeData) {
        debug_assert!(!node.is_leaf, "leaf nodes are always fetched fresh (§5.3.1)");
        self.nodes.lock().insert(id, (token, node));
    }

    /// Drop one node (stale path refresh).
    pub fn invalidate(&self, id: u64) {
        if self.nodes.lock().remove(&id).is_some() {
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            tell_obs::incr(tell_obs::Counter::IndexCacheInvalidations);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        let mut map = self.nodes.lock();
        let n = map.len() as u64;
        map.clear();
        self.stats.invalidations.fetch_add(n, Ordering::Relaxed);
        tell_obs::add(tell_obs::Counter::IndexCacheInvalidations, n);
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.nodes.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.nodes.lock().is_empty()
    }

    /// Counter access.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::min_key;

    fn inner() -> NodeData {
        NodeData {
            is_leaf: false,
            low: min_key(),
            high: None,
            right: None,
            entries: vec![(min_key(), 1)],
        }
    }

    #[test]
    fn put_get_invalidate() {
        let c = NodeCache::new();
        assert!(c.get(1).is_none());
        c.put(1, 10, inner());
        let (tok, node) = c.get(1).unwrap();
        assert_eq!(tok, 10);
        assert!(!node.is_leaf);
        c.invalidate(1);
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let c = NodeCache::new();
        c.get(5);
        c.put(5, 1, inner());
        c.get(5);
        c.get(5);
        assert_eq!(c.stats().hits.load(Ordering::Relaxed), 2);
        assert_eq!(c.stats().misses.load(Ordering::Relaxed), 1);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn clear_counts_invalidations() {
        let c = NodeCache::new();
        c.put(1, 1, inner());
        c.put(2, 1, inner());
        c.clear();
        assert_eq!(c.stats().invalidations.load(Ordering::Relaxed), 2);
    }
}

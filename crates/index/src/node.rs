//! B+tree node representation and its store encoding.

use bytes::Bytes;
use tell_common::codec::{Reader, Writer};
use tell_common::{Error, Result};

/// Composite entry key: the indexed attribute bytes plus the record id.
/// Ordering duplicates by rid lets a key with many matching records span
/// node boundaries cleanly.
pub type EntryKey = (Bytes, u64);

/// Compare composite keys.
#[inline]
pub fn cmp_entry(a: &EntryKey, b: &EntryKey) -> std::cmp::Ordering {
    a.0.cmp(&b.0).then(a.1.cmp(&b.1))
}

/// The smallest possible entry key (low fence of the leftmost node).
pub fn min_key() -> EntryKey {
    (Bytes::new(), 0)
}

/// One B+tree node, as stored in a single store cell.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeData {
    /// Leaf or inner?
    pub is_leaf: bool,
    /// Inclusive lower bound of the node's key range.
    pub low: EntryKey,
    /// Exclusive upper bound; `None` means +infinity.
    pub high: Option<EntryKey>,
    /// Right sibling (B-link pointer). `Some` whenever `high` is `Some`.
    pub right: Option<u64>,
    /// Sorted entries. In a leaf, `(key, rid)` index entries. In an inner
    /// node, `(separator, child)`: child `i` covers keys in
    /// `[entries[i].key, entries[i+1].key)`; `entries[0].key == low`.
    pub entries: Vec<(EntryKey, u64)>,
}

impl NodeData {
    /// A fresh empty leaf covering the whole key space.
    pub fn empty_root_leaf() -> Self {
        NodeData { is_leaf: true, low: min_key(), high: None, right: None, entries: Vec::new() }
    }

    /// Does `k` fall inside this node's fences?
    pub fn covers(&self, k: &EntryKey) -> bool {
        cmp_entry(k, &self.low) != std::cmp::Ordering::Less
            && match &self.high {
                Some(h) => cmp_entry(k, h) == std::cmp::Ordering::Less,
                None => true,
            }
    }

    /// Is `k` at or beyond the high fence (reader must hop right)?
    pub fn beyond_high(&self, k: &EntryKey) -> bool {
        match &self.high {
            Some(h) => cmp_entry(k, h) != std::cmp::Ordering::Less,
            None => false,
        }
    }

    /// Position of `k` in `entries` (Ok = exact hit, Err = insert point).
    pub fn search(&self, k: &EntryKey) -> std::result::Result<usize, usize> {
        self.entries.binary_search_by(|(ek, _)| cmp_entry(ek, k))
    }

    /// Route a key through an inner node: the child whose range contains
    /// `k`. Callers must have handled `beyond_high` already.
    pub fn route(&self, k: &EntryKey) -> u64 {
        debug_assert!(!self.is_leaf);
        debug_assert!(!self.entries.is_empty(), "inner nodes are never empty");
        match self.search(k) {
            Ok(i) => self.entries[i].1,
            Err(0) => self.entries[0].1, // k < first separator: leftmost child
            Err(i) => self.entries[i - 1].1,
        }
    }

    /// Split in half. Returns `(separator, right_node)` and truncates `self`
    /// to the lower half with its high fence / right pointer re-targeted to
    /// `right_id`.
    pub fn split(&mut self, right_id: u64) -> (EntryKey, NodeData) {
        debug_assert!(self.entries.len() >= 2);
        let mid = self.entries.len() / 2;
        let upper: Vec<(EntryKey, u64)> = self.entries.split_off(mid);
        let sep = upper[0].0.clone();
        let right = NodeData {
            is_leaf: self.is_leaf,
            low: sep.clone(),
            high: self.high.take(),
            right: self.right.take(),
            entries: upper,
        };
        self.high = Some(sep.clone());
        self.right = Some(right_id);
        (sep, right)
    }

    /// Serialized size estimate (drives node-split thresholds and network
    /// cost accounting).
    pub fn encoded_len(&self) -> usize {
        let fence = |k: &EntryKey| 4 + k.0.len() + 8;
        1 + fence(&self.low)
            + 1
            + self.high.as_ref().map(&fence).unwrap_or(0)
            + 9
            + 4
            + self.entries.iter().map(|(k, _)| fence(k) + 8).sum::<usize>()
    }

    /// Encode to bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.put_u8(if self.is_leaf { 1 } else { 0 });
        out.put_bytes(&self.low.0);
        out.put_u64(self.low.1);
        match &self.high {
            Some(h) => {
                out.put_u8(1);
                out.put_bytes(&h.0);
                out.put_u64(h.1);
            }
            None => out.put_u8(0),
        }
        match self.right {
            Some(r) => {
                out.put_u8(1);
                out.put_u64(r);
            }
            None => out.put_u8(0),
        }
        out.put_u32(self.entries.len() as u32);
        for ((k, rid), v) in &self.entries {
            out.put_bytes(k);
            out.put_u64(*rid);
            out.put_u64(*v);
        }
        Bytes::from(out)
    }

    /// Decode from bytes.
    pub fn decode(buf: &[u8]) -> Result<NodeData> {
        let mut r = Reader::new(buf);
        let is_leaf = r.u8()? == 1;
        let low = (Bytes::copy_from_slice(r.bytes()?), r.u64()?);
        let high =
            if r.u8()? == 1 { Some((Bytes::copy_from_slice(r.bytes()?), r.u64()?)) } else { None };
        let right = if r.u8()? == 1 { Some(r.u64()?) } else { None };
        let n = r.u32()? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let k = Bytes::copy_from_slice(r.bytes()?);
            let rid = r.u64()?;
            let v = r.u64()?;
            entries.push(((k, rid), v));
        }
        if !r.is_exhausted() {
            return Err(Error::corrupt("trailing bytes in index node"));
        }
        Ok(NodeData { is_leaf, low, high, right, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str, rid: u64) -> EntryKey {
        (Bytes::copy_from_slice(s.as_bytes()), rid)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let node = NodeData {
            is_leaf: false,
            low: k("aaa", 0),
            high: Some(k("zzz", 7)),
            right: Some(42),
            entries: vec![(k("aaa", 0), 1), (k("mmm", 3), 2)],
        };
        let bytes = node.encode();
        assert_eq!(bytes.len(), node.encoded_len());
        assert_eq!(NodeData::decode(&bytes).unwrap(), node);
        let leaf = NodeData::empty_root_leaf();
        assert_eq!(NodeData::decode(&leaf.encode()).unwrap(), leaf);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(NodeData::decode(&[9, 9]).is_err());
        let node = NodeData::empty_root_leaf();
        let mut bytes = node.encode().to_vec();
        bytes.push(0); // trailing byte
        assert!(NodeData::decode(&bytes).is_err());
    }

    #[test]
    fn covers_and_beyond() {
        let node = NodeData {
            is_leaf: true,
            low: k("b", 0),
            high: Some(k("m", 0)),
            right: Some(9),
            entries: vec![],
        };
        assert!(node.covers(&k("b", 0)));
        assert!(node.covers(&k("c", 5)));
        assert!(!node.covers(&k("a", 0)));
        assert!(!node.covers(&k("m", 0)));
        assert!(node.beyond_high(&k("m", 0)));
        assert!(node.beyond_high(&k("z", 0)));
        assert!(!node.beyond_high(&k("l", u64::MAX)));
        let open = NodeData::empty_root_leaf();
        assert!(open.covers(&k("anything", 99)));
        assert!(!open.beyond_high(&k("anything", 99)));
    }

    #[test]
    fn route_picks_correct_child() {
        let inner = NodeData {
            is_leaf: false,
            low: min_key(),
            high: None,
            right: None,
            entries: vec![((Bytes::new(), 0), 10), (k("h", 0), 20), (k("p", 0), 30)],
        };
        assert_eq!(inner.route(&k("a", 0)), 10);
        assert_eq!(inner.route(&k("h", 0)), 20);
        assert_eq!(inner.route(&k("o", 9)), 20);
        assert_eq!(inner.route(&k("p", 0)), 30);
        assert_eq!(inner.route(&k("z", 0)), 30);
    }

    #[test]
    fn split_halves_and_links() {
        let mut node = NodeData {
            is_leaf: true,
            low: min_key(),
            high: Some(k("zz", 0)),
            right: Some(77),
            entries: (0..6).map(|i| (k(&format!("k{i}"), 0), i)).collect(),
        };
        let (sep, right) = node.split(100);
        assert_eq!(sep, k("k3", 0));
        assert_eq!(node.entries.len(), 3);
        assert_eq!(right.entries.len(), 3);
        assert_eq!(node.high.as_ref(), Some(&sep));
        assert_eq!(node.right, Some(100));
        assert_eq!(right.low, sep);
        assert_eq!(right.high, Some(k("zz", 0)));
        assert_eq!(right.right, Some(77));
        // No entry lost, ranges partition cleanly.
        for (ek, _) in &node.entries {
            assert!(cmp_entry(ek, &sep) == std::cmp::Ordering::Less);
        }
        for (ek, _) in &right.entries {
            assert!(cmp_entry(ek, &sep) != std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn search_duplicates_ordered_by_rid() {
        let node = NodeData {
            is_leaf: true,
            low: min_key(),
            high: None,
            right: None,
            entries: vec![(k("a", 1), 1), (k("a", 5), 5), (k("b", 2), 2)],
        };
        assert_eq!(node.search(&k("a", 5)), Ok(1));
        assert_eq!(node.search(&k("a", 0)), Err(0));
        assert_eq!(node.search(&k("a", 9)), Err(2));
    }
}

//! Cluster-wide telemetry collection and health evaluation.
//!
//! A [`Collector`] owns a fixed list of scrape [`Target`]s (every PN, SN,
//! and CM endpoint in the deployment), pulls each node's time-series ring
//! incrementally over `Request::Telemetry` with a per-node cursor, and
//! merges the pages into a cluster view: bounded per-node point history
//! plus a [`HealthEngine`] run over one [`NodeTick`] per node per poll.
//! `tell_top` renders exactly this view; nothing in here draws.
//!
//! Remote points arrive indexed by the *remote* build's metric declaration
//! order, with the name lists carried alongside ([`TelemetryPage`]). Every
//! point is remapped by name into this build's order ([`remap_point`])
//! before it is stored or judged, so a collector can watch a mixed-version
//! cluster: metrics the remote lacks read 0, metrics this build lacks are
//! dropped.
//!
//! A target that refuses the connection or fails the call is marked
//! unreachable for that poll — which is precisely what feeds the
//! `replica_unavailable` health rule — and the connection is re-dialed on
//! the next poll.

pub mod health;

pub use health::{HealthReplay, TickRecord};

use std::collections::VecDeque;

use tell_obs::registry::{Counter, Gauge, Phase};
use tell_obs::{
    HealthConfig, HealthEngine, HealthEvent, NodeTick, RuleKind, TelemetryPage, TsPoint,
};
use tell_rpc::client::Connection;
use tell_rpc::{Request, Response};

/// One scrape endpoint.
#[derive(Clone, Debug)]
pub struct Target {
    /// Stable display/health name (`sn0`, `cm0`, …). Health-event
    /// sequences are keyed by it, so keep it unique per collector.
    pub name: String,
    /// `host:port` of the node's RPC server.
    pub addr: String,
}

impl Target {
    pub fn new(name: impl Into<String>, addr: impl Into<String>) -> Target {
        Target { name: name.into(), addr: addr.into() }
    }
}

/// Reindex a remote point into this build's metric order by matching the
/// page's name lists against the local declarations. Missing names read 0
/// (counters/gauges) or an empty digest (phases); unknown remote names are
/// dropped.
pub fn remap_point(page: &TelemetryPage, point: &TsPoint) -> TsPoint {
    let mut out = TsPoint {
        seq: point.seq,
        virt_us: point.virt_us,
        wall_us: point.wall_us,
        ..TsPoint::default()
    };
    for c in Counter::ALL {
        let v = page
            .counter_names
            .iter()
            .position(|n| n == c.name())
            .and_then(|i| point.counters.get(i).copied())
            .unwrap_or(0);
        out.counters.push(v);
    }
    for g in Gauge::ALL {
        let v = page
            .gauge_names
            .iter()
            .position(|n| n == g.name())
            .and_then(|i| point.gauges.get(i).copied())
            .unwrap_or(0);
        out.gauges.push(v);
    }
    for p in Phase::ALL {
        let d = page
            .phase_names
            .iter()
            .position(|n| n == p.name())
            .and_then(|i| point.phases.get(i).copied())
            .unwrap_or_default();
        out.phases.push(d);
    }
    out
}

/// Collapse one scrape page's points (possibly several intervals of
/// catch-up) into a single interval for rule evaluation: counter deltas
/// sum, gauges and phase digests take the newest point's values, and the
/// clock fields come from the newest point.
pub fn merge_points(points: &[TsPoint]) -> Option<TsPoint> {
    let last = points.last()?;
    let mut merged = last.clone();
    for p in &points[..points.len() - 1] {
        for (i, v) in p.counters.iter().enumerate() {
            if let Some(slot) = merged.counters.get_mut(i) {
                *slot = slot.saturating_add(*v);
            }
        }
    }
    Some(merged)
}

/// One node's collected state: scrape cursor, reachability, and a bounded
/// history of remapped points (newest last).
pub struct NodeView {
    pub target: Target,
    /// Whether the last poll reached the node.
    pub reachable: bool,
    /// Last error message, for display; cleared on a successful poll.
    pub last_error: Option<String>,
    /// Remapped points, oldest first, at most `history_cap`.
    pub history: VecDeque<TsPoint>,
    cursor: u64,
    conn: Option<Connection>,
    history_cap: usize,
}

impl NodeView {
    fn new(target: Target, history_cap: usize) -> NodeView {
        NodeView {
            target,
            reachable: false,
            last_error: None,
            history: VecDeque::new(),
            cursor: 0,
            conn: None,
            history_cap: history_cap.max(1),
        }
    }

    /// The newest collected point, if any.
    pub fn latest(&self) -> Option<&TsPoint> {
        self.history.back()
    }

    /// Scrape once; returns the interval's merged, remapped point.
    fn scrape(&mut self) -> Result<Option<TsPoint>, String> {
        if self.conn.as_ref().is_none_or(|c| c.is_dead()) {
            self.conn = Some(Connection::connect(&self.target.addr).map_err(|e| e.to_string())?);
        }
        let conn = self.conn.as_ref().expect("connected above");
        let page = match conn.call(&Request::Telemetry { since: self.cursor }) {
            Ok((Response::Telemetry(page), _, _)) => page,
            Ok((resp, _, _)) => {
                // A peer too old for the op keeps answering other requests;
                // drop the connection so the error is visible, not sticky.
                self.conn = None;
                return Err(format!("unexpected telemetry response: {resp:?}"));
            }
            Err(e) => {
                self.conn = None;
                return Err(e.to_string());
            }
        };
        self.cursor = page.next_cursor;
        let mapped: Vec<TsPoint> = page.points.iter().map(|p| remap_point(&page, p)).collect();
        for p in &mapped {
            if self.history.len() == self.history_cap {
                self.history.pop_front();
            }
            self.history.push_back(p.clone());
        }
        Ok(merge_points(&mapped))
    }
}

/// The cluster collector: polls every target, keeps the merged view, and
/// runs the health rules.
pub struct Collector {
    nodes: Vec<NodeView>,
    engine: HealthEngine,
    events: Vec<HealthEvent>,
    polls: u64,
}

/// Per-node points retained for display (sparklines need tens, not
/// thousands).
pub const DEFAULT_HISTORY_POINTS: usize = 256;

impl Collector {
    /// Collector over `targets` with default thresholds and history depth.
    pub fn new(targets: Vec<Target>) -> Collector {
        Collector::with_config(targets, HealthConfig::default(), DEFAULT_HISTORY_POINTS)
    }

    /// Collector with explicit health thresholds and history depth.
    pub fn with_config(targets: Vec<Target>, cfg: HealthConfig, history_cap: usize) -> Collector {
        Collector {
            nodes: targets.into_iter().map(|t| NodeView::new(t, history_cap)).collect(),
            engine: HealthEngine::new(cfg),
            events: Vec::new(),
            polls: 0,
        }
    }

    /// Scrape every target once, feed the health engine, and return the
    /// transitions this poll caused (also appended to [`Collector::events`]).
    /// The engine's "virtual clock" for live collection is the poll
    /// ordinal — wall time never reaches a health decision or event byte.
    pub fn poll(&mut self) -> Vec<HealthEvent> {
        self.polls += 1;
        let mut ticks = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            let (reachable, point) = match node.scrape() {
                Ok(point) => {
                    node.last_error = None;
                    (true, point)
                }
                Err(e) => {
                    node.last_error = Some(e);
                    (false, None)
                }
            };
            node.reachable = reachable;
            ticks.push(NodeTick { node: node.target.name.clone(), reachable, point });
        }
        let wall_us =
            self.nodes.iter().filter_map(|n| n.latest().map(|p| p.wall_us)).max().unwrap_or(0);
        let new = self.engine.observe(self.polls as f64, wall_us, &ticks);
        self.events.extend(new.iter().cloned());
        new
    }

    /// Per-node views, in target order.
    pub fn nodes(&self) -> &[NodeView] {
        &self.nodes
    }

    /// Every health transition observed so far, oldest first.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Currently-firing (rule, node) pairs, in deterministic order.
    pub fn active(&self) -> Vec<(RuleKind, String)> {
        self.engine.active()
    }

    /// Polls completed.
    pub fn polls(&self) -> u64 {
        self.polls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(counter_names: &[&str], counters: Vec<u64>) -> (TelemetryPage, TsPoint) {
        let point = TsPoint { seq: 1, counters, ..TsPoint::default() };
        let page = TelemetryPage {
            counter_names: counter_names.iter().map(|s| s.to_string()).collect(),
            gauge_names: Vec::new(),
            phase_names: Vec::new(),
            points: vec![point.clone()],
            next_cursor: 1,
        };
        (page, point)
    }

    #[test]
    fn remap_reorders_by_name_and_zeroes_missing() {
        // Remote declares the two counters in the opposite of local order
        // and adds one this build does not know.
        let (page, point) = page(
            &[Counter::TxnAborted.name(), "made_up_metric_total", Counter::TxnCommitted.name()],
            vec![7, 99, 11],
        );
        let mapped = remap_point(&page, &point);
        assert_eq!(mapped.counter(Counter::TxnCommitted), 11);
        assert_eq!(mapped.counter(Counter::TxnAborted), 7);
        assert_eq!(mapped.counters.len(), Counter::ALL.len());
        assert_eq!(mapped.counters.iter().sum::<u64>(), 18, "unknown remote metric dropped");
    }

    #[test]
    fn merge_sums_counters_and_keeps_newest_gauges() {
        let a = TsPoint { seq: 1, counters: vec![5, 1], gauges: vec![10], ..TsPoint::default() };
        let b = TsPoint {
            seq: 2,
            virt_us: 9.0,
            counters: vec![3, 0],
            gauges: vec![4],
            ..TsPoint::default()
        };
        let m = merge_points(&[a, b]).unwrap();
        assert_eq!(m.counters, vec![8, 1]);
        assert_eq!(m.gauges, vec![4]);
        assert_eq!(m.seq, 2);
        assert_eq!(m.virt_us, 9.0);
        assert!(merge_points(&[]).is_none());
    }
}

//! Deterministic health replay.
//!
//! The `tell_obs::HealthEngine` is a pure function of its tick stream —
//! no wall clock, no randomness, no iteration-order dependence. This
//! module turns that property into an operational tool: a
//! [`HealthReplay`] records every interval exactly as the live engine saw
//! it ([`TickRecord`]) while forwarding it, and can re-evaluate the log
//! through a fresh engine at any time. Replay must reproduce the original
//! event sequence *byte for byte* ([`HealthReplay::replay_matches`]) —
//! so a postmortem ships the tick log, not the alert log, and every
//! consumer derives identical alerts from it.

use tell_obs::{HealthConfig, HealthEngine, HealthEvent, NodeTick};

/// One engine input interval, exactly as `HealthEngine::observe` saw it.
#[derive(Clone, Debug)]
pub struct TickRecord {
    /// Virtual clock of the interval.
    pub virt_us: f64,
    /// Wall clock of the interval (0 under tell-sim).
    pub wall_us: u64,
    /// One tick per node, in the collector's stable target order.
    pub ticks: Vec<NodeTick>,
}

/// A recording wrapper around a live [`HealthEngine`].
pub struct HealthReplay {
    cfg: HealthConfig,
    engine: HealthEngine,
    log: Vec<TickRecord>,
    emitted: Vec<HealthEvent>,
}

impl HealthReplay {
    /// A fresh engine with `cfg`, recording from the first tick.
    pub fn new(cfg: HealthConfig) -> HealthReplay {
        HealthReplay { cfg, engine: HealthEngine::new(cfg), log: Vec::new(), emitted: Vec::new() }
    }

    /// Record one interval and feed it to the live engine, returning the
    /// transitions it caused (same contract as `HealthEngine::observe`).
    pub fn observe(&mut self, virt_us: f64, wall_us: u64, ticks: &[NodeTick]) -> Vec<HealthEvent> {
        self.log.push(TickRecord { virt_us, wall_us, ticks: ticks.to_vec() });
        let events = self.engine.observe(virt_us, wall_us, ticks);
        self.emitted.extend(events.iter().cloned());
        events
    }

    /// The recorded tick stream so far.
    pub fn log(&self) -> &[TickRecord] {
        &self.log
    }

    /// Every event the live engine emitted so far.
    pub fn emitted(&self) -> &[HealthEvent] {
        &self.emitted
    }

    /// The live event sequence, rendered to its stable one-line form.
    pub fn rendered(&self) -> Vec<String> {
        self.emitted.iter().map(HealthEvent::render).collect()
    }

    /// Re-evaluate the recorded log through a fresh engine.
    pub fn replay(&self) -> Vec<HealthEvent> {
        let mut engine = HealthEngine::new(self.cfg);
        let mut out = Vec::new();
        for rec in &self.log {
            out.extend(engine.observe(rec.virt_us, rec.wall_us, &rec.ticks));
        }
        out
    }

    /// Does a fresh replay of the log render byte-identically to what the
    /// live engine emitted? Always true unless the engine loses
    /// determinism — the invariant the monitor tests pin.
    pub fn replay_matches(&self) -> bool {
        let replayed: Vec<String> = self.replay().iter().map(HealthEvent::render).collect();
        replayed == self.rendered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tell_obs::registry::{Counter, Gauge};
    use tell_obs::TsPoint;

    fn point(wait_us: u64, commits: u64) -> TsPoint {
        let mut p = TsPoint {
            counters: vec![0; Counter::COUNT],
            gauges: vec![0; Gauge::COUNT],
            ..TsPoint::default()
        };
        p.counters[Counter::LockWaitUs as usize] = wait_us;
        p.counters[Counter::TxnCommitted as usize] = commits;
        p
    }

    fn tick(node: &str, p: TsPoint) -> NodeTick {
        NodeTick { node: node.to_string(), reachable: true, point: Some(p) }
    }

    #[test]
    fn lock_wait_spike_fires_with_hysteresis_and_replays_byte_identically() {
        let mut rep = HealthReplay::new(HealthConfig::default());
        // A scripted contention episode at 1s telemetry cadence: 200ms of
        // lock wait per second (20% > the 10% threshold) under healthy
        // commit volume, then the waits subside.
        let script: [(f64, u64, u64); 6] = [
            (0.0, 200_000, 50), // first tick: no interval yet, held
            (1e6, 200_000, 50), // bad #1
            (2e6, 200_000, 50), // bad #2 -> FIRING (fire_after = 2)
            (3e6, 200_000, 50), // still bad: deduplicated
            (4e6, 1_000, 50),   // good #1
            (5e6, 1_000, 50),   // good #2 -> resolved (resolve_after = 2)
        ];
        let mut live = Vec::new();
        for (t, wait, commits) in script {
            for ev in rep.observe(t, 0, &[tick("cm0", point(wait, commits))]) {
                live.push(ev.render());
            }
        }
        assert_eq!(live.len(), 2, "one firing, one resolve: {live:#?}");
        assert!(live[0].contains("FIRING lock_wait_spike node=cm0"), "{}", live[0]);
        assert!(live[0].contains("20%"), "detail carries the fraction: {}", live[0]);
        assert!(live[1].contains("resolved lock_wait_spike node=cm0"), "{}", live[1]);

        // The recorded log replays byte for byte through a fresh engine.
        assert_eq!(rep.log().len(), script.len());
        let replayed: Vec<String> = rep.replay().iter().map(HealthEvent::render).collect();
        assert_eq!(replayed, live);
        assert!(rep.replay_matches());
    }

    #[test]
    fn min_volume_guard_keeps_idle_contention_quiet() {
        let mut rep = HealthReplay::new(HealthConfig::default());
        // Heavy lock waits but almost no commits: a draining node, not a
        // spike — the guard holds the rule at Good throughout.
        for i in 0..6u64 {
            let ev = rep.observe(i as f64 * 1e6, 0, &[tick("cm0", point(400_000, 2))]);
            assert!(ev.is_empty(), "tick {i} emitted {ev:#?}");
        }
        assert!(rep.replay_matches());
    }
}

//! End-to-end collector test: a real loopback `RpcServer` answering
//! `Request::Telemetry`, plus an unreachable target driving the
//! `replica_unavailable` rule through its firing transition.

use tell_monitor::{Collector, Target};
use tell_obs::registry::Counter;
use tell_obs::RuleKind;
use tell_rpc::{RpcServer, Services};

#[test]
fn collector_scrapes_live_node_and_fires_on_unreachable_target() {
    let server = RpcServer::serve("127.0.0.1:0", Services { store: None, commit: None }).unwrap();
    let addr = server.local_addr().to_string();

    // Force at least one ring point so the very first scrape has data,
    // regardless of the wall driver's cadence.
    tell_obs::global().incr(Counter::TxnCommitted);
    tell_obs::timeseries::roll_global_now();

    // Port 1 refuses connections: a permanently dead replica.
    let mut collector =
        Collector::new(vec![Target::new("live0", &addr), Target::new("dead0", "127.0.0.1:1")]);

    collector.poll();
    let live = &collector.nodes()[0];
    assert!(live.reachable, "live node must answer: {:?}", live.last_error);
    assert!(live.latest().is_some(), "first scrape returns the ring history");
    let dead = &collector.nodes()[1];
    assert!(!dead.reachable);
    assert!(dead.last_error.is_some());

    // Default hysteresis fires after 2 consecutive bad ticks.
    tell_obs::timeseries::roll_global_now();
    let events = collector.poll();
    assert!(
        events
            .iter()
            .any(|e| e.rule == RuleKind::ReplicaUnavailable && e.node == "dead0" && e.firing),
        "expected replica_unavailable to fire for dead0, got {events:?}"
    );
    assert!(collector.active().contains(&(RuleKind::ReplicaUnavailable, "dead0".to_string())));
    // The live node never fires it.
    assert!(!collector
        .events()
        .iter()
        .any(|e| e.rule == RuleKind::ReplicaUnavailable && e.node == "live0"));

    // Incremental cursors: history seqs are strictly increasing — a point
    // is never scraped twice even across several polls.
    tell_obs::timeseries::roll_global_now();
    collector.poll();
    let seqs: Vec<u64> = collector.nodes()[0].history.iter().map(|p| p.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "duplicate or reordered seqs: {seqs:?}");

    // The remapped points carry this build's metric order: the committed
    // counter bump above is visible in some collected delta.
    let committed: u64 =
        collector.nodes()[0].history.iter().map(|p| p.counter(Counter::TxnCommitted)).sum();
    assert!(committed >= 1, "expected the seeded commit delta in the history");
}

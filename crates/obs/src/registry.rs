//! The sharded metrics registry.
//!
//! Hot-path design: every metric id is a compile-time enum discriminant, so
//! recording is an index into a fixed array — no hashing, no allocation, no
//! name lookup. Counters live in per-shard `AtomicU64`s updated with relaxed
//! ordering; histograms live in per-shard mutexes that are effectively
//! uncontended because each thread is pinned to one shard. A snapshot walks
//! all shards and merges, paying the synchronization cost on the cold read
//! side instead of the hot write side.
//!
//! The registry can be disabled (`set_enabled(false)`), which reduces every
//! recording call to a single relaxed atomic load — this is the "no-op
//! registry" used to bound instrumentation overhead in `benches/micro.rs`.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use tell_common::Histogram;

use crate::snapshot::MetricsSnapshot;

macro_rules! metric_ids {
    ($(#[$em:meta])* $name:ident { $($(#[doc = $doc:literal])+ $variant:ident => $label:literal,)+ }) => {
        $(#[$em])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum $name {
            $($(#[doc = $doc])+ $variant,)+
        }

        impl $name {
            /// Number of ids in this namespace.
            pub const COUNT: usize = [$($name::$variant,)+].len();
            /// All ids in declaration order.
            pub const ALL: [$name; Self::COUNT] = [$($name::$variant,)+];

            /// Exposition name (Prometheus metric name without the `tell_`
            /// prefix).
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }

            /// One-line description (the doc comment above the id), used
            /// for Prometheus `# HELP` lines.
            pub fn help(self) -> &'static str {
                match self {
                    $($name::$variant => {
                        let s: &'static str = concat!($($doc),+);
                        s.trim_start()
                    })+
                }
            }
        }
    };
}

metric_ids! {
    /// Monotonic counter ids.
    Counter {
        /// Transactions started on any PN.
        TxnBegun => "txn_begun_total",
        /// Transactions committed.
        TxnCommitted => "txn_committed_total",
        /// Transactions aborted (conflict or user).
        TxnAborted => "txn_aborted_total",
        /// Aborts caused by an LL/SC conflict specifically.
        TxnConflicts => "txn_conflicts_total",
        /// Retry attempts beyond the first in `ProcessingNode::run`.
        TxnRetries => "txn_retries_total",
        /// Completed garbage-collection sweeps.
        GcCycles => "gc_cycles_total",
        /// Superseded versions dropped by GC.
        GcVersionsReclaimed => "gc_versions_reclaimed_total",
        /// Whole records deleted by GC.
        GcRecordsDeleted => "gc_records_deleted_total",
        /// Stale index entries removed by GC.
        GcIndexEntriesRemoved => "gc_index_entries_removed_total",
        /// Transaction-log entries truncated by GC.
        GcLogEntriesTruncated => "gc_log_entries_truncated_total",
        /// PN record-buffer hits.
        BufferHits => "buffer_hits_total",
        /// PN record-buffer misses.
        BufferMisses => "buffer_misses_total",
        /// Index node-cache hits.
        IndexCacheHits => "index_cache_hits_total",
        /// Index node-cache misses.
        IndexCacheMisses => "index_cache_misses_total",
        /// Index node-cache invalidations.
        IndexCacheInvalidations => "index_cache_invalidations_total",
        /// Point/multi-get reads issued by storage clients.
        StoreReadOps => "store_read_ops_total",
        /// Conditional writes issued by storage clients.
        StoreWriteOps => "store_write_ops_total",
        /// Frames decoded by RPC servers.
        RpcServerFramesIn => "rpc_server_frames_in_total",
        /// Frames written by RPC servers.
        RpcServerFramesOut => "rpc_server_frames_out_total",
        /// Payload bytes received by RPC servers.
        RpcServerBytesIn => "rpc_server_bytes_in_total",
        /// Payload bytes sent by RPC servers.
        RpcServerBytesOut => "rpc_server_bytes_out_total",
        /// Frames sent by RPC clients.
        RpcClientFramesOut => "rpc_client_frames_out_total",
        /// Frames received by RPC clients.
        RpcClientFramesIn => "rpc_client_frames_in_total",
        /// Payload bytes sent by RPC clients.
        RpcClientBytesOut => "rpc_client_bytes_out_total",
        /// Payload bytes received by RPC clients.
        RpcClientBytesIn => "rpc_client_bytes_in_total",
        /// `Request::Get` frames served.
        ReqGet => "rpc_req_get_total",
        /// `Request::MultiGet` frames served.
        ReqMultiGet => "rpc_req_multi_get_total",
        /// `Request::Write` frames served.
        ReqWrite => "rpc_req_write_total",
        /// `Request::MultiWrite` frames served.
        ReqMultiWrite => "rpc_req_multi_write_total",
        /// `Request::Increment` frames served.
        ReqIncrement => "rpc_req_increment_total",
        /// `Request::Scan` frames served.
        ReqScan => "rpc_req_scan_total",
        /// `Request::ScanPrefix` frames served.
        ReqScanPrefix => "rpc_req_scan_prefix_total",
        /// `Request::ScanPrefixFiltered` frames served.
        ReqScanPrefixFiltered => "rpc_req_scan_prefix_filtered_total",
        /// `Request::Ping` frames served.
        ReqPing => "rpc_req_ping_total",
        /// `Request::Batch` frames served (the envelope, not its inner ops).
        ReqBatch => "rpc_req_batch_total",
        /// Inner operations carried inside `Request::Batch` frames.
        ReqBatchInnerOps => "rpc_req_batch_inner_ops_total",
        /// `Request::CmStart` frames served.
        ReqCmStart => "rpc_req_cm_start_total",
        /// `Request::CmComplete` frames served.
        ReqCmComplete => "rpc_req_cm_complete_total",
        /// `Request::CmLav` frames served.
        ReqCmLav => "rpc_req_cm_lav_total",
        /// `Request::CmSync` frames served.
        ReqCmSync => "rpc_req_cm_sync_total",
        /// `Request::CmResolve` frames served.
        ReqCmResolve => "rpc_req_cm_resolve_total",
        /// `Request::Metrics` frames served.
        ReqMetrics => "rpc_req_metrics_total",
        /// `Request::Spans` frames served.
        ReqSpans => "rpc_req_spans_total",
        /// `Request::Telemetry` frames served.
        ReqTelemetry => "rpc_req_telemetry_total",
        /// Telemetry rollup ticks (time-series points appended to the ring).
        TelemetryRollups => "telemetry_rollups_total",
        /// Slow-op log lines suppressed by the per-thread rate limiter.
        SlowlogSuppressed => "slowlog_suppressed_total",
        /// Finished spans promoted to the span ring.
        SpansRecorded => "spans_recorded_total",
        /// Spans lost to ring eviction or pending-buffer overflow.
        SpansDropped => "spans_dropped_total",
        /// Operations whose latency exceeded the slow-op budget.
        SlowOps => "slow_ops_total",
        /// Invocations of PN failure recovery.
        RecoveryRuns => "recovery_runs_total",
        /// Dangling write intents reverted during abort or recovery.
        RecoveryRevertedWrites => "recovery_reverted_writes_total",
        /// Records appended to durable segment logs.
        DurableAppends => "durable_log_appends_total",
        /// Payload bytes appended to durable segment logs.
        DurableAppendBytes => "durable_log_append_bytes_total",
        /// fsync calls issued by the durable tier.
        DurableFsyncs => "durable_fsyncs_total",
        /// Segments sealed (rotated out of the active write position).
        DurableSegmentsSealed => "durable_segments_sealed_total",
        /// Segment slots recycled after a checkpoint subsumed them.
        DurableSegmentsRecycled => "durable_segments_recycled_total",
        /// Checkpoints completed by the durable tier.
        DurableCheckpoints => "durable_checkpoints_total",
        /// Live records written into checkpoint files.
        DurableCheckpointRecords => "durable_checkpoint_records_total",
        /// Records replayed from checkpoint + segments during recovery.
        DurableRecoveredRecords => "durable_recovered_records_total",
        /// Torn segment tails truncated away during recovery.
        DurableTornTailsTruncated => "durable_torn_tails_truncated_total",
        /// Durable object-cache hits.
        DurableCacheHits => "durable_cache_hits_total",
        /// Durable object-cache misses (value re-read from disk).
        DurableCacheMisses => "durable_cache_misses_total",
        /// Values evicted from the durable object cache.
        DurableCacheEvictions => "durable_cache_evictions_total",
        /// Replica-side durability records dropped because the replica's
        /// engine errored; the copy stays fresh in RAM and its log catches
        /// up via peer re-sync after a restart.
        DurableReplicaRecordsDropped => "durable_replica_records_dropped_total",
        /// Commit-manager state publishes deferred because the store was
        /// unavailable (marked pending, republished by the next operation).
        CmPublishDeferred => "cm_publish_deferred_total",
        /// Commit-manager periodic syncs skipped on store unavailability.
        CmSyncDeferred => "cm_sync_deferred_total",
        /// Reactor epoll_wait returns (one per wakeup, however many events).
        ReactorWakeups => "rpc_reactor_wakeups_total",
        /// Ready events delivered across all reactor wakeups.
        ReactorReadyEvents => "rpc_reactor_ready_events_total",
        /// Connections paused for reading because their buffered replies
        /// exceeded the write cap (slow-reader protection).
        ConnBackpressure => "rpc_conn_backpressure_total",
        /// `ProfMutex` acquires that found the lock held.
        LockContended => "lock_contended_total",
        /// Microseconds spent waiting in contended `ProfMutex` acquires.
        LockWaitUs => "lock_wait_us_total",
        /// `Request::Profile*` frames served (start, stop, and fetch).
        ReqProfile => "rpc_req_profile_total",
    }
}

metric_ids! {
    /// Last-write-wins gauge ids (set, not accumulated; not sharded).
    Gauge {
        /// Lowest tid any snapshot may still observe (the GC horizon).
        CmLav => "cm_lav",
        /// Completion frontier: every tid below it has committed or aborted.
        CmBase => "cm_base",
        /// Highest tid handed out by the commit manager.
        CmWatermark => "cm_watermark",
        /// Upper end of the commit manager's pre-allocated tid range.
        CmTidLimit => "cm_tid_limit",
        /// Transactions currently in flight.
        CmActiveTxns => "cm_active_txns",
        /// `base - lav`: how far the GC horizon trails the completion
        /// frontier (a long-running snapshot shows up here).
        CmLavLag => "cm_lav_lag",
        /// `tid_limit - watermark`: tids remaining before the CM must fetch
        /// a fresh range.
        CmTidRangeRemaining => "cm_tid_range_remaining",
        /// Connections queued for dispatch across all reactors in this
        /// process (sampled on enqueue/dequeue).
        ReactorQueueDepth => "rpc_reactor_queue_depth",
        /// Reply bytes buffered toward slow peers across all reactors.
        ReactorBufferedWriteBytes => "rpc_reactor_buffered_write_bytes",
    }
}

metric_ids! {
    /// Histogram ids. Values are microseconds unless the name says
    /// otherwise.
    Phase {
        /// Transaction begin: snapshot acquisition from the commit manager.
        Begin => "txn_phase_begin_us",
        /// Read-set fetch: load-link reads against storage.
        ReadSetFetch => "txn_phase_read_us",
        /// Validation: write-set assembly and version checks on the PN.
        Validate => "txn_phase_validate_us",
        /// LL/SC install: the conditional multi-write round trip.
        LlscInstall => "txn_phase_install_us",
        /// Commit-manager completion: `set_committed` / `set_aborted`.
        CmComplete => "txn_phase_cm_complete_us",
        /// Whole transaction, begin to completion.
        TxnTotal => "txn_total_us",
        /// Operations coalesced per flushed async batch window (a size, not
        /// a latency).
        BatchWindow => "rpc_batch_window_ops",
        /// Wall-clock duration of one GC sweep.
        GcCycle => "gc_cycle_us",
    }
}

/// Number of shards. A small power of two: enough to keep a few dozen
/// worker threads from colliding, small enough that snapshots stay cheap.
pub const SHARDS: usize = 16;

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_IDX: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The shard this thread records into. Assigned round-robin on first use so
/// worker threads spread evenly regardless of thread-id distribution.
pub(crate) fn shard_index() -> usize {
    SHARD_IDX.with(|c| {
        let mut idx = c.get();
        if idx == usize::MAX {
            idx = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            c.set(idx);
        }
        idx
    })
}

struct Shard {
    counters: [AtomicU64; Counter::COUNT],
    hists: [crate::prof::ProfMutex<Histogram>; Phase::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| {
                crate::prof::ProfMutex::new("obs.hist_shard", Histogram::new())
            }),
        }
    }
}

/// A sharded, enable-switchable metrics registry.
pub struct Registry {
    shards: Vec<Shard>,
    gauges: [AtomicU64; Gauge::COUNT],
    enabled: AtomicBool,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// New enabled registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turn recording on or off. Disabled, every recording call is a single
    /// relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if !self.enabled() {
            return;
        }
        self.shards[shard_index()].counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge (last write wins).
    #[inline]
    pub fn set_gauge(&self, g: Gauge, v: u64) {
        if !self.enabled() {
            return;
        }
        self.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&self, p: Phase, v: f64) {
        if !self.enabled() {
            return;
        }
        self.shards[shard_index()].hists[p as usize].lock().record(v);
    }

    /// Current value of one counter, summed across shards.
    pub fn counter(&self, c: Counter) -> u64 {
        self.shards.iter().map(|s| s.counters[c as usize].load(Ordering::Relaxed)).sum()
    }

    /// Current value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Merged view of one histogram across shards.
    pub fn histogram(&self, p: Phase) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.shards {
            out.merge(&s.hists[p as usize].lock());
        }
        out
    }

    /// Merge all shards into a point-in-time snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters =
            Counter::ALL.iter().map(|&c| (c.name().to_string(), self.counter(c))).collect();
        let gauges = Gauge::ALL.iter().map(|&g| (g.name().to_string(), self.gauge(g))).collect();
        let mut histograms = Vec::with_capacity(Phase::COUNT);
        let mut buckets = Vec::new();
        for p in Phase::ALL {
            let h = self.histogram(p);
            histograms.push((p.name().to_string(), h.summary()));
            let nz = h.nonzero_buckets();
            if !nz.is_empty() {
                buckets.push((p.name().to_string(), nz));
            }
        }
        MetricsSnapshot { counters, gauges, histograms, buckets }
    }

    /// Zero every counter, gauge, and histogram. For tests and benches.
    pub fn reset(&self) {
        for s in &self.shards {
            for c in &s.counters {
                c.store(0, Ordering::Relaxed);
            }
            for h in &s.hists {
                *h.lock() = Histogram::new();
            }
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry every instrumentation point records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

thread_local! {
    /// This thread's shard of the *global* registry, resolved once. Skips
    /// the `OnceLock` + shard lookup on every global recording call.
    static GLOBAL_SHARD: Cell<Option<&'static Shard>> = const { Cell::new(None) };
}

#[inline]
fn global_shard() -> &'static Shard {
    GLOBAL_SHARD.with(|cell| match cell.get() {
        Some(s) => s,
        None => {
            let s = &global().shards[shard_index()];
            cell.set(Some(s));
            s
        }
    })
}

/// Fast-path `add` against the global registry.
#[inline]
pub(crate) fn global_add(c: Counter, n: u64) {
    if !global().enabled() {
        return;
    }
    global_shard().counters[c as usize].fetch_add(n, Ordering::Relaxed);
}

/// Fast-path `observe` against the global registry.
#[inline]
pub(crate) fn global_observe(p: Phase, v: f64) {
    if !global().enabled() {
        return;
    }
    global_shard().hists[p as usize].lock().record(v);
}

/// Help text for an exposition name (as produced by `Counter::name` and
/// friends), from the id's doc comment. Linear scan over the three small
/// namespaces — this only runs on the cold exposition path.
pub fn help_for(name: &str) -> Option<&'static str> {
    Counter::ALL
        .iter()
        .find(|c| c.name() == name)
        .map(|c| c.help())
        .or_else(|| Gauge::ALL.iter().find(|g| g.name() == name).map(|g| g.help()))
        .or_else(|| Phase::ALL.iter().find(|p| p.name() == name).map(|p| p.help()))
}

/// How often the transaction layer runs its phase timers: one transaction
/// in [`PHASE_SAMPLE_EVERY`] (per worker thread) pays for `Instant::now`
/// reads and histogram records; the rest skip them entirely. Phase
/// histograms stay statistically faithful while the common transaction
/// sees near-zero instrumentation cost.
pub const PHASE_SAMPLE_EVERY: u32 = 32;

thread_local! {
    static PHASE_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Sampling gate for phase timing: true on every
/// [`PHASE_SAMPLE_EVERY`]-th call on this thread (and always false while
/// the registry is disabled).
#[inline]
pub fn sample_phases() -> bool {
    if !global().enabled() {
        return false;
    }
    PHASE_TICK.with(|c| {
        let t = c.get();
        c.set(t.wrapping_add(1));
        t % PHASE_SAMPLE_EVERY == 0
    })
}

/// A standalone sharded histogram, for call sites that keep their own
/// per-object distribution (e.g. `PnMetrics::latency`) rather than using a
/// global [`Phase`] slot. Recording locks this thread's shard only, so
/// threads pinned to distinct shards never contend.
pub struct ShardedHistogram {
    shards: Vec<crate::prof::ProfMutex<Histogram>>,
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        ShardedHistogram::new()
    }
}

impl ShardedHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        ShardedHistogram {
            shards: (0..SHARDS)
                .map(|_| crate::prof::ProfMutex::new("obs.sharded_hist", Histogram::new()))
                .collect(),
        }
    }

    /// Record one sample into this thread's shard.
    #[inline]
    pub fn record(&self, v: f64) {
        self.shards[shard_index()].lock().record(v);
    }

    /// Merge every shard into one histogram.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for s in &self.shards {
            out.merge(&s.lock());
        }
        out
    }

    /// Fold another histogram's samples into this one (into shard 0; only
    /// the merged view is observable).
    pub fn absorb(&self, other: &Histogram) {
        self.shards[0].lock().merge(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.incr(Counter::TxnCommitted);
                    }
                });
            }
        });
        assert_eq!(reg.counter(Counter::TxnCommitted), 8000);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        reg.incr(Counter::TxnAborted);
        reg.observe(Phase::Begin, 10.0);
        reg.set_gauge(Gauge::CmBase, 7);
        assert_eq!(reg.counter(Counter::TxnAborted), 0);
        assert_eq!(reg.histogram(Phase::Begin).count(), 0);
        assert_eq!(reg.gauge(Gauge::CmBase), 0);
        reg.set_enabled(true);
        reg.incr(Counter::TxnAborted);
        assert_eq!(reg.counter(Counter::TxnAborted), 1);
    }

    #[test]
    fn histograms_merge_across_threads() {
        let reg = Registry::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let reg = &reg;
                s.spawn(move || {
                    for i in 0..100 {
                        global(); // touch the global too, must not interfere
                        reg.observe(Phase::LlscInstall, (t * 100 + i) as f64);
                    }
                });
            }
        });
        let h = reg.histogram(Phase::LlscInstall);
        assert_eq!(h.count(), 400);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 399.0);
    }

    #[test]
    fn sharded_histogram_merges_and_absorbs() {
        let sh = ShardedHistogram::new();
        sh.record(5.0);
        let mut extra = Histogram::new();
        extra.record(15.0);
        sh.absorb(&extra);
        let merged = sh.merged();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.min(), 5.0);
        assert_eq!(merged.max(), 15.0);
    }

    #[test]
    fn reset_clears_everything() {
        let reg = Registry::new();
        reg.incr(Counter::GcCycles);
        reg.observe(Phase::GcCycle, 3.0);
        reg.set_gauge(Gauge::CmWatermark, 9);
        reg.reset();
        assert_eq!(reg.counter(Counter::GcCycles), 0);
        assert_eq!(reg.histogram(Phase::GcCycle).count(), 0);
        assert_eq!(reg.gauge(Gauge::CmWatermark), 0);
    }

    #[test]
    fn every_metric_has_single_line_help() {
        let all = Counter::ALL
            .iter()
            .map(|c| c.help())
            .chain(Gauge::ALL.iter().map(|g| g.help()))
            .chain(Phase::ALL.iter().map(|p| p.help()));
        for h in all {
            assert!(!h.is_empty());
            assert!(!h.contains('\n'));
            assert!(!h.starts_with(' '));
        }
        assert_eq!(help_for("txn_begun_total"), Some("Transactions started on any PN."));
        assert_eq!(help_for("cm_lav"), Some(Gauge::CmLav.help()));
        assert_eq!(help_for("no_such_metric"), None);
    }

    #[test]
    fn metric_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}

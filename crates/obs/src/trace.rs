//! Trace ids and their thread-local propagation.
//!
//! A trace id is a 64-bit token minted when a PN-originated unit of work
//! (normally a transaction attempt) begins. It rides a thread-local while
//! the work runs on the PN, and every RPC the thread issues stamps the
//! current id into the wire frame (see `tell_rpc::wire`), so the storage
//! and commit-manager sides of one transaction are attributable end-to-end.
//! Zero is reserved for "no trace".

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh non-zero trace id, unique within this process and salted
/// with the pid so ids from different processes in one deployment do not
/// collide in practice.
pub fn next_trace_id() -> u64 {
    loop {
        let seq = NEXT.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seq ^ ((std::process::id() as u64) << 32));
        if id != 0 {
            return id;
        }
    }
}

/// The trace id attached to work on this thread, if any.
pub fn current() -> Option<u64> {
    let v = CURRENT.with(Cell::get);
    if v == 0 {
        None
    } else {
        Some(v)
    }
}

/// Attach (or with `None`, detach) a trace id to this thread.
pub fn set_current(t: Option<u64>) {
    CURRENT.with(|c| c.set(t.unwrap_or(0)));
}

/// Attach a trace id for a lexical scope; the previous id is restored on
/// drop, so nested traced scopes compose.
pub struct TraceGuard {
    prev: u64,
}

impl TraceGuard {
    /// Set `t` as this thread's current trace id until the guard drops.
    pub fn enter(t: u64) -> Self {
        let prev = CURRENT.with(Cell::get);
        CURRENT.with(|c| c.set(t));
        TraceGuard { prev }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Canonical rendering of a trace id: 16 lowercase hex digits.
pub fn fmt_trace(t: u64) -> String {
    format!("{t:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn guard_restores_previous() {
        set_current(None);
        assert_eq!(current(), None);
        {
            let _g = TraceGuard::enter(7);
            assert_eq!(current(), Some(7));
            {
                let _inner = TraceGuard::enter(9);
                assert_eq!(current(), Some(9));
            }
            assert_eq!(current(), Some(7));
        }
        assert_eq!(current(), None);
    }

    #[test]
    fn formatting_is_fixed_width_hex() {
        assert_eq!(fmt_trace(0xab), "00000000000000ab");
    }
}

//! Observability for the `tell-rs` workspace: a sharded lock-free metrics
//! registry, wire-level trace propagation, threshold-based slow-op logging,
//! and snapshot exposition in Prometheus text and JSON.
//!
//! The paper evaluates Tell entirely through observables — per-layer
//! latency (Table 4 mean ± σ, Table 5 TP99/TP999), abort rates, message
//! counts, GC pressure — so the reproduction needs the same measurements to
//! be first-class. Design rules:
//!
//! * **Hot path pays almost nothing.** Metric ids are enum discriminants
//!   indexing fixed arrays; counters are relaxed per-shard atomics;
//!   histograms sit behind per-shard mutexes that threads pinned to
//!   distinct shards never contend on. A disabled registry reduces every
//!   call to one relaxed load (`set_enabled(false)`), which is how
//!   `benches/micro.rs` bounds the overhead.
//! * **Snapshots pay the merge.** [`snapshot()`] walks every shard and merges
//!   counters and histograms into a [`MetricsSnapshot`], rendered with
//!   [`MetricsSnapshot::to_prometheus_text`] or [`MetricsSnapshot::to_json`].
//! * **Traces ride a thread-local.** [`next_trace_id`] mints an id at
//!   transaction begin; `tell-rpc` stamps [`current_trace`] into every
//!   outgoing frame, and [`slowlog::check`] attaches it to slow-op lines.
//! * **Spans make traces causal.** A [`SpanTimer`] opens one timed
//!   operation; nesting is tracked through a thread-local register and
//!   across the wire (the client-call span id rides the frame), so a
//!   scrape of every node's [`span::global_ring`] reassembles into
//!   per-transaction waterfalls. Retention is tail-based: only slow,
//!   conflict-aborted, or 1-in-N-sampled traces keep their spans.
//! * **History lives in rings.** A [`Rollup`] snapshots the registry every
//!   interval into a bounded [`TsRing`] of counter deltas, gauge samples,
//!   and per-phase p50/p99/p999 digests; `Request::Telemetry` scrapes it
//!   incrementally by cursor, and a [`HealthEngine`] evaluates declarative
//!   rules over the stream into deduplicated firing/resolved events.
//! * **Profiles ride logical stacks.** Hot paths push [`FrameKind`] guards
//!   onto a per-thread stack; the [`prof`] sampler folds what it sees into
//!   a collapsed-stack table ([`ProfileReport`], scraped via
//!   `Request::Profile*`), [`ProfMutex`] attributes lock waits to the
//!   blocking stack, and a [`SimProfile`] samples on the virtual clock for
//!   bit-reproducible profiles under tell-sim.

pub mod export;
pub mod health;
pub mod prof;
pub mod registry;
pub mod slowlog;
pub mod snapshot;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use health::{HealthConfig, HealthEngine, HealthEvent, NodeTick, RuleKind};
pub use prof::{
    AllocStat, CollapsedTable, FrameGuard, FrameKind, LockStat, ProfMutex, ProfRwLock,
    ProfileReport, SimProfile,
};
pub use registry::{
    global, help_for, sample_phases, Counter, Gauge, Phase, Registry, ShardedHistogram,
    PHASE_SAMPLE_EVERY,
};
pub use snapshot::MetricsSnapshot;
pub use span::{
    current_span, in_server_dispatch, Span, SpanAttrs, SpanKind, SpanStatus, SpanTimer,
};
pub use timeseries::{PhaseDigest, Rollup, TelemetryPage, TsPoint, TsRing};
pub use trace::{
    current as current_trace, fmt_trace, next_trace_id, set_current as set_current_trace,
    TraceGuard,
};

/// Add `n` to a counter in the global registry (this thread's shard ref is
/// cached, so the cost is one relaxed load plus one relaxed `fetch_add`).
#[inline]
pub fn add(c: Counter, n: u64) {
    registry::global_add(c, n);
}

/// Increment a counter in the global registry.
#[inline]
pub fn incr(c: Counter) {
    registry::global_add(c, 1);
}

/// Set a gauge in the global registry.
#[inline]
pub fn set_gauge(g: Gauge, v: u64) {
    global().set_gauge(g, v);
}

/// Record a histogram sample in the global registry.
#[inline]
pub fn observe(p: Phase, v: f64) {
    registry::global_observe(p, v);
}

/// Snapshot the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

/// Enable or disable the global registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global registry is recording.
pub fn enabled() -> bool {
    global().enabled()
}

//! Point-in-time metric snapshots and their two renderings: Prometheus text
//! exposition for scrapes, and a JSON document for machine-readable bench
//! reports and the `Request::Metrics` wire op.
//!
//! The workspace vendors no serde, so both the JSON writer and the parser
//! are hand-rolled against exactly the subset this format uses: one object
//! of objects, string keys without escapes, and numbers. Floats are printed
//! with Rust's shortest round-trip formatting (`{:?}`), so
//! `from_json(to_json())` reproduces every value bit-for-bit.

use std::fmt::Write as _;

use tell_common::Summary;

/// A merged view of every counter, gauge, and histogram in a registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, in registry declaration order.
    pub counters: Vec<(String, u64)>,
    /// Gauges, in registry declaration order.
    pub gauges: Vec<(String, u64)>,
    /// Histogram summaries, in registry declaration order.
    pub histograms: Vec<(String, Summary)>,
    /// Sparse raw bucket data per histogram, as ascending
    /// `(upper_bound, count)` pairs. Only histograms with at least one
    /// sample appear; documents written before this section existed parse
    /// with it empty.
    pub buckets: Vec<(String, Vec<(f64, u64)>)>,
}

fn f(v: f64) -> String {
    // {:?} is Rust's shortest representation that round-trips through
    // `str::parse::<f64>`, and (for finite values) is valid JSON.
    format!("{v:?}")
}

impl MetricsSnapshot {
    /// Render in the Prometheus text exposition format. Every metric name
    /// is prefixed `tell_`. Histograms with raw bucket data (the `buckets`
    /// section) render as native cumulative histograms — `_bucket{le=...}`
    /// series plus `le="+Inf"`, `_sum`, and `_count`; histograms without
    /// (empty, or parsed from a pre-buckets document) fall back to the
    /// summary rendering with `quantile="0"` / `quantile="1"` carrying the
    /// observed min and max. Names the local registry recognizes get a
    /// `# HELP` line from the metric id's doc comment (a snapshot parsed
    /// from a remote node may carry names this build does not know; those
    /// render without HELP).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let help = |out: &mut String, name: &str| {
            if let Some(h) = crate::registry::help_for(name) {
                let _ = writeln!(out, "# HELP tell_{name} {h}");
            }
        };
        for (name, v) in &self.counters {
            help(&mut out, name);
            let _ = writeln!(out, "# TYPE tell_{name} counter");
            let _ = writeln!(out, "tell_{name} {v}");
        }
        for (name, v) in &self.gauges {
            help(&mut out, name);
            let _ = writeln!(out, "# TYPE tell_{name} gauge");
            let _ = writeln!(out, "tell_{name} {v}");
        }
        for (name, s) in &self.histograms {
            help(&mut out, name);
            let raw = self.buckets.iter().find(|(n, _)| n == name).map(|(_, b)| b);
            match raw {
                Some(buckets) => {
                    let _ = writeln!(out, "# TYPE tell_{name} histogram");
                    let mut cum = 0u64;
                    for (upper, count) in buckets {
                        cum += count;
                        let _ = writeln!(out, "tell_{name}_bucket{{le=\"{}\"}} {cum}", f(*upper));
                    }
                    let _ = writeln!(out, "tell_{name}_bucket{{le=\"+Inf\"}} {}", s.count);
                }
                None => {
                    let _ = writeln!(out, "# TYPE tell_{name} summary");
                    let _ = writeln!(out, "tell_{name}{{quantile=\"0\"}} {}", f(s.min));
                    let _ = writeln!(out, "tell_{name}{{quantile=\"0.5\"}} {}", f(s.p50));
                    let _ = writeln!(out, "tell_{name}{{quantile=\"0.99\"}} {}", f(s.p99));
                    let _ = writeln!(out, "tell_{name}{{quantile=\"0.999\"}} {}", f(s.p999));
                    let _ = writeln!(out, "tell_{name}{{quantile=\"1\"}} {}", f(s.max));
                }
            }
            let _ = writeln!(out, "tell_{name}_sum {}", f(s.mean * s.count as f64));
            let _ = writeln!(out, "tell_{name}_count {}", s.count);
        }
        out
    }

    /// Render as a JSON document. The inverse of [`MetricsSnapshot::from_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, s)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"stddev\":{},\
                 \"p50\":{},\"p99\":{},\"p999\":{}}}",
                s.count,
                f(s.min),
                f(s.max),
                f(s.mean),
                f(s.stddev),
                f(s.p50),
                f(s.p99),
                f(s.p999),
            );
        }
        out.push('}');
        if !self.buckets.is_empty() {
            // Emitted only when non-empty so pre-buckets consumers keep
            // parsing snapshots that carry no histogram samples, and the
            // empty snapshot's rendering is unchanged.
            out.push_str(",\"buckets\":{");
            for (i, (name, pairs)) in self.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{name}\":{{");
                for (j, (upper, count)) in pairs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{count}", f(*upper));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parse a document produced by [`MetricsSnapshot::to_json`]. Accepts
    /// arbitrary whitespace between tokens but only the subset of JSON this
    /// format emits (no escapes in strings, no arrays, no null).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let snap = p.snapshot()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(snap)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != b'"' {
            if self.b[self.i] == b'\\' {
                return Err(format!("escape sequences unsupported at offset {}", self.i));
            }
            self.i += 1;
        }
        if self.i == self.b.len() {
            return Err("unterminated string".into());
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "invalid utf-8 in string".to_string())?
            .to_string();
        self.i += 1;
        Ok(s)
    }

    fn number_token(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected number at offset {start}"));
        }
        std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "invalid number".into())
    }

    fn u64(&mut self) -> Result<u64, String> {
        let tok = self.number_token()?;
        tok.parse::<u64>().map_err(|e| format!("bad u64 {tok:?}: {e}"))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let tok = self.number_token()?;
        tok.parse::<f64>().map_err(|e| format!("bad f64 {tok:?}: {e}"))
    }

    /// `{ "k": <v>, ... }` with `each` parsing one value after its key.
    fn object<F: FnMut(&mut Self, String) -> Result<(), String>>(
        &mut self,
        mut each: F,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            each(self, key)?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn summary(&mut self) -> Result<Summary, String> {
        let mut s = Summary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            stddev: 0.0,
            p50: 0.0,
            p99: 0.0,
            p999: 0.0,
        };
        self.object(|p, key| {
            match key.as_str() {
                "count" => s.count = p.u64()?,
                "min" => s.min = p.f64()?,
                "max" => s.max = p.f64()?,
                "mean" => s.mean = p.f64()?,
                "stddev" => s.stddev = p.f64()?,
                "p50" => s.p50 = p.f64()?,
                "p99" => s.p99 = p.f64()?,
                "p999" => s.p999 = p.f64()?,
                other => return Err(format!("unknown summary field {other:?}")),
            }
            Ok(())
        })?;
        Ok(s)
    }

    fn snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot::default();
        self.object(|p, section| {
            match section.as_str() {
                "counters" => p.object(|p, name| {
                    let v = p.u64()?;
                    snap.counters.push((name, v));
                    Ok(())
                })?,
                "gauges" => p.object(|p, name| {
                    let v = p.u64()?;
                    snap.gauges.push((name, v));
                    Ok(())
                })?,
                "histograms" => p.object(|p, name| {
                    let s = p.summary()?;
                    snap.histograms.push((name, s));
                    Ok(())
                })?,
                "buckets" => p.object(|p, name| {
                    let mut pairs = Vec::new();
                    p.object(|p, upper| {
                        let u = upper
                            .parse::<f64>()
                            .map_err(|e| format!("bad bucket bound {upper:?}: {e}"))?;
                        let c = p.u64()?;
                        pairs.push((u, c));
                        Ok(())
                    })?;
                    snap.buckets.push((name, pairs));
                    Ok(())
                })?,
                other => return Err(format!("unknown section {other:?}")),
            }
            Ok(())
        })?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![("txn_committed_total".into(), 42), ("gc_cycles_total".into(), 0)],
            gauges: vec![("cm_base".into(), 17)],
            histograms: vec![(
                "txn_total_us".into(),
                Summary {
                    count: 3,
                    min: 1.5,
                    max: 1e9,
                    mean: 12.25,
                    stddev: 0.001,
                    p50: 2.0,
                    p99: 1e9,
                    p999: 1e9,
                },
            )],
            buckets: vec![],
        }
    }

    fn sample_with_buckets() -> MetricsSnapshot {
        let mut snap = sample();
        snap.buckets = vec![("txn_total_us".into(), vec![(2.0, 2), (1073741824.0, 1)])];
        snap
    }

    #[test]
    fn json_round_trips() {
        let snap = sample();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let spaced = r#" { "counters" : { "a" : 1 } ,
            "gauges" : { } , "histograms" : { } } "#;
        let snap = MetricsSnapshot::from_json(spaced).expect("parse");
        assert_eq!(snap.counters, vec![("a".to_string(), 1)]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{}extra").is_err());
        assert!(MetricsSnapshot::from_json(r#"{"counters":{"a":-1}}"#).is_err());
        assert!(MetricsSnapshot::from_json(r#"{"bogus":{}}"#).is_err());
        assert!(MetricsSnapshot::from_json(r#"{"counters":{"a\n":1}}"#).is_err());
    }

    #[test]
    fn buckets_round_trip_through_json() {
        let snap = sample_with_buckets();
        let json = snap.to_json();
        assert!(json.contains("\"buckets\":{\"txn_total_us\":{\"2.0\":2,\"1073741824.0\":1}}"));
        let back = MetricsSnapshot::from_json(&json).expect("parse");
        assert_eq!(back, snap);
        // A pre-buckets document still parses, with the section empty.
        let old = sample().to_json();
        assert!(!old.contains("buckets"));
        assert_eq!(MetricsSnapshot::from_json(&old).expect("parse").buckets, vec![]);
    }

    #[test]
    fn bucket_data_renders_as_native_histogram() {
        let text = sample_with_buckets().to_prometheus_text();
        assert!(text.contains("# TYPE tell_txn_total_us histogram"));
        // cumulative: 2, then 2+1
        assert!(text.contains("tell_txn_total_us_bucket{le=\"2.0\"} 2"));
        assert!(text.contains("tell_txn_total_us_bucket{le=\"1073741824.0\"} 3"));
        assert!(text.contains("tell_txn_total_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tell_txn_total_us_count 3"));
        assert!(!text.contains("quantile"));
        // A live registry with samples exports native histograms end to end.
        let reg = crate::registry::Registry::new();
        reg.observe(crate::registry::Phase::TxnTotal, 10.0);
        reg.observe(crate::registry::Phase::TxnTotal, 20.0);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE tell_txn_total_us histogram"));
        assert!(text.contains("tell_txn_total_us_bucket{le=\"+Inf\"} 2"));
        // …while sample-less histograms keep the summary fallback.
        assert!(text.contains("# TYPE tell_gc_cycle_us summary"));
    }

    #[test]
    fn prometheus_text_has_expected_lines() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# TYPE tell_txn_committed_total counter"));
        assert!(text.contains("tell_txn_committed_total 42"));
        assert!(text.contains("# TYPE tell_cm_base gauge"));
        assert!(text.contains("tell_txn_total_us{quantile=\"0.99\"} 1000000000.0"));
        assert!(text.contains("tell_txn_total_us_count 3"));
    }

    #[test]
    fn prometheus_text_has_help_lines() {
        let text = sample().to_prometheus_text();
        // HELP precedes TYPE for every name the registry knows…
        assert!(text.contains(
            "# HELP tell_txn_committed_total Transactions committed.\n\
             # TYPE tell_txn_committed_total counter"
        ));
        assert!(text
            .contains(&format!("# HELP tell_cm_base {}", crate::registry::Gauge::CmBase.help())));
        assert!(text.contains(&format!(
            "# HELP tell_txn_total_us {}",
            crate::registry::Phase::TxnTotal.help()
        )));
        // …and a full registry snapshot has one HELP per metric.
        let full = crate::registry::Registry::new().snapshot().to_prometheus_text();
        let helps = full.matches("# HELP ").count();
        let types = full.matches("# TYPE ").count();
        assert_eq!(helps, types);
        // An unknown (remote-only) name renders without a HELP line.
        let mut alien = MetricsSnapshot::default();
        alien.counters.push(("alien_total".to_string(), 1));
        let text = alien.to_prometheus_text();
        assert!(text.contains("# TYPE tell_alien_total counter"));
        assert!(!text.contains("# HELP tell_alien_total"));
    }
}

//! `tell-prof`: the always-on logical-stack sampling profiler.
//!
//! Histograms (PR 3) and telemetry rings (PR 8) show *that* a percentile
//! moved; this module shows *where the microseconds go*. It is not a native
//! profiler — there is no frame-pointer walking and no signal handling.
//! Instead, the hot paths that already open spans also push a one-byte
//! [`FrameKind`] onto a per-thread logical stack ([`FrameGuard`], cost: one
//! thread-local read plus one relaxed store per push/pop), and a dedicated
//! sampler thread walks a fixed registry of those stacks at `TELL_PROF_HZ`
//! (default [`DEFAULT_HZ`] = 99, deliberately co-prime with common timer
//! frequencies), folding what it sees into a bounded [`CollapsedTable`] of
//! `frame;frame;frame count` rows — the collapsed-stack format inferno and
//! speedscope ingest directly. Wakes are capped at `WAKE_HZ_CAP` per
//! second; higher rates credit multiple periods per wake, because the
//! cost of a wake is the preemption it inflicts, not the walk.
//!
//! Three dimensions share the frame vocabulary:
//!
//! * **CPU-ish time**: the sampler credits one sample per tick to each
//!   live thread's current stack (`idle` when the stack is empty).
//! * **Lock contention**: [`ProfMutex`] wraps `parking_lot::Mutex` with a
//!   `try_lock` fast path; a contended acquire records the wait per named
//!   lock, bumps the `lock_contended_total` / `lock_wait_us_total`
//!   registry counters, and — while the live profiler runs — charges
//!   `wait / period` synthetic samples to the blocking stack capped with a
//!   [`FrameKind::LockWait`] frame, so lock wait shows up inside the
//!   flamegraph exactly where it was paid.
//! * **Allocation**: with the off-by-default `prof-alloc` feature, a
//!   counting global allocator charges every allocation's bytes/count to
//!   the allocating thread's current top frame.
//!
//! Determinism under the simulator: wall-clock sampling is useless there
//! (the turnstile parks workers between steps with their phase frames
//! popped) and nondeterministic besides. Instead a [`SimProfile`] samples
//! on the **virtual clock**: worker threads attach with [`sim_attach`] and
//! every simulated-cost charge point calls [`sim_tick`] with the thread's
//! virtual now, which credits `floor(elapsed / period)` samples to the
//! stack *at charge time* — inside the phase frames that paid the cost.
//! Same seed, same charges, same stacks: the folded profile is
//! bit-identical across replays. Sim-attached threads set a non-zero
//! domain tag on their slot so the wall-clock sampler skips them.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use tell_common::{Error, Result};

use crate::registry::Counter;
use crate::span::wall_now_us;

/// One level of the logical stack. The taxonomy mirrors
/// [`crate::SpanKind`] (same dotted names, so span waterfalls and
/// flamegraphs speak one vocabulary) plus the profile-only kinds: store
/// reads, durable append/fsync, and the synthetic [`FrameKind::LockWait`]
/// cap for contended-lock attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum FrameKind {
    /// Whole transaction, begin to completion (the root frame).
    Txn = 0,
    /// Snapshot acquisition from the commit manager.
    TxnBegin = 1,
    /// Read-set fetch against storage.
    TxnRead = 2,
    /// Write-set assembly and version checks on the PN.
    TxnValidate = 3,
    /// The conditional LL/SC multi-write round trip.
    TxnInstall = 4,
    /// Commit-manager completion (`set_committed` / `set_aborted`).
    TxnCmComplete = 5,
    /// One RPC request/response round trip, client side.
    RpcClientCall = 6,
    /// One frame decoded, dispatched, and answered, server side.
    RpcDispatch = 7,
    /// One async submit-window flush (possibly many coalesced ops).
    BatchFlush = 8,
    /// One garbage-collection sweep.
    GcPass = 9,
    /// Storage-engine write application inside a server dispatch.
    StoreWrite = 10,
    /// Commit-manager state transition.
    CmApply = 11,
    /// Storage-engine read (get / multi-get / scan) service.
    StoreRead = 12,
    /// Durable-tier log append.
    DurableAppend = 13,
    /// Durable-tier fsync.
    DurableFsync = 14,
    /// Synthetic leaf: time spent blocked on a contended [`ProfMutex`].
    LockWait = 15,
}

impl FrameKind {
    /// Every kind, indexed by discriminant.
    pub const ALL: [FrameKind; 16] = [
        FrameKind::Txn,
        FrameKind::TxnBegin,
        FrameKind::TxnRead,
        FrameKind::TxnValidate,
        FrameKind::TxnInstall,
        FrameKind::TxnCmComplete,
        FrameKind::RpcClientCall,
        FrameKind::RpcDispatch,
        FrameKind::BatchFlush,
        FrameKind::GcPass,
        FrameKind::StoreWrite,
        FrameKind::CmApply,
        FrameKind::StoreRead,
        FrameKind::DurableAppend,
        FrameKind::DurableFsync,
        FrameKind::LockWait,
    ];

    /// Dotted display name, matching the span vocabulary where both exist.
    pub fn name(self) -> &'static str {
        match self {
            FrameKind::Txn => "txn",
            FrameKind::TxnBegin => "txn.begin",
            FrameKind::TxnRead => "txn.read",
            FrameKind::TxnValidate => "txn.validate",
            FrameKind::TxnInstall => "txn.install",
            FrameKind::TxnCmComplete => "txn.cm_complete",
            FrameKind::RpcClientCall => "rpc.client_call",
            FrameKind::RpcDispatch => "rpc.dispatch",
            FrameKind::BatchFlush => "rpc.batch_flush",
            FrameKind::GcPass => "gc.pass",
            FrameKind::StoreWrite => "store.write",
            FrameKind::CmApply => "cm.apply",
            FrameKind::StoreRead => "store.read",
            FrameKind::DurableAppend => "durable.append",
            FrameKind::DurableFsync => "durable.fsync",
            FrameKind::LockWait => "lock.wait",
        }
    }

    /// Decode a stack-table code.
    pub fn from_u8(v: u8) -> Result<FrameKind> {
        FrameKind::ALL
            .get(v as usize)
            .copied()
            .ok_or_else(|| Error::corrupt(format!("unknown frame kind {v}")))
    }

    /// Reverse of [`FrameKind::name`].
    pub fn from_name(name: &str) -> Result<FrameKind> {
        FrameKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
            .ok_or_else(|| Error::corrupt(format!("unknown frame name {name:?}")))
    }
}

/// The first twelve frame kinds are the span taxonomy, discriminant for
/// discriminant, so span-instrumented call sites convert for free.
impl From<crate::SpanKind> for FrameKind {
    fn from(kind: crate::SpanKind) -> FrameKind {
        FrameKind::ALL[kind as u8 as usize]
    }
}

/// Deepest logical stack the profiler records; deeper pushes still balance
/// but the excess frames are not sampled.
pub const MAX_DEPTH: usize = 16;

/// Fixed thread-slot pool. Threads past the pool size run unprofiled —
/// far above any realistic worker count in this workspace.
const MAX_THREADS: usize = 256;

/// Per-slot ring of recent `(wall µs, top frame)` samples, written only by
/// the sampler thread and read only by the owning thread (slow-op close).
const RECENT: usize = 64;

struct ThreadSlot {
    in_use: AtomicBool,
    /// 0 = live thread (wall-clock sampled); non-zero = sim-attached
    /// (virtual-clock sampled, skipped by the wall sampler).
    domain: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU8; MAX_DEPTH],
    /// Packed `(wall_us << 8) | frame_code`, a ring indexed by
    /// `recent_next`.
    recent: [AtomicU64; RECENT],
    recent_next: AtomicUsize,
}

impl ThreadSlot {
    #[allow(clippy::declare_interior_mutable_const)]
    const INIT: ThreadSlot = ThreadSlot {
        in_use: AtomicBool::new(false),
        domain: AtomicU64::new(0),
        depth: AtomicUsize::new(0),
        frames: [const { AtomicU8::new(0) }; MAX_DEPTH],
        recent: [const { AtomicU64::new(0) }; RECENT],
        recent_next: AtomicUsize::new(0),
    };
}

static SLOTS: [ThreadSlot; MAX_THREADS] = [ThreadSlot::INIT; MAX_THREADS];

/// One past the highest slot index ever claimed. The sampler walks only
/// this prefix — with a handful of threads that is a handful of loads per
/// wake, not `MAX_THREADS`. Monotonic: released slots stay inside the
/// prefix (their `in_use` flag gates them out) so a racing claim can
/// never escape the walk.
static SLOT_HWM: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's claimed slot. Const-init and never dropped, so it is
    /// safe to *read* from the counting allocator without recursion.
    static SLOT: Cell<Option<&'static ThreadSlot>> = const { Cell::new(None) };
    /// Companion with a destructor: releases the slot at thread exit.
    static SLOT_RELEASE: SlotRelease = const { SlotRelease { slot: Cell::new(None) } };
}

struct SlotRelease {
    slot: Cell<Option<&'static ThreadSlot>>,
}

impl Drop for SlotRelease {
    fn drop(&mut self) {
        if let Some(s) = self.slot.get() {
            let _ = SLOT.try_with(|c| c.set(None));
            s.depth.store(0, Ordering::Relaxed);
            s.domain.store(0, Ordering::Relaxed);
            s.in_use.store(false, Ordering::Release);
        }
    }
}

/// This thread's slot, claiming one from the pool on first use. `None`
/// when the pool is exhausted or thread-local storage is tearing down.
fn my_slot() -> Option<&'static ThreadSlot> {
    SLOT.try_with(|c| {
        if let Some(s) = c.get() {
            return Some(s);
        }
        for (i, slot) in SLOTS.iter().enumerate() {
            if slot
                .in_use
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                slot.depth.store(0, Ordering::Relaxed);
                slot.domain.store(0, Ordering::Relaxed);
                SLOT_HWM.fetch_max(i + 1, Ordering::Relaxed);
                c.set(Some(slot));
                let _ = SLOT_RELEASE.try_with(|r| r.slot.set(Some(slot)));
                return Some(slot);
            }
        }
        None
    })
    .ok()
    .flatten()
}

/// This thread's current stack as frame codes (shallowest first).
fn current_stack_codes() -> Vec<u8> {
    let Some(slot) = my_slot() else {
        return Vec::new();
    };
    let d = slot.depth.load(Ordering::Relaxed).min(MAX_DEPTH);
    (0..d).map(|i| slot.frames[i].load(Ordering::Relaxed)).collect()
}

/// RAII frame on the logical stack. Push and pop are each one
/// thread-local read plus one relaxed/release store; there is no check of
/// whether any sampler is running — the frames *are* the always-on part.
///
/// Guards normally nest like scopes. A guard dropped on another thread
/// (e.g. a transaction root moved across threads) or out of order simply
/// truncates the originating slot's stack back to its saved depth — that
/// smears a few samples, it cannot corrupt memory.
pub struct FrameGuard {
    slot: Option<&'static ThreadSlot>,
    prev_depth: usize,
}

impl FrameGuard {
    /// Push `kind` onto this thread's logical stack.
    #[inline]
    pub fn enter(kind: FrameKind) -> FrameGuard {
        let slot = my_slot();
        let mut prev_depth = 0;
        if let Some(s) = slot {
            let d = s.depth.load(Ordering::Relaxed);
            prev_depth = d;
            if d < MAX_DEPTH {
                s.frames[d].store(kind as u8, Ordering::Relaxed);
            }
            // Release so a sampler that observes the new depth also
            // observes the frame byte written above.
            s.depth.store(d + 1, Ordering::Release);
        }
        FrameGuard { slot, prev_depth }
    }
}

impl Drop for FrameGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(s) = self.slot {
            s.depth.store(self.prev_depth, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Collapsed-stack table
// ---------------------------------------------------------------------------

/// Default bound on distinct stacks held by a table. The frame taxonomy is
/// small, so real profiles sit far below this; the bound exists so a bug
/// (or a hostile `parse_folded` input) cannot balloon memory.
pub const DEFAULT_MAX_STACKS: usize = 512;

/// Bounded aggregation of sampled stacks: `frame-code sequence → count`.
///
/// Keys are ordered byte sequences, so iteration — and therefore
/// [`CollapsedTable::to_folded`] — is deterministic with no sorting step.
/// Once `max_stacks` distinct stacks exist, samples for *new* stacks are
/// tallied in `dropped` instead of silently lost.
#[derive(Clone, Debug, PartialEq)]
pub struct CollapsedTable {
    max_stacks: usize,
    stacks: BTreeMap<Vec<u8>, u64>,
    dropped: u64,
}

impl CollapsedTable {
    /// Empty table bounded to `max_stacks` distinct stacks.
    pub const fn new(max_stacks: usize) -> CollapsedTable {
        CollapsedTable { max_stacks, stacks: BTreeMap::new(), dropped: 0 }
    }

    /// Credit `n` samples to the stack `key` (frame codes, shallowest
    /// first). Over the cardinality bound, the samples go to the drop
    /// counter.
    pub fn add(&mut self, key: &[u8], n: u64) {
        if let Some(v) = self.stacks.get_mut(key) {
            *v += n;
        } else if self.stacks.len() < self.max_stacks {
            self.stacks.insert(key.to_vec(), n);
        } else {
            self.dropped += n;
        }
    }

    /// Fold another table into this one.
    pub fn merge(&mut self, other: &CollapsedTable) {
        for (k, v) in &other.stacks {
            self.add(k, *v);
        }
        self.dropped += other.dropped;
    }

    /// Number of distinct stacks.
    pub fn len(&self) -> usize {
        self.stacks.len()
    }

    /// Whether no stack has been recorded.
    pub fn is_empty(&self) -> bool {
        self.stacks.is_empty()
    }

    /// Samples lost to the cardinality bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sum of all recorded sample counts (excluding dropped).
    pub fn total(&self) -> u64 {
        self.stacks.values().sum()
    }

    /// `(stack names, count)` rows in deterministic (key) order.
    pub fn rows(&self) -> Vec<(Vec<&'static str>, u64)> {
        self.stacks
            .iter()
            .map(|(k, v)| {
                let names = k
                    .iter()
                    .map(|&c| FrameKind::from_u8(c).map(|f| f.name()).unwrap_or("?"))
                    .collect();
                (names, *v)
            })
            .collect()
    }

    /// Render in collapsed-stack ("folded") format, one
    /// `frame;frame;frame count` line per stack, deterministically
    /// ordered. Inferno's `flamegraph --from folded` and speedscope both
    /// ingest this directly.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (names, count) in self.rows() {
            out.push_str(&names.join(";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse folded text produced by [`CollapsedTable::to_folded`] (or by
    /// hand). Unknown frame names, malformed counts, and empty stacks are
    /// corruption; samples past `max_stacks` land in the drop counter,
    /// same as [`CollapsedTable::add`].
    pub fn parse_folded(text: &str, max_stacks: usize) -> Result<CollapsedTable> {
        let mut table = CollapsedTable::new(max_stacks);
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| Error::corrupt(format!("folded line without count: {line:?}")))?;
            let count: u64 = count
                .parse()
                .map_err(|_| Error::corrupt(format!("bad folded count: {count:?}")))?;
            let key = stack
                .split(';')
                .map(|name| FrameKind::from_name(name).map(|k| k as u8))
                .collect::<Result<Vec<u8>>>()?;
            if key.is_empty() {
                return Err(Error::corrupt("empty stack in folded line".to_string()));
            }
            table.add(&key, count);
        }
        Ok(table)
    }
}

// ---------------------------------------------------------------------------
// Profile report (the scrape payload)
// ---------------------------------------------------------------------------

/// Contention totals for one named lock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockStat {
    /// Registration name (e.g. `cm.state`).
    pub name: String,
    /// Acquires that found the lock held.
    pub contended: u64,
    /// Total microseconds spent waiting in those acquires.
    pub wait_us: u64,
}

/// Allocation totals charged to one frame (requires `prof-alloc`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocStat {
    /// Top frame at allocation time (`(untracked)` when no frame was
    /// active).
    pub frame: String,
    /// Number of allocations.
    pub allocs: u64,
    /// Bytes requested.
    pub bytes: u64,
}

/// Everything one profiler scrape returns; `Response::Profile` carries
/// this across the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Whether the sampler was running at fetch time.
    pub running: bool,
    /// Sampling rate the profiler was (last) started with.
    pub hz: f64,
    /// Samples credited to non-empty stacks (equals the folded total plus
    /// `dropped`).
    pub samples: u64,
    /// Samples that found an empty stack (thread alive but outside any
    /// instrumented region).
    pub idle: u64,
    /// Samples lost to the stack-cardinality bound.
    pub dropped: u64,
    /// The collapsed-stack table, rendered (deterministically ordered).
    pub folded: String,
    /// Per-lock contention totals, busiest (by wait) first.
    pub locks: Vec<LockStat>,
    /// Per-frame allocation totals; empty unless built with `prof-alloc`.
    pub alloc: Vec<AllocStat>,
}

// ---------------------------------------------------------------------------
// Live (wall-clock) sampler
// ---------------------------------------------------------------------------

/// Default sampling rate when `TELL_PROF_HZ` is unset: 99 Hz, co-prime
/// with common periodic work so samples do not phase-lock to it.
pub const DEFAULT_HZ: f64 = 99.0;

/// Sampling rate from `TELL_PROF_HZ`, falling back to [`DEFAULT_HZ`].
pub fn default_hz() -> f64 {
    std::env::var("TELL_PROF_HZ")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(DEFAULT_HZ)
}

struct LiveProfiler {
    running: AtomicBool,
    period_us_bits: AtomicU64,
    samples: AtomicU64,
    idle: AtomicU64,
    table: Mutex<CollapsedTable>,
}

static LIVE: LiveProfiler = LiveProfiler {
    running: AtomicBool::new(false),
    period_us_bits: AtomicU64::new(0),
    samples: AtomicU64::new(0),
    idle: AtomicU64::new(0),
    table: Mutex::new(CollapsedTable::new(DEFAULT_MAX_STACKS)),
};

static SAMPLER: Mutex<Option<std::thread::JoinHandle<()>>> = Mutex::new(None);

/// Whether the live sampler is currently running.
#[inline]
pub fn is_running() -> bool {
    LIVE.running.load(Ordering::Relaxed)
}

/// The live sampling period in microseconds (0 when never started).
fn live_period_us() -> f64 {
    f64::from_bits(LIVE.period_us_bits.load(Ordering::Relaxed))
}

/// Start the wall-clock sampler at `hz` (`None`: `TELL_PROF_HZ` /
/// [`DEFAULT_HZ`]), resetting any previous profile. Returns `false` if it
/// was already running (the running profile is untouched).
pub fn start(hz: Option<f64>) -> bool {
    let hz = hz.filter(|h| *h > 0.0).unwrap_or_else(default_hz);
    if LIVE.running.swap(true, Ordering::SeqCst) {
        return false;
    }
    let period_us = 1e6 / hz;
    LIVE.period_us_bits.store(period_us.to_bits(), Ordering::Relaxed);
    LIVE.samples.store(0, Ordering::Relaxed);
    LIVE.idle.store(0, Ordering::Relaxed);
    *LIVE.table.lock() = CollapsedTable::new(DEFAULT_MAX_STACKS);
    // Above WAKE_HZ_CAP the sampler sleeps `credit` periods per wake and
    // credits each observed stack `credit` samples — the same charge-time
    // crediting the sim sampler uses. The dominant cost of a wake is not
    // the walk but the preemption itself (the interrupted thread resumes
    // with cold caches, and the damage scales with its working set), so
    // capping the wake rate is what keeps high-hz profiles cheap.
    let credit = (hz / WAKE_HZ_CAP).ceil().max(1.0) as u64;
    let handle = std::thread::Builder::new()
        .name("tell-prof".into())
        .spawn(move || {
            let sleep =
                std::time::Duration::from_secs_f64((credit as f64 * period_us / 1e6).max(50e-6));
            while LIVE.running.load(Ordering::Relaxed) {
                std::thread::sleep(sleep);
                sample_all_live(credit);
            }
        })
        .expect("spawn tell-prof sampler");
    *SAMPLER.lock() = Some(handle);
    true
}

/// Stop the sampler (the accumulated profile stays fetchable). Returns
/// `false` if it was not running.
pub fn stop() -> bool {
    if !LIVE.running.swap(false, Ordering::SeqCst) {
        return false;
    }
    if let Some(h) = SAMPLER.lock().take() {
        let _ = h.join();
    }
    true
}

/// Most sampler wakes per second, regardless of the requested rate. Each
/// wake preempts whatever thread holds the core, and the preempted thread
/// resumes with cold caches — a cost proportional to its working set, not
/// to anything the sampler does. Above the cap, rate is preserved by
/// crediting multiple periods per wake ([`start`]).
const WAKE_HZ_CAP: f64 = 250.0;

/// One sampler tick: walk every live (domain-0) slot, crediting `n`
/// samples per observed stack.
fn sample_all_live(n: u64) {
    let now_us = wall_now_us();
    let mut key = Vec::with_capacity(MAX_DEPTH);
    // The table lock is taken at most once per wake (lazily, on the first
    // non-idle stack) and held across the walk — the walk is a few dozen
    // atomic loads, and keeping wakes cheap matters more than lock-hold
    // granularity on a sampler that fires hundreds of times a second.
    let mut table = None;
    let hwm = SLOT_HWM.load(Ordering::Relaxed).min(MAX_THREADS);
    for slot in SLOTS[..hwm].iter() {
        if !slot.in_use.load(Ordering::Acquire) || slot.domain.load(Ordering::Relaxed) != 0 {
            continue;
        }
        let d = slot.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if d == 0 {
            LIVE.idle.fetch_add(n, Ordering::Relaxed);
            continue;
        }
        key.clear();
        for i in 0..d {
            key.push(slot.frames[i].load(Ordering::Relaxed));
        }
        LIVE.samples.fetch_add(n, Ordering::Relaxed);
        table.get_or_insert_with(|| LIVE.table.lock()).add(&key, n);
        // Leave a trail for the slow-op log: (timestamp, top frame).
        let idx = slot.recent_next.load(Ordering::Relaxed);
        slot.recent[idx % RECENT].store((now_us << 8) | key[d - 1] as u64, Ordering::Relaxed);
        slot.recent_next.store(idx.wrapping_add(1), Ordering::Relaxed);
    }
}

/// Snapshot the current profile (running or stopped).
pub fn fetch() -> ProfileReport {
    let (folded, dropped) = {
        let t = LIVE.table.lock();
        (t.to_folded(), t.dropped())
    };
    let period = live_period_us();
    ProfileReport {
        running: is_running(),
        hz: if period > 0.0 { 1e6 / period } else { 0.0 },
        samples: LIVE.samples.load(Ordering::Relaxed),
        idle: LIVE.idle.load(Ordering::Relaxed),
        dropped,
        folded,
        locks: lock_snapshot(),
        alloc: alloc_snapshot(),
    }
}

/// Top `max` frames the sampler observed on *this thread* during the last
/// `window_us` microseconds, as `(name, samples)` pairs, hottest first.
/// Cheap and empty when the profiler is not running — the slow-op log
/// calls this on every slow close.
pub fn top_frames_in_window(window_us: f64, max: usize) -> Vec<(&'static str, u32)> {
    if !is_running() {
        return Vec::new();
    }
    let Ok(Some(slot)) = SLOT.try_with(|c| c.get()) else {
        return Vec::new();
    };
    let cutoff = wall_now_us().saturating_sub(window_us.max(0.0) as u64);
    let mut counts = [0u32; FrameKind::ALL.len()];
    for r in slot.recent.iter() {
        let packed = r.load(Ordering::Relaxed);
        if packed == 0 || (packed >> 8) < cutoff {
            continue;
        }
        let code = (packed & 0xff) as usize;
        if code < counts.len() {
            counts[code] += 1;
        }
    }
    let mut top: Vec<(&'static str, u32)> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| (FrameKind::ALL[i].name(), c))
        .collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    top.truncate(max);
    top
}

// ---------------------------------------------------------------------------
// Lock-contention accounting
// ---------------------------------------------------------------------------

/// Contention counters for one lock name, shared by every [`ProfMutex`]
/// registered under it (e.g. all sixteen histogram shards).
pub struct LockStats {
    name: &'static str,
    contended: AtomicU64,
    wait_us: AtomicU64,
}

impl LockStats {
    /// Account one contended acquire that started waiting at `t0`: bump
    /// the per-name totals and the registry counters, and — while the
    /// live profiler runs — charge the wait as [`FrameKind::LockWait`]
    /// samples on the blocking stack.
    #[cold]
    fn account_wait(&self, t0: Instant) {
        let wait_us = (t0.elapsed().as_secs_f64() * 1e6) as u64;
        self.contended.fetch_add(1, Ordering::Relaxed);
        self.wait_us.fetch_add(wait_us, Ordering::Relaxed);
        crate::add(Counter::LockContended, 1);
        crate::add(Counter::LockWaitUs, wait_us);
        if is_running() {
            let period = live_period_us();
            if period > 0.0 {
                let n = (wait_us as f64 / period).round() as u64;
                if n > 0 {
                    let mut key = current_stack_codes();
                    key.truncate(MAX_DEPTH - 1);
                    key.push(FrameKind::LockWait as u8);
                    LIVE.samples.fetch_add(n, Ordering::Relaxed);
                    LIVE.table.lock().add(&key, n);
                }
            }
        }
    }
}

static LOCK_REGISTRY: Mutex<Vec<&'static LockStats>> = Mutex::new(Vec::new());

/// The shared [`LockStats`] for `name`, registering it on first use.
pub fn lock_stats(name: &'static str) -> &'static LockStats {
    let mut reg = LOCK_REGISTRY.lock();
    if let Some(s) = reg.iter().find(|s| s.name == name) {
        return s;
    }
    let s: &'static LockStats = Box::leak(Box::new(LockStats {
        name,
        contended: AtomicU64::new(0),
        wait_us: AtomicU64::new(0),
    }));
    reg.push(s);
    s
}

/// Per-lock contention totals, heaviest waiter first.
pub fn lock_snapshot() -> Vec<LockStat> {
    let mut out: Vec<LockStat> = LOCK_REGISTRY
        .lock()
        .iter()
        .map(|s| LockStat {
            name: s.name.to_string(),
            contended: s.contended.load(Ordering::Relaxed),
            wait_us: s.wait_us.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by(|a, b| b.wait_us.cmp(&a.wait_us).then(a.name.cmp(&b.name)));
    out
}

/// A named `parking_lot::Mutex` that accounts contention.
///
/// The uncontended path is one `try_lock` — same cost class as a plain
/// lock. A contended acquire times the wait, feeds the per-name
/// [`LockStats`] and the `lock_contended_total` / `lock_wait_us_total`
/// registry counters, and — while the live profiler runs — charges the
/// wait to this thread's logical stack under a [`FrameKind::LockWait`]
/// leaf so flamegraphs show *where* the wait was suffered.
pub struct ProfMutex<T> {
    stats: &'static LockStats,
    inner: Mutex<T>,
}

impl<T> ProfMutex<T> {
    /// New mutex accounted under `name`.
    pub fn new(name: &'static str, value: T) -> ProfMutex<T> {
        ProfMutex { stats: lock_stats(name), inner: Mutex::new(value) }
    }

    /// Lock, accounting the acquire if it had to wait.
    #[inline]
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        match self.inner.try_lock() {
            Some(g) => g,
            None => self.lock_contended(),
        }
    }

    #[cold]
    fn lock_contended(&self) -> parking_lot::MutexGuard<'_, T> {
        let t0 = Instant::now();
        let guard = self.inner.lock();
        self.stats.account_wait(t0);
        guard
    }

    /// Non-blocking acquire; never counts as contention.
    #[inline]
    pub fn try_lock(&self) -> Option<parking_lot::MutexGuard<'_, T>> {
        self.inner.try_lock()
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> ProfMutex<T> {
    /// Default value accounted under `name`.
    pub fn with_default(name: &'static str) -> ProfMutex<T> {
        ProfMutex::new(name, T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ProfMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfMutex")
            .field("name", &self.stats.name)
            .field("inner", &self.inner)
            .finish()
    }
}

/// [`ProfMutex`]'s reader-writer sibling, for the partition maps. Both
/// acquire directions count contention; the accounting (per-name stats,
/// registry counters, live-profile attribution) is identical.
pub struct ProfRwLock<T> {
    stats: &'static LockStats,
    inner: parking_lot::RwLock<T>,
}

impl<T> ProfRwLock<T> {
    /// New rwlock accounted under `name`.
    pub fn new(name: &'static str, value: T) -> ProfRwLock<T> {
        ProfRwLock { stats: lock_stats(name), inner: parking_lot::RwLock::new(value) }
    }

    /// Shared acquire, accounting if it had to wait for a writer.
    #[inline]
    pub fn read(&self) -> parking_lot::RwLockReadGuard<'_, T> {
        match self.inner.try_read() {
            Some(g) => g,
            None => {
                let t0 = Instant::now();
                let g = self.inner.read();
                self.stats.account_wait(t0);
                g
            }
        }
    }

    /// Exclusive acquire, accounting if it had to wait.
    #[inline]
    pub fn write(&self) -> parking_lot::RwLockWriteGuard<'_, T> {
        match self.inner.try_write() {
            Some(g) => g,
            None => {
                let t0 = Instant::now();
                let g = self.inner.write();
                self.stats.account_wait(t0);
                g
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ProfRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfRwLock")
            .field("name", &self.stats.name)
            .field("inner", &self.inner)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Deterministic (virtual-clock) sampling for the simulator
// ---------------------------------------------------------------------------

/// A virtual-clock profile shared by the worker threads of one simulated
/// run. Workers [`sim_attach`] at spawn; every simulated-cost charge
/// point calls [`sim_tick`] with the worker's virtual now, crediting
/// whole sampling periods to the stack that paid the cost. Everything is
/// a pure function of the (seeded, deterministic) virtual clocks, so the
/// report is bit-identical across replays of the same plan.
pub struct SimProfile {
    period_us: f64,
    samples: AtomicU64,
    idle: AtomicU64,
    table: Mutex<CollapsedTable>,
}

impl SimProfile {
    /// New profile sampling at `hz` on the virtual clock.
    pub fn new(hz: f64) -> Arc<SimProfile> {
        let hz = if hz > 0.0 { hz } else { DEFAULT_HZ };
        Arc::new(SimProfile {
            period_us: 1e6 / hz,
            samples: AtomicU64::new(0),
            idle: AtomicU64::new(0),
            table: Mutex::new(CollapsedTable::new(DEFAULT_MAX_STACKS)),
        })
    }

    /// Snapshot as a [`ProfileReport`] (locks and alloc stay empty: both
    /// are wall-clock phenomena with no deterministic meaning in the
    /// sim).
    pub fn report(&self) -> ProfileReport {
        let t = self.table.lock();
        ProfileReport {
            running: false,
            hz: 1e6 / self.period_us,
            samples: self.samples.load(Ordering::Relaxed),
            idle: self.idle.load(Ordering::Relaxed),
            dropped: t.dropped(),
            folded: t.to_folded(),
            locks: Vec::new(),
            alloc: Vec::new(),
        }
    }
}

struct SimAttach {
    prof: Arc<SimProfile>,
    next_due_us: f64,
}

thread_local! {
    static SIM: RefCell<Option<SimAttach>> = const { RefCell::new(None) };
}

/// Attach this thread to `prof`, with the thread's virtual clock at
/// `now_us`. Marks the thread's slot with a non-zero domain so the
/// wall-clock sampler ignores it.
pub fn sim_attach(prof: &Arc<SimProfile>, now_us: f64) {
    if let Some(slot) = my_slot() {
        slot.domain.store(1, Ordering::Relaxed);
    }
    SIM.with(|s| {
        *s.borrow_mut() =
            Some(SimAttach { prof: prof.clone(), next_due_us: now_us + prof.period_us });
    });
}

/// Detach this thread from its [`SimProfile`] and rejoin the wall-clock
/// sampling domain.
pub fn sim_detach() {
    let _ = SIM.try_with(|s| s.borrow_mut().take());
    if let Ok(Some(slot)) = SLOT.try_with(|c| c.get()) {
        slot.domain.store(0, Ordering::Relaxed);
    }
}

/// Virtual-clock charge hook: called with this thread's virtual now after
/// simulated cost has been charged. Credits every whole sampling period
/// since the last credit to the current logical stack. One thread-local
/// read and a float compare when profiling; the same when detached.
#[inline]
pub fn sim_tick(now_us: f64) {
    let _ = SIM.try_with(|s| {
        let mut b = s.borrow_mut();
        let Some(st) = b.as_mut() else {
            return;
        };
        if now_us < st.next_due_us {
            return;
        }
        let n = ((now_us - st.next_due_us) / st.prof.period_us) as u64 + 1;
        st.next_due_us += n as f64 * st.prof.period_us;
        let key = current_stack_codes();
        if key.is_empty() {
            st.prof.idle.fetch_add(n, Ordering::Relaxed);
        } else {
            st.prof.samples.fetch_add(n, Ordering::Relaxed);
            st.prof.table.lock().add(&key, n);
        }
    });
}

// ---------------------------------------------------------------------------
// Allocation accounting (feature `prof-alloc`)
// ---------------------------------------------------------------------------

/// Display name for allocations made outside any frame.
pub const UNTRACKED_FRAME: &str = "(untracked)";

#[cfg(feature = "prof-alloc")]
mod alloc_counting {
    use super::*;
    use std::alloc::{GlobalAlloc, Layout, System};

    const BUCKETS: usize = FrameKind::ALL.len() + 1;

    static ALLOCS: [AtomicU64; BUCKETS] = [const { AtomicU64::new(0) }; BUCKETS];
    static BYTES: [AtomicU64; BUCKETS] = [const { AtomicU64::new(0) }; BUCKETS];

    /// Counting allocator: forwards to [`System`], charging bytes and
    /// counts to the allocating thread's current top frame. It only ever
    /// *reads* the const-init slot cell — never registers a slot — so it
    /// cannot recurse or allocate on its own behalf.
    pub struct ProfAlloc;

    #[inline]
    fn charge(size: usize) {
        let idx = SLOT
            .try_with(|c| c.get())
            .ok()
            .flatten()
            .and_then(|slot| {
                let d = slot.depth.load(Ordering::Relaxed);
                if d == 0 || d > MAX_DEPTH {
                    None
                } else {
                    Some(slot.frames[d - 1].load(Ordering::Relaxed) as usize)
                }
            })
            .filter(|&i| i < BUCKETS - 1)
            .unwrap_or(BUCKETS - 1);
        ALLOCS[idx].fetch_add(1, Ordering::Relaxed);
        BYTES[idx].fetch_add(size as u64, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for ProfAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            charge(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            charge(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            charge(new_size.saturating_sub(layout.size()));
            System.realloc(ptr, layout, new_size)
        }
    }

    pub fn snapshot() -> Vec<AllocStat> {
        let mut out = Vec::new();
        for (i, (a, b)) in ALLOCS.iter().zip(BYTES.iter()).enumerate() {
            let allocs = a.load(Ordering::Relaxed);
            let bytes = b.load(Ordering::Relaxed);
            if allocs == 0 {
                continue;
            }
            let frame = if i < FrameKind::ALL.len() {
                FrameKind::ALL[i].name().to_string()
            } else {
                UNTRACKED_FRAME.to_string()
            };
            out.push(AllocStat { frame, allocs, bytes });
        }
        out.sort_by(|x, y| y.bytes.cmp(&x.bytes).then(x.frame.cmp(&y.frame)));
        out
    }
}

#[cfg(feature = "prof-alloc")]
#[global_allocator]
static PROF_ALLOC: alloc_counting::ProfAlloc = alloc_counting::ProfAlloc;

/// Per-frame allocation totals; empty unless the `prof-alloc` feature is
/// enabled.
pub fn alloc_snapshot() -> Vec<AllocStat> {
    #[cfg(feature = "prof-alloc")]
    {
        alloc_counting::snapshot()
    }
    #[cfg(not(feature = "prof-alloc"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kind_names_round_trip() {
        for k in FrameKind::ALL {
            assert_eq!(FrameKind::from_u8(k as u8).unwrap(), k);
            assert_eq!(FrameKind::from_name(k.name()).unwrap(), k);
        }
        assert!(FrameKind::from_u8(200).is_err());
        assert!(FrameKind::from_name("no.such").is_err());
    }

    #[test]
    fn guards_nest_and_unwind() {
        let read_stack = || current_stack_codes();
        assert!(read_stack().is_empty());
        let g1 = FrameGuard::enter(FrameKind::Txn);
        let g2 = FrameGuard::enter(FrameKind::TxnRead);
        assert_eq!(read_stack(), vec![FrameKind::Txn as u8, FrameKind::TxnRead as u8]);
        drop(g2);
        assert_eq!(read_stack(), vec![FrameKind::Txn as u8]);
        drop(g1);
        assert!(read_stack().is_empty());
    }

    #[test]
    fn deep_stacks_stay_balanced() {
        let mut guards = Vec::new();
        for _ in 0..(MAX_DEPTH + 4) {
            guards.push(FrameGuard::enter(FrameKind::Txn));
        }
        assert_eq!(current_stack_codes().len(), MAX_DEPTH);
        while let Some(g) = guards.pop() {
            drop(g); // unwind innermost-first, like real scopes
        }
        assert!(current_stack_codes().is_empty());
    }

    #[test]
    fn collapsed_table_bounds_cardinality() {
        let mut t = CollapsedTable::new(2);
        t.add(&[0], 1);
        t.add(&[0, 2], 2);
        t.add(&[0, 3], 5); // third distinct stack: dropped
        t.add(&[0], 1); // existing stack still counts
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 5);
        assert_eq!(t.total(), 4);
        let folded = t.to_folded();
        assert_eq!(folded, "txn 2\ntxn;txn.read 2\n");
    }

    #[test]
    fn folded_round_trips() {
        let mut t = CollapsedTable::new(64);
        t.add(&[FrameKind::Txn as u8, FrameKind::TxnInstall as u8], 7);
        t.add(&[FrameKind::GcPass as u8], 3);
        let parsed = CollapsedTable::parse_folded(&t.to_folded(), 64).unwrap();
        assert_eq!(parsed, t);
        assert!(CollapsedTable::parse_folded("nonsense_frame 1", 64).is_err());
        assert!(CollapsedTable::parse_folded("txn notanumber", 64).is_err());
        assert!(CollapsedTable::parse_folded("txn", 64).is_err());
    }

    #[test]
    fn prof_mutex_accounts_contention() {
        let m = Arc::new(ProfMutex::new("test.contended", 0u64));
        let before = lock_snapshot()
            .into_iter()
            .find(|s| s.name == "test.contended")
            .map(|s| s.contended)
            .unwrap_or(0);
        let m2 = m.clone();
        let g = m.lock();
        let h = std::thread::spawn(move || {
            *m2.lock() += 1;
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(g);
        h.join().unwrap();
        let after = lock_snapshot().into_iter().find(|s| s.name == "test.contended").unwrap();
        assert!(after.contended > before);
        assert!(after.wait_us > 0);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn sim_profile_is_deterministic() {
        let run = || {
            let p = SimProfile::new(100.0); // 10_000 µs period
            sim_attach(&p, 0.0);
            {
                let _t = FrameGuard::enter(FrameKind::Txn);
                {
                    let _r = FrameGuard::enter(FrameKind::TxnRead);
                    sim_tick(25_000.0); // 2 periods due
                }
                sim_tick(40_000.0); // 2 more at depth 1
            }
            sim_tick(65_000.0); // idle credit
            sim_detach();
            p.report()
        };
        let a = run();
        let b = run();
        assert_eq!(a.folded, b.folded);
        assert_eq!(a.samples, 4);
        assert_eq!(a.idle, 2);
        assert_eq!(a.folded, "txn 2\ntxn;txn.read 2\n");
    }

    #[test]
    fn live_sampler_sees_a_held_frame() {
        let _g = FrameGuard::enter(FrameKind::GcPass);
        assert!(start(Some(2000.0)));
        assert!(!start(None)); // second start is a no-op
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(stop());
        assert!(!stop());
        let report = fetch();
        assert!(!report.running);
        assert!(report.samples > 0, "sampler never saw the frame: {report:?}");
        assert!(report.folded.contains("gc.pass"), "folded: {}", report.folded);
        // The recent-sample ring feeds the slow-op window lookup.
        let top = top_frames_in_window(10e6, 3);
        // Profiler stopped: lookup is disabled again.
        assert!(top.is_empty());
    }
}

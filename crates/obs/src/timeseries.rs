//! Per-node telemetry time series: fixed-cadence rollups of the metrics
//! registry into a bounded ring of [`TsPoint`]s.
//!
//! The registry answers "what is the value *now*"; every interesting
//! question in the paper — throughput ramps (Tables 2–3), latency tails
//! (Table 5 TP99/TP999), abort-rate spikes — is about *rates and tails over
//! a window*. A [`Rollup`] closes that gap: every interval it reads the
//! registry once, subtracts the previous reading, and appends one point
//! holding **counter deltas**, **gauge samples**, and **per-phase quantile
//! digests** (p50/p99/p999 computed from the raw bucket difference, so the
//! digest describes only the samples recorded in that window, not the
//! process lifetime).
//!
//! Design rules:
//!
//! * **No hot-path cost.** Nothing here is called from transaction or RPC
//!   code; the rollup is a periodic reader of the same sharded registry the
//!   hot path already writes. The only new cost is the merge the rollup
//!   pays, on its own thread (or its own sim turn).
//! * **O(1) append, bounded memory.** The ring is a drop-oldest `VecDeque`
//!   with a monotonically increasing sequence number per point; readers
//!   scrape incrementally with [`TsRing::since`] and a cursor, so a scrape
//!   never re-transfers history and eviction never blocks the writer.
//! * **Two clocks.** Under tell-sim the turnstile drives [`Rollup::roll`]
//!   on the virtual clock with `wall_us = 0`, keeping the produced history
//!   bit-reproducible per seed. Everywhere else a background thread
//!   ([`ensure_wall_driver`]) rolls the global registry on the wall clock.
//!
//! The wire shape ([`TelemetryPage`], served by `Request::Telemetry`)
//! carries the metric-name lists alongside the points, so a collector can
//! map indices by name even when the remote node runs a build with a
//! different metric set.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use tell_common::codec::{Reader, Writer};
use tell_common::{bucket_quantile, Error, Result};

use crate::registry::{Counter, Gauge, Phase, Registry};

/// Points kept per ring. At the default wall cadence (250 ms) this is a
/// little over two minutes of history — enough for any rate/trend rule
/// window while keeping a ring under ~400 KiB.
pub const DEFAULT_RING_POINTS: usize = 512;

/// Default wall-clock rollup interval in milliseconds (override with the
/// `TELL_TELEMETRY_MS` environment variable).
pub const DEFAULT_WALL_INTERVAL_MS: u64 = 250;

/// Hard cap on points returned per [`TelemetryPage`] (and accepted per
/// decoded page): incremental scrape, not bulk export.
pub const MAX_PAGE_POINTS: usize = 1024;

/// Quantile digest of one histogram over one rollup interval.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseDigest {
    /// Samples recorded during the interval.
    pub count: u64,
    /// Median estimate over the interval (bucket upper bound; 0 when the
    /// interval recorded no samples).
    pub p50: f64,
    /// TP99 estimate over the interval.
    pub p99: f64,
    /// TP999 estimate over the interval.
    pub p999: f64,
}

impl PhaseDigest {
    fn encode(&self, w: &mut impl Writer) {
        w.put_u64(self.count);
        w.put_f64(self.p50);
        w.put_f64(self.p99);
        w.put_f64(self.p999);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(PhaseDigest { count: r.u64()?, p50: r.f64()?, p99: r.f64()?, p999: r.f64()? })
    }
}

/// One telemetry interval: counter deltas, gauge samples, and phase digests,
/// in the producing registry's declaration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TsPoint {
    /// Ring-assigned sequence number, monotonically increasing from 1 and
    /// never reused; the scrape cursor is "highest seq seen".
    pub seq: u64,
    /// Virtual clock at the rollup (microseconds; 0 under the wall driver).
    pub virt_us: f64,
    /// Wall clock at the rollup (microseconds since the Unix epoch; 0 under
    /// tell-sim so seeded histories stay bit-reproducible).
    pub wall_us: u64,
    /// Counter *deltas* since the previous point, indexed like the
    /// producer's `Counter::ALL`.
    pub counters: Vec<u64>,
    /// Gauge values sampled at the rollup, indexed like `Gauge::ALL`.
    pub gauges: Vec<u64>,
    /// Per-histogram interval digests, indexed like `Phase::ALL`.
    pub phases: Vec<PhaseDigest>,
}

impl TsPoint {
    /// Counter delta by id (0 when the point predates the id).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c as usize).copied().unwrap_or(0)
    }

    /// Gauge sample by id.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges.get(g as usize).copied().unwrap_or(0)
    }

    /// Phase digest by id.
    pub fn phase(&self, p: Phase) -> PhaseDigest {
        self.phases.get(p as usize).copied().unwrap_or_default()
    }

    /// Append the wire encoding.
    pub fn encode(&self, w: &mut impl Writer) {
        w.put_u64(self.seq);
        w.put_f64(self.virt_us);
        w.put_u64(self.wall_us);
        w.put_u32(self.counters.len() as u32);
        for v in &self.counters {
            w.put_u64(*v);
        }
        w.put_u32(self.gauges.len() as u32);
        for v in &self.gauges {
            w.put_u64(*v);
        }
        w.put_u32(self.phases.len() as u32);
        for d in &self.phases {
            d.encode(w);
        }
    }

    /// Decode one point from the reader.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let seq = r.u64()?;
        let virt_us = r.f64()?;
        let wall_us = r.u64()?;
        let mut p = TsPoint { seq, virt_us, wall_us, ..TsPoint::default() };
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            p.counters.push(r.u64()?);
        }
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            p.gauges.push(r.u64()?);
        }
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            p.phases.push(PhaseDigest::decode(r)?);
        }
        Ok(p)
    }
}

/// Metric-id sets are small; any larger length in a decoded point is a
/// corrupt or hostile frame, rejected before allocating.
fn check_len(n: u32) -> Result<u32> {
    if n > 4096 {
        return Err(Error::corrupt(format!("telemetry vector length {n} exceeds 4096")));
    }
    Ok(n)
}

struct RingInner {
    points: VecDeque<TsPoint>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
}

/// Bounded drop-oldest ring of [`TsPoint`]s with cursor-based incremental
/// reads. One mutex, held only for O(1) append or an O(returned) copy —
/// never on any transaction or RPC path.
pub struct TsRing {
    inner: Mutex<RingInner>,
}

impl TsRing {
    /// Empty ring holding at most `capacity` points.
    pub fn new(capacity: usize) -> Self {
        TsRing {
            inner: Mutex::new(RingInner {
                points: VecDeque::with_capacity(capacity.min(DEFAULT_RING_POINTS)),
                capacity: capacity.max(1),
                next_seq: 1,
                evicted: 0,
            }),
        }
    }

    /// Append one point, assigning its sequence number (the point's `seq`
    /// field on entry is ignored). Returns the assigned seq.
    pub fn push(&self, mut point: TsPoint) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        point.seq = seq;
        if inner.points.len() == inner.capacity {
            inner.points.pop_front();
            inner.evicted += 1;
        }
        inner.points.push_back(point);
        seq
    }

    /// Points with `seq > cursor` (oldest first, at most `max`), plus the
    /// next cursor to pass (the highest seq returned, or the highest seq in
    /// the ring when nothing is newer). A cursor from a previous process
    /// incarnation that is *ahead* of this ring resets to the beginning, so
    /// a restarted node's history is not silently skipped.
    pub fn since(&self, cursor: u64, max: usize) -> (Vec<TsPoint>, u64) {
        let inner = self.inner.lock();
        let latest = inner.next_seq - 1;
        let cursor = if cursor > latest { 0 } else { cursor };
        let out: Vec<TsPoint> =
            inner.points.iter().filter(|p| p.seq > cursor).take(max).cloned().collect();
        let next = out.last().map(|p| p.seq).unwrap_or(latest);
        (out, next)
    }

    /// The most recent point, if any.
    pub fn latest(&self) -> Option<TsPoint> {
        self.inner.lock().points.back().cloned()
    }

    /// Highest sequence number assigned so far (0 when empty).
    pub fn latest_seq(&self) -> u64 {
        self.inner.lock().next_seq - 1
    }

    /// Points currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().points.len()
    }

    /// True when no points are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Points dropped to the capacity bound since creation.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }
}

/// Periodic rollup driver: reads a registry, subtracts its previous
/// reading, and appends one [`TsPoint`] per call to a ring.
///
/// Baselines start at zero, so the first `roll` reports totals since the
/// registry was created — a point like any other. Counter regressions
/// (`Registry::reset` mid-run) clamp to zero instead of wrapping.
pub struct Rollup {
    ring: Arc<TsRing>,
    prev_counters: Vec<u64>,
    prev_buckets: Vec<Vec<u64>>,
    prev_phase_counts: Vec<u64>,
}

impl Rollup {
    /// Rollup appending into `ring`.
    pub fn new(ring: Arc<TsRing>) -> Self {
        Rollup {
            ring,
            prev_counters: vec![0; Counter::COUNT],
            prev_buckets: vec![Vec::new(); Phase::COUNT],
            prev_phase_counts: vec![0; Phase::COUNT],
        }
    }

    /// The ring this rollup appends to.
    pub fn ring(&self) -> &Arc<TsRing> {
        &self.ring
    }

    /// Take one rollup: read `reg`, append the interval point stamped with
    /// the given clocks, and return it (with its assigned seq).
    ///
    /// Bumps `Counter::TelemetryRollups` in `reg` *before* reading, so the
    /// tick's own increment lands in its own delta deterministically.
    pub fn roll(&mut self, reg: &Registry, virt_us: f64, wall_us: u64) -> TsPoint {
        reg.incr(Counter::TelemetryRollups);
        let mut counters = Vec::with_capacity(Counter::COUNT);
        for (i, &c) in Counter::ALL.iter().enumerate() {
            let now = reg.counter(c);
            counters.push(now.saturating_sub(self.prev_counters[i]));
            self.prev_counters[i] = now;
        }
        let gauges: Vec<u64> = Gauge::ALL.iter().map(|&g| reg.gauge(g)).collect();
        let mut phases = Vec::with_capacity(Phase::COUNT);
        for (i, &p) in Phase::ALL.iter().enumerate() {
            let h = reg.histogram(p);
            let now = h.bucket_counts();
            let prev = &self.prev_buckets[i];
            let delta: Vec<u64> = if prev.is_empty() {
                now.to_vec()
            } else {
                now.iter().zip(prev.iter()).map(|(a, b)| a.saturating_sub(*b)).collect()
            };
            phases.push(PhaseDigest {
                count: h.count().saturating_sub(self.prev_phase_counts[i]),
                p50: bucket_quantile(&delta, 0.50),
                p99: bucket_quantile(&delta, 0.99),
                p999: bucket_quantile(&delta, 0.999),
            });
            self.prev_buckets[i] = now.to_vec();
            self.prev_phase_counts[i] = h.count();
        }
        let mut point = TsPoint { seq: 0, virt_us, wall_us, counters, gauges, phases };
        point.seq = self.ring.push(point.clone());
        point
    }
}

/// One incremental telemetry scrape, as carried by `Response::Telemetry`.
///
/// The name lists describe the *producer's* index order, so a collector
/// running a build with a different metric set still maps every series
/// correctly by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryPage {
    /// Producer's counter names, in its index order.
    pub counter_names: Vec<String>,
    /// Producer's gauge names, in its index order.
    pub gauge_names: Vec<String>,
    /// Producer's histogram names, in its index order.
    pub phase_names: Vec<String>,
    /// Points newer than the request's cursor, oldest first.
    pub points: Vec<TsPoint>,
    /// Cursor to pass in the next scrape.
    pub next_cursor: u64,
}

impl TelemetryPage {
    /// Append the wire encoding.
    pub fn encode(&self, w: &mut impl Writer) {
        w.put_u32(self.counter_names.len() as u32);
        for n in &self.counter_names {
            w.put_string(n);
        }
        w.put_u32(self.gauge_names.len() as u32);
        for n in &self.gauge_names {
            w.put_string(n);
        }
        w.put_u32(self.phase_names.len() as u32);
        for n in &self.phase_names {
            w.put_string(n);
        }
        w.put_u32(self.points.len() as u32);
        for p in &self.points {
            p.encode(w);
        }
        w.put_u64(self.next_cursor);
    }

    /// Decode one page from the reader.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let mut page = TelemetryPage::default();
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            page.counter_names.push(r.string()?);
        }
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            page.gauge_names.push(r.string()?);
        }
        let n = check_len(r.u32()?)?;
        for _ in 0..n {
            page.phase_names.push(r.string()?);
        }
        let n = r.u32()?;
        if n as usize > MAX_PAGE_POINTS {
            return Err(Error::corrupt(format!("telemetry page of {n} points exceeds cap")));
        }
        for _ in 0..n {
            page.points.push(TsPoint::decode(r)?);
        }
        page.next_cursor = r.u64()?;
        Ok(page)
    }
}

/// This build's metric-name lists, in index order (the schema half of a
/// locally produced [`TelemetryPage`]).
pub fn local_names() -> (Vec<String>, Vec<String>, Vec<String>) {
    (
        Counter::ALL.iter().map(|c| c.name().to_string()).collect(),
        Gauge::ALL.iter().map(|g| g.name().to_string()).collect(),
        Phase::ALL.iter().map(|p| p.name().to_string()).collect(),
    )
}

/// The process-wide telemetry ring every server answers
/// `Request::Telemetry` from.
pub fn global_ring() -> &'static Arc<TsRing> {
    static RING: OnceLock<Arc<TsRing>> = OnceLock::new();
    RING.get_or_init(|| Arc::new(TsRing::new(DEFAULT_RING_POINTS)))
}

/// Build a [`TelemetryPage`] from the global ring for the given cursor.
pub fn page_since(cursor: u64) -> TelemetryPage {
    let (counter_names, gauge_names, phase_names) = local_names();
    let (points, next_cursor) = global_ring().since(cursor, MAX_PAGE_POINTS);
    TelemetryPage { counter_names, gauge_names, phase_names, points, next_cursor }
}

fn global_rollup() -> &'static Mutex<Rollup> {
    static ROLLUP: OnceLock<Mutex<Rollup>> = OnceLock::new();
    ROLLUP.get_or_init(|| Mutex::new(Rollup::new(Arc::clone(global_ring()))))
}

/// Roll the global registry into the global ring right now (wall-clock
/// stamped). Used by the wall driver each interval, and directly by tests
/// and one-shot scrapers that cannot wait a full interval.
pub fn roll_global_now() -> TsPoint {
    global_rollup().lock().roll(crate::global(), 0.0, crate::span::wall_now_us())
}

/// Start the process-wide wall-clock rollup driver (idempotent): a daemon
/// thread rolling the global registry every [`DEFAULT_WALL_INTERVAL_MS`]
/// (override with `TELL_TELEMETRY_MS`; `0` disables the driver). Servers
/// call this at startup so their history exists before the first scrape.
pub fn ensure_wall_driver() {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        let ms = std::env::var("TELL_TELEMETRY_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_WALL_INTERVAL_MS);
        if ms == 0 {
            return;
        }
        std::thread::Builder::new()
            .name("tell-telemetry".into())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                roll_global_now();
            })
            .expect("spawn telemetry rollup thread");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(v: u64) -> TsPoint {
        TsPoint { counters: vec![v], ..TsPoint::default() }
    }

    #[test]
    fn ring_assigns_monotonic_seqs_and_evicts_oldest() {
        let ring = TsRing::new(3);
        for v in 0..5 {
            ring.push(point(v));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
        assert_eq!(ring.latest_seq(), 5);
        let (all, next) = ring.since(0, 100);
        assert_eq!(all.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(next, 5);
    }

    #[test]
    fn since_is_incremental_and_bounded() {
        let ring = TsRing::new(10);
        for v in 0..6 {
            ring.push(point(v));
        }
        let (first, c1) = ring.since(0, 2);
        assert_eq!(first.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![1, 2]);
        let (second, c2) = ring.since(c1, 100);
        assert_eq!(second.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        let (rest, c3) = ring.since(c2, 100);
        assert!(rest.is_empty());
        assert_eq!(c3, 6);
    }

    #[test]
    fn cursor_ahead_of_ring_resets_to_start() {
        let ring = TsRing::new(10);
        ring.push(point(1));
        ring.push(point(2));
        // A cursor from a previous incarnation of the node.
        let (pts, next) = ring.since(900, 100);
        assert_eq!(pts.len(), 2);
        assert_eq!(next, 2);
    }

    #[test]
    fn rollup_produces_deltas_not_totals() {
        let reg = Registry::new();
        let ring = Arc::new(TsRing::new(16));
        let mut rollup = Rollup::new(Arc::clone(&ring));

        reg.add(Counter::TxnCommitted, 10);
        let p1 = rollup.roll(&reg, 100.0, 0);
        assert_eq!(p1.counter(Counter::TxnCommitted), 10);
        assert_eq!(p1.seq, 1);

        reg.add(Counter::TxnCommitted, 5);
        reg.set_gauge(Gauge::CmLav, 77);
        let p2 = rollup.roll(&reg, 200.0, 0);
        assert_eq!(p2.counter(Counter::TxnCommitted), 5);
        assert_eq!(p2.gauge(Gauge::CmLav), 77);
        // the rollup's own tick counter shows up as exactly 1 per interval
        assert_eq!(p2.counter(Counter::TelemetryRollups), 1);

        // a reset (counter regression) clamps to zero, no wrap
        reg.reset();
        let p3 = rollup.roll(&reg, 300.0, 0);
        assert_eq!(p3.counter(Counter::TxnCommitted), 0);
    }

    #[test]
    fn rollup_digests_cover_only_the_interval() {
        let reg = Registry::new();
        let ring = Arc::new(TsRing::new(16));
        let mut rollup = Rollup::new(Arc::clone(&ring));

        for _ in 0..100 {
            reg.observe(Phase::TxnTotal, 10.0);
        }
        let p1 = rollup.roll(&reg, 0.0, 0);
        let d1 = p1.phase(Phase::TxnTotal);
        assert_eq!(d1.count, 100);
        assert!((d1.p50 - 10.0).abs() / 10.0 < 0.05, "p50={}", d1.p50);

        // Second interval records only much slower samples; the digest must
        // reflect them alone, not the lifetime mix.
        for _ in 0..100 {
            reg.observe(Phase::TxnTotal, 5000.0);
        }
        let p2 = rollup.roll(&reg, 0.0, 0);
        let d2 = p2.phase(Phase::TxnTotal);
        assert_eq!(d2.count, 100);
        assert!((d2.p50 - 5000.0).abs() / 5000.0 < 0.05, "p50={}", d2.p50);

        // An empty interval digests to zero.
        let p3 = rollup.roll(&reg, 0.0, 0);
        let d3 = p3.phase(Phase::TxnTotal);
        assert_eq!((d3.count, d3.p50, d3.p99), (0, 0.0, 0.0));
    }

    #[test]
    fn page_round_trips_through_the_codec() {
        let reg = Registry::new();
        let ring = Arc::new(TsRing::new(4));
        let mut rollup = Rollup::new(Arc::clone(&ring));
        reg.add(Counter::TxnCommitted, 3);
        reg.observe(Phase::TxnTotal, 42.0);
        rollup.roll(&reg, 1.5, 7);
        rollup.roll(&reg, 2.5, 8);

        let (counter_names, gauge_names, phase_names) = local_names();
        let (points, next_cursor) = ring.since(0, MAX_PAGE_POINTS);
        let page = TelemetryPage { counter_names, gauge_names, phase_names, points, next_cursor };
        let mut buf = Vec::new();
        page.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let back = TelemetryPage::decode(&mut r).expect("decode");
        assert!(r.is_exhausted());
        assert_eq!(back, page);
    }

    #[test]
    fn decode_rejects_oversized_vectors() {
        let mut buf = Vec::new();
        buf.put_u64(1); // seq
        buf.put_f64(0.0);
        buf.put_u64(0);
        buf.put_u32(1 << 30); // counters length: hostile
        assert!(TsPoint::decode(&mut Reader::new(&buf)).is_err());
    }
}

//! Trace assembly and Chrome trace-event export.
//!
//! A scrape (the `tell_trace` example, or a test) drains span rings from
//! several processes, tags each span with the node it came from, and hands
//! the pile to this module: [`group_by_trace`] reassembles per-transaction
//! trees, [`chrome_trace_json`] renders them as Chrome trace-event JSON —
//! one Perfetto "process" per trace, one "thread" per node, so each
//! transaction reads as a waterfall across PN, SN, and CM.
//!
//! [`validate_json`] is a dependency-free well-formedness check (RFC 8259
//! grammar, no schema) used by the e2e test and the `check.sh` smoke step
//! to fail fast on a malformed export.

use std::collections::HashMap;

use tell_common::{Error, Result};

use crate::span::Span;
use crate::trace::fmt_trace;

/// A span plus the node (scrape endpoint) it was drained from.
#[derive(Clone, Debug)]
pub struct SourcedSpan {
    /// Where the span was recorded ("pn", "sn 127.0.0.1:4321", …).
    pub node: String,
    /// The span itself.
    pub span: Span,
}

/// Group spans by trace id. Traces are ordered by their earliest wall-clock
/// start; spans within a trace by start time.
pub fn group_by_trace(spans: Vec<SourcedSpan>) -> Vec<(u64, Vec<SourcedSpan>)> {
    let mut by_trace: HashMap<u64, Vec<SourcedSpan>> = HashMap::new();
    for s in spans {
        by_trace.entry(s.span.trace).or_default().push(s);
    }
    let mut traces: Vec<(u64, Vec<SourcedSpan>)> = by_trace.into_iter().collect();
    for (_, spans) in &mut traces {
        spans.sort_by_key(|s| (s.span.start_wall_us, s.span.id));
    }
    traces.sort_by_key(|(id, spans)| (spans.first().map_or(0, |s| s.span.start_wall_us), *id));
    traces
}

/// Count parent links that do not resolve to a span of the same trace
/// (0-parent roots are fine). A nonzero result usually means a ring
/// overflowed mid-trace or a node was not scraped.
pub fn orphan_parents(spans: &[SourcedSpan]) -> usize {
    let mut ids: HashMap<u64, Vec<u64>> = HashMap::new();
    for s in spans {
        ids.entry(s.span.trace).or_default().push(s.span.id);
    }
    spans
        .iter()
        .filter(|s| {
            s.span.parent != 0
                && !ids.get(&s.span.trace).is_some_and(|v| v.contains(&s.span.parent))
        })
        .count()
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Render sourced spans as Chrome trace-event JSON (the `traceEvents`
/// object form Perfetto loads directly). Each trace becomes a Perfetto
/// process (pid = position in start order), each node a thread within it;
/// timestamps are wall-clock microseconds rebased to the earliest span.
pub fn chrome_trace_json(spans: &[SourcedSpan]) -> String {
    let t0 = spans.iter().map(|s| s.span.start_wall_us).min().unwrap_or(0);
    let traces = group_by_trace(spans.to_vec());
    let mut events: Vec<String> = Vec::new();
    for (pid0, (trace, spans)) in traces.iter().enumerate() {
        let pid = pid0 + 1;
        events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"trace {}"}}}}"#,
            fmt_trace(*trace)
        ));
        let mut tids: HashMap<&str, usize> = HashMap::new();
        for s in spans {
            let next = tids.len() + 1;
            let tid = *tids.entry(s.node.as_str()).or_insert(next);
            if tid == next {
                events.push(format!(
                    r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
                    json_escape(&s.node)
                ));
            }
            let sp = &s.span;
            let status = match sp.attrs.status {
                crate::span::SpanStatus::Ok => "ok",
                crate::span::SpanStatus::Conflict => "conflict",
                crate::span::SpanStatus::Error => "error",
            };
            events.push(format!(
                concat!(
                    r#"{{"name":"{name}","cat":"span","ph":"X","ts":{ts},"dur":{dur},"#,
                    r#""pid":{pid},"tid":{tid},"args":{{"span":"{id:016x}","parent":"{parent:016x}","#,
                    r#""status":"{status}","count":{count},"virt_us":{virt}}}}}"#
                ),
                name = sp.kind.name(),
                ts = sp.start_wall_us.saturating_sub(t0),
                dur = sp.wall_dur_us().max(1),
                pid = pid,
                tid = tid,
                id = sp.id,
                parent = sp.parent,
                status = status,
                count = sp.attrs.count,
                virt = finite(sp.virt_dur_us()),
            ));
        }
    }
    format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
}

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness validator.

struct Lint<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Lint<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::corrupt(format!("invalid JSON at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<()> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal(b"true"),
            b'f' => self.literal(b"false"),
            b'n' => self.literal(b"null"),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<()> {
        if self.b[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<()> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<()> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<()> {
        self.expect(b'"')?;
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or_else(|| self.err("truncated escape"))? {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.pos += 1,
                        b'u' => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control byte in string")),
                _ => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<()> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start || self.b[self.pos - 1] == b'-' {
            return Err(self.err("bad number"));
        }
        Ok(())
    }
}

/// Check `text` is one well-formed JSON value with nothing trailing.
pub fn validate_json(text: &str) -> Result<()> {
    let mut l = Lint { b: text.as_bytes(), pos: 0 };
    l.value()?;
    l.skip_ws();
    if l.pos != l.b.len() {
        return Err(l.err("trailing bytes after JSON value"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanAttrs, SpanKind, SpanStatus};

    fn span(trace: u64, id: u64, parent: u64, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            trace,
            id,
            parent,
            kind,
            start_virt_us: 0.0,
            end_virt_us: (end - start) as f64,
            start_wall_us: start,
            end_wall_us: end,
            attrs: SpanAttrs { count: 1, status: SpanStatus::Ok },
        }
    }

    fn sourced(node: &str, s: Span) -> SourcedSpan {
        SourcedSpan { node: node.to_string(), span: s }
    }

    #[test]
    fn grouping_orders_traces_and_spans_by_time() {
        let spans = vec![
            sourced("pn", span(2, 21, 0, SpanKind::Txn, 500, 900)),
            sourced("pn", span(1, 11, 0, SpanKind::Txn, 100, 400)),
            sourced("sn", span(1, 12, 11, SpanKind::ServerDispatch, 150, 250)),
        ];
        let traces = group_by_trace(spans);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].0, 1);
        assert_eq!(traces[0].1.len(), 2);
        assert_eq!(traces[0].1[0].span.id, 11);
        assert_eq!(traces[1].0, 2);
    }

    #[test]
    fn orphan_parents_counts_unresolvable_links() {
        let spans = vec![
            sourced("pn", span(1, 11, 0, SpanKind::Txn, 0, 10)),
            sourced("sn", span(1, 12, 11, SpanKind::ServerDispatch, 1, 5)),
            sourced("sn", span(1, 13, 999, SpanKind::StoreWrite, 2, 4)),
            // same id exists but in another trace: still an orphan
            sourced("pn", span(2, 21, 11, SpanKind::Txn, 20, 30)),
        ];
        assert_eq!(orphan_parents(&spans), 2);
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_events() {
        let spans = vec![
            sourced("pn", span(1, 11, 0, SpanKind::Txn, 1000, 1400)),
            sourced("sn 127.0.0.1:9\"x", span(1, 12, 11, SpanKind::ServerDispatch, 1100, 1200)),
        ];
        let json = chrome_trace_json(&spans);
        validate_json(&json).unwrap();
        assert!(json.contains(r#""name":"txn""#));
        assert!(json.contains(r#""name":"rpc.dispatch""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""ts":0"#)); // rebased to the earliest span
        assert!(json.contains("\\\"x")); // node name escaped
    }

    #[test]
    fn empty_export_is_still_valid() {
        validate_json(&chrome_trace_json(&[])).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in
            ["{}", "[]", r#"{"a":[1,2.5,-3e9,true,false,null,"s\né"]}"#, "  [ {\"x\": {} } ]  "]
        {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "[1] extra",
            "-",
            "1.2.3",
            "\"bad \\q escape\"",
            "NaN",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}

//! Declarative health rules over telemetry time series.
//!
//! A [`HealthEngine`] consumes one [`NodeTick`] per node per telemetry
//! interval — reachability plus that interval's [`TsPoint`] — and evaluates
//! a fixed catalog of rules (see [`RuleKind`]). Every rule is a pure
//! function of the tick stream, with **hysteresis** (a condition must hold
//! for `fire_after` consecutive ticks to fire and clear for `resolve_after`
//! ticks to resolve) and **deduplication** (only the firing→resolved
//! transitions emit [`HealthEvent`]s, never the steady state).
//!
//! Determinism is a design requirement, not an accident: given the same
//! tick stream the engine emits a byte-identical event sequence
//! ([`HealthEvent::render`]), which is how tell-sim proves observability
//! itself is reproducible (an `SnKill` window must fire
//! `ReplicaUnavailable` and resolve after the revive — see the sim e2e
//! tests). No wall clock, no randomness, no hash-map iteration order
//! reaches any decision or any emitted byte.

use std::collections::{BTreeMap, VecDeque};

use crate::registry::{Counter, Gauge};
use crate::timeseries::TsPoint;

/// The rule catalog. Labels are stable wire/rendered names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleKind {
    /// A node stopped answering scrapes (or the sim killed it).
    ReplicaUnavailable,
    /// Commit-manager saturation: lav lag trending up across the window
    /// while commits/interval stays flat or falls — the GC horizon cannot
    /// keep up with the completion frontier (the Table 3 ceiling).
    CmSaturation,
    /// Slow-reader backpressure engaging on RPC connections
    /// (`rpc_conn_backpressure_total` moving).
    SlowReaderBackpressure,
    /// Durable object-cache thrash: hit rate under threshold while
    /// evictions churn.
    DurableCacheThrash,
    /// Replica copies falling behind durably (replica-side durability
    /// records dropped; the copy re-syncs only on restart).
    ReplicationStaleness,
    /// Abort ratio over threshold at meaningful volume.
    AbortRateSpike,
    /// Lock-wait spike: the interval's `lock_wait_us_total` delta exceeds
    /// a fraction of the interval itself (waiting ~10% of wall time on
    /// locks) while commit volume is above the min-volume guard — the
    /// contended-lock signal the profiler's `ProfMutex` accounting feeds
    /// (DESIGN.md §8.3).
    LockWaitSpike,
}

impl RuleKind {
    /// Stable human/machine name.
    pub fn label(&self) -> &'static str {
        match self {
            RuleKind::ReplicaUnavailable => "replica_unavailable",
            RuleKind::CmSaturation => "cm_saturation",
            RuleKind::SlowReaderBackpressure => "slow_reader_backpressure",
            RuleKind::DurableCacheThrash => "durable_cache_thrash",
            RuleKind::ReplicationStaleness => "replication_staleness",
            RuleKind::AbortRateSpike => "abort_rate_spike",
            RuleKind::LockWaitSpike => "lock_wait_spike",
        }
    }

    /// Every rule, in evaluation (and rendering) order.
    pub const ALL: &'static [RuleKind] = &[
        RuleKind::ReplicaUnavailable,
        RuleKind::CmSaturation,
        RuleKind::SlowReaderBackpressure,
        RuleKind::DurableCacheThrash,
        RuleKind::ReplicationStaleness,
        RuleKind::AbortRateSpike,
        RuleKind::LockWaitSpike,
    ];
}

/// One node's contribution to one telemetry interval.
#[derive(Clone, Debug)]
pub struct NodeTick {
    /// Stable node name (`sn0`, `cm0`, `pn0`, or a collector target name).
    pub node: String,
    /// Whether the node answered this interval (sim: whether it is alive).
    pub reachable: bool,
    /// The node's rolled point for this interval, when one was obtained.
    /// Metric rules hold their state when it is `None`.
    pub point: Option<TsPoint>,
}

/// A firing or resolved transition of one rule on one node.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthEvent {
    /// Engine-assigned ordinal, increasing from 1.
    pub seq: u64,
    /// Virtual clock of the tick that transitioned the rule.
    pub virt_us: f64,
    /// Wall clock of that tick (0 under tell-sim).
    pub wall_us: u64,
    /// Which rule transitioned.
    pub rule: RuleKind,
    /// Which node it concerns.
    pub node: String,
    /// `true` on firing, `false` on resolve.
    pub firing: bool,
    /// Deterministic rendering of the triggering values.
    pub detail: String,
}

impl HealthEvent {
    /// One-line stable rendering; the sim's byte-reproducibility tests
    /// compare exactly these strings, so the format must stay a pure
    /// function of the event fields (no wall clock — it is 0 in the sim
    /// and nondeterministic elsewhere).
    pub fn render(&self) -> String {
        format!(
            "#{seq} t={t:.0}us {state} {rule} node={node} {detail}",
            seq = self.seq,
            t = self.virt_us,
            state = if self.firing { "FIRING" } else { "resolved" },
            rule = self.rule.label(),
            node = self.node,
            detail = self.detail,
        )
    }
}

/// Rule thresholds. Defaults are deliberately conservative; the sim and
/// tests tighten them to exercise transitions quickly.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Consecutive bad ticks before a rule fires.
    pub fire_after: u32,
    /// Consecutive good ticks before a firing rule resolves.
    pub resolve_after: u32,
    /// Backpressure engagements per interval that count as bad.
    pub backpressure_per_tick: u64,
    /// Abort ratio (aborts / finished) above which an interval is bad…
    pub abort_ratio: f64,
    /// …given at least this many finished transactions in the interval.
    pub abort_min_txns: u64,
    /// Durable-cache hit ratio below which an interval is bad…
    pub cache_hit_ratio: f64,
    /// …given at least this many evictions in the interval.
    pub cache_min_evictions: u64,
    /// Intervals in the CM-saturation trend window.
    pub saturation_window: usize,
    /// Minimum lav-lag growth (tids) across the window to count as
    /// "trending up".
    pub saturation_lag_growth: u64,
    /// Fraction of the interval spent waiting on locks above which the
    /// interval is bad (0.10 = more than 100ms of lock wait per second)…
    pub lock_wait_fraction: f64,
    /// …given at least this many commits in the interval (idle or
    /// draining nodes never spike).
    pub lock_wait_min_txns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            fire_after: 2,
            resolve_after: 2,
            backpressure_per_tick: 1,
            abort_ratio: 0.5,
            abort_min_txns: 20,
            cache_hit_ratio: 0.5,
            cache_min_evictions: 32,
            saturation_window: 4,
            saturation_lag_growth: 8,
            lock_wait_fraction: 0.10,
            lock_wait_min_txns: 20,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct RuleState {
    bad: u32,
    good: u32,
    firing: bool,
}

/// Tri-state rule verdict for one interval.
enum Verdict {
    Bad(String),
    Good,
    /// Not enough data this interval; hold the state unchanged.
    Hold,
}

/// The collector-side rule evaluator. Feed it ticks with
/// [`HealthEngine::observe`]; it returns the transitions that tick caused.
pub struct HealthEngine {
    cfg: HealthConfig,
    states: BTreeMap<(RuleKind, String), RuleState>,
    /// Per node: (lav_lag, commits_delta) for the last `saturation_window`
    /// intervals.
    trend: BTreeMap<String, VecDeque<(u64, u64)>>,
    /// Per node: virtual clock of its previous tick, for interval-relative
    /// rules (lock-wait spike needs "fraction of the interval").
    last_virt: BTreeMap<String, f64>,
    next_seq: u64,
}

impl HealthEngine {
    /// Engine with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthEngine {
            cfg,
            states: BTreeMap::new(),
            trend: BTreeMap::new(),
            last_virt: BTreeMap::new(),
            next_seq: 1,
        }
    }

    /// Evaluate one telemetry interval. `ticks` must arrive in a stable
    /// node order (the sim and collector both iterate their fixed target
    /// lists), and the returned events preserve (node, rule) order.
    pub fn observe(&mut self, virt_us: f64, wall_us: u64, ticks: &[NodeTick]) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for tick in ticks {
            let interval_us =
                self.last_virt.get(&tick.node).map(|prev| virt_us - prev).filter(|d| *d > 0.0);
            for &rule in RuleKind::ALL {
                let verdict = self.judge(rule, tick, interval_us);
                self.step(rule, tick, verdict, virt_us, wall_us, &mut events);
            }
            self.last_virt.insert(tick.node.clone(), virt_us);
        }
        events
    }

    /// Currently firing `(rule, node)` pairs, in stable sorted order.
    pub fn active(&self) -> Vec<(RuleKind, String)> {
        self.states.iter().filter(|(_, s)| s.firing).map(|((r, n), _)| (*r, n.clone())).collect()
    }

    /// Events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.next_seq - 1
    }

    fn judge(&mut self, rule: RuleKind, tick: &NodeTick, interval_us: Option<f64>) -> Verdict {
        if rule == RuleKind::ReplicaUnavailable {
            return if tick.reachable {
                Verdict::Good
            } else {
                Verdict::Bad("node not answering".to_string())
            };
        }
        let Some(point) = &tick.point else {
            return Verdict::Hold;
        };
        match rule {
            RuleKind::ReplicaUnavailable => unreachable!("handled above"),
            RuleKind::CmSaturation => {
                let lag = point.gauge(Gauge::CmLavLag);
                let commits = point.counter(Counter::TxnCommitted);
                let window = self.trend.entry(tick.node.clone()).or_default();
                window.push_back((lag, commits));
                if window.len() > self.cfg.saturation_window {
                    window.pop_front();
                }
                if window.len() < self.cfg.saturation_window {
                    return Verdict::Hold;
                }
                let lag_up = window.iter().zip(window.iter().skip(1)).all(|(a, b)| b.0 >= a.0)
                    && window.back().unwrap().0 - window.front().unwrap().0
                        >= self.cfg.saturation_lag_growth;
                let commits_flat = window.back().unwrap().1 <= window.front().unwrap().1;
                if lag_up && commits_flat {
                    Verdict::Bad(format!(
                        "lav_lag {}->{} while commits/interval {}->{}",
                        window.front().unwrap().0,
                        window.back().unwrap().0,
                        window.front().unwrap().1,
                        window.back().unwrap().1
                    ))
                } else {
                    Verdict::Good
                }
            }
            RuleKind::SlowReaderBackpressure => {
                let engaged = point.counter(Counter::ConnBackpressure);
                if engaged >= self.cfg.backpressure_per_tick {
                    Verdict::Bad(format!("backpressure engaged {engaged}x this interval"))
                } else {
                    Verdict::Good
                }
            }
            RuleKind::DurableCacheThrash => {
                let hits = point.counter(Counter::DurableCacheHits);
                let misses = point.counter(Counter::DurableCacheMisses);
                let evictions = point.counter(Counter::DurableCacheEvictions);
                let lookups = hits + misses;
                if evictions >= self.cfg.cache_min_evictions && lookups > 0 {
                    let ratio = hits as f64 / lookups as f64;
                    if ratio < self.cfg.cache_hit_ratio {
                        return Verdict::Bad(format!(
                            "hit ratio {ratio:.2} under {evictions} evictions"
                        ));
                    }
                }
                Verdict::Good
            }
            RuleKind::ReplicationStaleness => {
                let dropped = point.counter(Counter::DurableReplicaRecordsDropped);
                if dropped > 0 {
                    Verdict::Bad(format!("{dropped} replica records dropped"))
                } else {
                    Verdict::Good
                }
            }
            RuleKind::AbortRateSpike => {
                let aborts = point.counter(Counter::TxnAborted);
                let commits = point.counter(Counter::TxnCommitted);
                let finished = aborts + commits;
                if finished >= self.cfg.abort_min_txns {
                    let ratio = aborts as f64 / finished as f64;
                    if ratio > self.cfg.abort_ratio {
                        return Verdict::Bad(format!(
                            "abort ratio {ratio:.2} over {finished} txns"
                        ));
                    }
                }
                Verdict::Good
            }
            RuleKind::LockWaitSpike => {
                // The first tick of a node has no interval to compare
                // against; hold rather than guess.
                let Some(interval) = interval_us else {
                    return Verdict::Hold;
                };
                let wait = point.counter(Counter::LockWaitUs);
                let commits = point.counter(Counter::TxnCommitted);
                if commits < self.cfg.lock_wait_min_txns {
                    return Verdict::Good;
                }
                let fraction = wait as f64 / interval;
                if fraction > self.cfg.lock_wait_fraction {
                    Verdict::Bad(format!(
                        "lock wait {wait}us = {pct:.0}% of the interval over {commits} commits",
                        pct = fraction * 100.0
                    ))
                } else {
                    Verdict::Good
                }
            }
        }
    }

    fn step(
        &mut self,
        rule: RuleKind,
        tick: &NodeTick,
        verdict: Verdict,
        virt_us: f64,
        wall_us: u64,
        events: &mut Vec<HealthEvent>,
    ) {
        let state = self.states.entry((rule, tick.node.clone())).or_default();
        match verdict {
            Verdict::Hold => {}
            Verdict::Bad(detail) => {
                state.bad += 1;
                state.good = 0;
                if !state.firing && state.bad >= self.cfg.fire_after {
                    state.firing = true;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    events.push(HealthEvent {
                        seq,
                        virt_us,
                        wall_us,
                        rule,
                        node: tick.node.clone(),
                        firing: true,
                        detail,
                    });
                }
            }
            Verdict::Good => {
                state.good += 1;
                state.bad = 0;
                if state.firing && state.good >= self.cfg.resolve_after {
                    state.firing = false;
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    events.push(HealthEvent {
                        seq,
                        virt_us,
                        wall_us,
                        rule,
                        node: tick.node.clone(),
                        firing: false,
                        detail: "condition cleared".to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Counter, Gauge};

    fn point_with(counters: &[(Counter, u64)], gauges: &[(Gauge, u64)]) -> TsPoint {
        let mut p = TsPoint {
            counters: vec![0; Counter::COUNT],
            gauges: vec![0; Gauge::COUNT],
            ..TsPoint::default()
        };
        for (c, v) in counters {
            p.counters[*c as usize] = *v;
        }
        for (g, v) in gauges {
            p.gauges[*g as usize] = *v;
        }
        p
    }

    fn tick(node: &str, reachable: bool, point: Option<TsPoint>) -> NodeTick {
        NodeTick { node: node.to_string(), reachable, point }
    }

    #[test]
    fn unavailable_fires_with_hysteresis_and_resolves() {
        let mut eng = HealthEngine::new(HealthConfig::default());
        // one bad tick: below fire_after=2, nothing yet
        let ev = eng.observe(100.0, 0, &[tick("sn0", false, None)]);
        assert!(ev.is_empty());
        // second consecutive bad tick fires
        let ev = eng.observe(200.0, 0, &[tick("sn0", false, None)]);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].firing);
        assert_eq!(ev[0].rule, RuleKind::ReplicaUnavailable);
        assert_eq!(ev[0].node, "sn0");
        // still dead: deduplicated, no new event
        let ev = eng.observe(300.0, 0, &[tick("sn0", false, None)]);
        assert!(ev.is_empty());
        assert_eq!(eng.active(), vec![(RuleKind::ReplicaUnavailable, "sn0".to_string())]);
        // revive: resolves after resolve_after=2 good ticks
        let ev = eng.observe(400.0, 0, &[tick("sn0", true, None)]);
        assert!(ev.is_empty());
        let ev = eng.observe(500.0, 0, &[tick("sn0", true, None)]);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].firing);
        assert!(eng.active().is_empty());
        assert_eq!(eng.events_emitted(), 2);
    }

    #[test]
    fn abort_spike_needs_volume_and_ratio() {
        let cfg = HealthConfig { fire_after: 1, ..HealthConfig::default() };
        let mut eng = HealthEngine::new(cfg);
        // high ratio but tiny volume: good
        let p = point_with(&[(Counter::TxnAborted, 3), (Counter::TxnCommitted, 1)], &[]);
        assert!(eng.observe(0.0, 0, &[tick("pn0", true, Some(p))]).is_empty());
        // volume + ratio: fires
        let p = point_with(&[(Counter::TxnAborted, 30), (Counter::TxnCommitted, 10)], &[]);
        let ev = eng.observe(1.0, 0, &[tick("pn0", true, Some(p))]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, RuleKind::AbortRateSpike);
    }

    #[test]
    fn cm_saturation_requires_lag_trend_with_flat_commits() {
        let cfg = HealthConfig { fire_after: 1, ..HealthConfig::default() };
        let mut eng = HealthEngine::new(cfg);
        // lag climbing 0,10,20,30 while commits flat at 50
        for (i, lag) in [0u64, 10, 20, 30].iter().enumerate() {
            let p = point_with(&[(Counter::TxnCommitted, 50)], &[(Gauge::CmLavLag, *lag)]);
            let ev = eng.observe(i as f64, 0, &[tick("cm0", true, Some(p))]);
            if i < 3 {
                assert!(ev.is_empty(), "tick {i} fired early");
            } else {
                assert_eq!(ev.len(), 1, "window full should fire");
                assert_eq!(ev[0].rule, RuleKind::CmSaturation);
            }
        }
        // commits growing with the lag: healthy ramp, resolves
        for (i, lag) in [40u64, 50, 60, 70].iter().enumerate() {
            let p = point_with(
                &[(Counter::TxnCommitted, 100 + 50 * i as u64)],
                &[(Gauge::CmLavLag, *lag)],
            );
            eng.observe(10.0 + i as f64, 0, &[tick("cm0", true, Some(p))]);
        }
        assert!(eng.active().is_empty());
    }

    #[test]
    fn missing_point_holds_metric_rules() {
        let cfg = HealthConfig { fire_after: 1, resolve_after: 1, ..HealthConfig::default() };
        let mut eng = HealthEngine::new(cfg);
        let p = point_with(&[(Counter::ConnBackpressure, 5)], &[]);
        let ev = eng.observe(0.0, 0, &[tick("sn0", true, Some(p))]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, RuleKind::SlowReaderBackpressure);
        // no point (scrape failed): the alert neither re-fires nor resolves
        let ev = eng.observe(1.0, 0, &[tick("sn0", true, None)]);
        assert!(ev.is_empty());
        assert_eq!(eng.active().len(), 1);
    }

    #[test]
    fn lock_wait_spike_needs_interval_volume_and_fraction() {
        let cfg = HealthConfig { fire_after: 1, resolve_after: 1, ..HealthConfig::default() };
        let mut eng = HealthEngine::new(cfg);
        let busy_waiting =
            point_with(&[(Counter::LockWaitUs, 200_000), (Counter::TxnCommitted, 50)], &[]);
        // First tick: no interval yet, the rule holds regardless of values.
        let ev = eng.observe(0.0, 0, &[tick("cm0", true, Some(busy_waiting.clone()))]);
        assert!(ev.is_empty(), "no interval on the first tick");
        // Second tick, 1s interval: 200ms of lock wait = 20% > 10%, fires.
        let ev = eng.observe(1_000_000.0, 0, &[tick("cm0", true, Some(busy_waiting.clone()))]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].rule, RuleKind::LockWaitSpike);
        assert!(ev[0].detail.contains("20%"), "detail renders the fraction: {}", ev[0].detail);
        // Same waits without commit volume: the min-volume guard clears it.
        let idle_waiting =
            point_with(&[(Counter::LockWaitUs, 200_000), (Counter::TxnCommitted, 3)], &[]);
        let ev = eng.observe(2_000_000.0, 0, &[tick("cm0", true, Some(idle_waiting))]);
        assert_eq!(ev.len(), 1);
        assert!(!ev[0].firing);
        // Busy but barely waiting: stays quiet.
        let busy_clean =
            point_with(&[(Counter::LockWaitUs, 5_000), (Counter::TxnCommitted, 50)], &[]);
        let ev = eng.observe(3_000_000.0, 0, &[tick("cm0", true, Some(busy_clean))]);
        assert!(ev.is_empty());
        assert!(eng.active().is_empty());
    }

    #[test]
    fn render_is_stable() {
        let ev = HealthEvent {
            seq: 3,
            virt_us: 1500.5,
            wall_us: 999,
            rule: RuleKind::ReplicaUnavailable,
            node: "sn1".to_string(),
            firing: true,
            detail: "node not answering".to_string(),
        };
        // wall clock must not appear: it is nondeterministic outside the sim
        assert_eq!(
            ev.render(),
            "#3 t=1500us FIRING replica_unavailable node=sn1 node not answering"
        );
    }
}

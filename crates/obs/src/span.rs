//! The span model: per-transaction causality across PN, SN, and CM.
//!
//! A [`Span`] is one timed operation inside a trace — a txn phase, an RPC
//! round trip, a server dispatch, a batch flush, a GC pass. Spans carry both
//! clocks the workspace runs on: the virtual clock (`SimClock` microseconds,
//! what the cost model charges) and a wall clock anchored to the Unix epoch
//! at process start (what Perfetto renders). Parent links are maintained by
//! a thread-local current-span register, so nested [`SpanTimer`]s produce a
//! correctly-shaped tree without any caller bookkeeping, and `tell-rpc`
//! stamps the current span id into outgoing frames so server-side dispatch
//! spans on other nodes parent onto the client call that caused them.
//!
//! Retention is **tail-based**: spans are buffered per thread while their
//! transaction runs, and only promoted to the process-wide sharded ring when
//! the trace closes *interesting* — slower than `TELL_SLOW_OP_US`, aborted
//! on an LL/SC conflict, or picked by the 1-in-[`SPAN_SAMPLE_EVERY`]
//! fast-trace sample (see [`should_record`]). Server threads cannot know how
//! a trace will end, so they flush after every dispatched frame and rely on
//! the bounded drop-oldest ring as the backstop (approximate tail sampling:
//! a scrape sees all recent server spans, but only interesting client-side
//! trees).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;
use tell_common::codec::{Reader, Writer};
use tell_common::Result;

use crate::registry::{self, Counter, SHARDS};
use crate::trace;

/// What a span measured. Discriminants are the wire encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// Whole transaction, begin to completion (the root span).
    Txn = 0,
    /// Snapshot acquisition from the commit manager.
    TxnBegin = 1,
    /// Read-set fetch against storage.
    TxnRead = 2,
    /// Write-set assembly and version checks on the PN.
    TxnValidate = 3,
    /// The conditional LL/SC multi-write round trip.
    TxnInstall = 4,
    /// Commit-manager completion (`set_committed` / `set_aborted`).
    TxnCmComplete = 5,
    /// One RPC request/response round trip, client side.
    RpcClientCall = 6,
    /// One frame decoded, dispatched, and answered, server side.
    ServerDispatch = 7,
    /// One async submit-window flush (possibly many coalesced ops).
    BatchFlush = 8,
    /// One garbage-collection sweep.
    GcPass = 9,
    /// Storage-engine write application inside a server dispatch.
    StoreWrite = 10,
    /// Commit-manager state transition inside a server dispatch.
    CmApply = 11,
}

impl SpanKind {
    /// Every kind, in wire-code order.
    pub const ALL: [SpanKind; 12] = [
        SpanKind::Txn,
        SpanKind::TxnBegin,
        SpanKind::TxnRead,
        SpanKind::TxnValidate,
        SpanKind::TxnInstall,
        SpanKind::TxnCmComplete,
        SpanKind::RpcClientCall,
        SpanKind::ServerDispatch,
        SpanKind::BatchFlush,
        SpanKind::GcPass,
        SpanKind::StoreWrite,
        SpanKind::CmApply,
    ];

    /// Dotted display name (`txn.validate`, `rpc.dispatch`, …).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Txn => "txn",
            SpanKind::TxnBegin => "txn.begin",
            SpanKind::TxnRead => "txn.read",
            SpanKind::TxnValidate => "txn.validate",
            SpanKind::TxnInstall => "txn.install",
            SpanKind::TxnCmComplete => "txn.cm_complete",
            SpanKind::RpcClientCall => "rpc.client_call",
            SpanKind::ServerDispatch => "rpc.dispatch",
            SpanKind::BatchFlush => "rpc.batch_flush",
            SpanKind::GcPass => "gc.pass",
            SpanKind::StoreWrite => "store.write",
            SpanKind::CmApply => "cm.apply",
        }
    }

    /// Decode a wire code.
    pub fn from_u8(v: u8) -> Result<SpanKind> {
        SpanKind::ALL
            .get(v as usize)
            .copied()
            .ok_or_else(|| tell_common::Error::corrupt(format!("unknown span kind {v}")))
    }
}

/// How the spanned operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SpanStatus {
    /// Completed normally.
    #[default]
    Ok = 0,
    /// Aborted on an LL/SC conflict (the tail-retention trigger).
    Conflict = 1,
    /// Failed with a non-conflict error.
    Error = 2,
}

impl SpanStatus {
    fn from_u8(v: u8) -> Result<SpanStatus> {
        match v {
            0 => Ok(SpanStatus::Ok),
            1 => Ok(SpanStatus::Conflict),
            2 => Ok(SpanStatus::Error),
            _ => Err(tell_common::Error::corrupt(format!("unknown span status {v}"))),
        }
    }
}

/// The small fixed attribute set every span carries. No strings, no maps:
/// a count (records read, ops written, versions reclaimed — whatever the
/// kind measures) and a status.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SpanAttrs {
    /// Kind-specific magnitude (ops in a batch, records in a read, …).
    pub count: u32,
    /// How the operation ended.
    pub status: SpanStatus,
}

/// One finished timed operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (non-zero).
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Start on the virtual clock, microseconds (0 on server threads,
    /// which have no virtual clock).
    pub start_virt_us: f64,
    /// End on the virtual clock, microseconds.
    pub end_virt_us: f64,
    /// Start on the wall clock, microseconds since the Unix epoch.
    pub start_wall_us: u64,
    /// End on the wall clock, microseconds since the Unix epoch.
    pub end_wall_us: u64,
    /// Fixed attribute set.
    pub attrs: SpanAttrs,
}

impl Span {
    /// Wall-clock duration in microseconds (saturating).
    pub fn wall_dur_us(&self) -> u64 {
        self.end_wall_us.saturating_sub(self.start_wall_us)
    }

    /// Virtual-clock duration in microseconds.
    pub fn virt_dur_us(&self) -> f64 {
        (self.end_virt_us - self.start_virt_us).max(0.0)
    }

    /// Append the wire encoding (fixed 54 bytes).
    pub fn encode(&self, w: &mut impl Writer) {
        w.put_u64(self.trace);
        w.put_u64(self.id);
        w.put_u64(self.parent);
        w.put_u8(self.kind as u8);
        w.put_f64(self.start_virt_us);
        w.put_f64(self.end_virt_us);
        w.put_u64(self.start_wall_us);
        w.put_u64(self.end_wall_us);
        w.put_u32(self.attrs.count);
        w.put_u8(self.attrs.status as u8);
    }

    /// Decode one span from the reader.
    pub fn decode(r: &mut Reader<'_>) -> Result<Span> {
        Ok(Span {
            trace: r.u64()?,
            id: r.u64()?,
            parent: r.u64()?,
            kind: SpanKind::from_u8(r.u8()?)?,
            start_virt_us: r.f64()?,
            end_virt_us: r.f64()?,
            start_wall_us: r.u64()?,
            end_wall_us: r.u64()?,
            attrs: SpanAttrs { count: r.u32()?, status: SpanStatus::from_u8(r.u8()?)? },
        })
    }
}

// ---------------------------------------------------------------------------
// Wall clock: one `SystemTime` read at first use anchors a monotonic
// `Instant`, so every later stamp is a single `Instant::now()`.

fn wall_anchor() -> &'static (u64, Instant) {
    static ANCHOR: OnceLock<(u64, Instant)> = OnceLock::new();
    ANCHOR.get_or_init(|| {
        let epoch_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        (epoch_us, Instant::now())
    })
}

/// Microseconds since the Unix epoch, via the monotonic anchor.
pub fn wall_now_us() -> u64 {
    let (epoch_us, anchor) = wall_anchor();
    let elapsed = anchor.elapsed();
    // Split conversion instead of `as_micros`: no u128 division on the
    // per-span hot path.
    epoch_us + elapsed.as_secs() * 1_000_000 + elapsed.subsec_micros() as u64
}

// ---------------------------------------------------------------------------
// Span-id minting: threads grab blocks of sequence numbers from one global
// counter and whiten them with splitmix64, so ids are unique without a
// contended atomic per span.

const ID_BLOCK: u64 = 256;

static NEXT_ID_BLOCK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ID_RANGE: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a fresh non-zero span id.
pub fn next_span_id() -> u64 {
    let seq = ID_RANGE.with(|c| {
        let (next, end) = c.get();
        if next < end {
            c.set((next + 1, end));
            next
        } else {
            let start = NEXT_ID_BLOCK.fetch_add(ID_BLOCK, Ordering::Relaxed);
            c.set((start + 1, start + ID_BLOCK));
            start
        }
    });
    let salt = (std::process::id() as u64) << 40;
    let id = splitmix64(seq ^ salt);
    if id != 0 {
        id
    } else {
        // splitmix64 maps exactly one input to 0; perturb and force odd.
        splitmix64(seq ^ salt ^ 1) | 1
    }
}

// ---------------------------------------------------------------------------
// Span sampling: which transactions record their full span tree.

/// How often a transaction records its full span tree when no slow-op
/// budget is armed: 1 in `SPAN_SAMPLE_EVERY` per thread (the first
/// transaction on a fresh thread is always sampled, which keeps tests and
/// examples deterministic). Unsampled transactions record nothing while
/// they run; a conflict abort still leaves a synthesized root span, and
/// arming `TELL_SLOW_OP_US` switches every transaction to full recording
/// so over-budget traces retain complete phase detail.
pub const SPAN_SAMPLE_EVERY: u32 = 64;

thread_local! {
    static SPAN_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Should the transaction starting now record its full span tree? True for
/// the 1-in-[`SPAN_SAMPLE_EVERY`] per-thread sample and whenever the
/// slow-op budget is armed; always false while the registry is disabled.
/// Advances the sampling tick — call exactly once per transaction.
#[inline]
pub fn should_record() -> bool {
    if !registry::global().enabled() {
        return false;
    }
    let sampled = SPAN_TICK.with(|c| {
        let t = c.get();
        c.set(t.wrapping_add(1));
        t % SPAN_SAMPLE_EVERY == 0
    });
    sampled || crate::slowlog::budget_us().is_some()
}

// ---------------------------------------------------------------------------
// Current-span register: who the next child should parent onto.

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The span id children started on this thread will parent onto (0 = none).
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Server-dispatch flag: storage-engine and commit-manager internals only
// record their own spans when running under an RPC dispatch. The in-process
// simulation path (the hot benchmark path) skips them entirely.

thread_local! {
    static IN_SERVER: Cell<bool> = const { Cell::new(false) };
}

/// True while this thread is dispatching an RPC frame.
pub fn in_server_dispatch() -> bool {
    IN_SERVER.with(|c| c.get())
}

/// RAII marker: the scope of one server-side frame dispatch.
pub struct ServerDispatchScope {
    prev: bool,
}

impl ServerDispatchScope {
    /// Mark this thread as dispatching until the scope drops.
    pub fn enter() -> Self {
        let prev = IN_SERVER.with(|c| c.replace(true));
        ServerDispatchScope { prev }
    }
}

impl Drop for ServerDispatchScope {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_SERVER.with(|c| c.set(prev));
    }
}

// ---------------------------------------------------------------------------
// SpanTimer: the recording primitive.

/// An open span. Created at an operation's start, finished (or dropped) at
/// its end; while open, children started on this thread parent onto it.
#[must_use = "an unfinished SpanTimer records nothing"]
pub struct SpanTimer {
    trace: u64,
    id: u64,
    /// Parent recorded in the finished span.
    parent: u64,
    /// Value to restore into the current-span register on close. Usually
    /// equal to `parent`, but a server dispatch records the remote client
    /// call as parent while restoring this thread's own previous span.
    restore: u64,
    kind: SpanKind,
    start_virt_us: f64,
    start_wall_us: u64,
}

impl SpanTimer {
    /// Open a span of `kind` starting now. Returns `None` when the registry
    /// is disabled or no trace is active on this thread — both make every
    /// later call a no-op. `virt_now_us` is the caller's virtual clock
    /// (pass 0.0 on server threads, which have none).
    pub fn start(kind: SpanKind, virt_now_us: f64) -> Option<SpanTimer> {
        if !registry::global().enabled() {
            return None;
        }
        let trace = trace::current()?;
        Self::start_in_trace(trace, kind, virt_now_us)
    }

    /// Open a span in an explicit trace, parenting onto this thread's
    /// current span. Used by server dispatch, where the trace arrives on
    /// the wire rather than through the thread-local.
    pub fn start_in_trace(trace: u64, kind: SpanKind, virt_now_us: f64) -> Option<SpanTimer> {
        if !registry::global().enabled() {
            return None;
        }
        let id = next_span_id();
        let prev = CURRENT_SPAN.with(|c| c.replace(id));
        Some(SpanTimer {
            trace,
            id,
            parent: prev,
            restore: prev,
            kind,
            start_virt_us: virt_now_us,
            start_wall_us: wall_now_us(),
        })
    }

    /// As [`start_in_trace`](Self::start_in_trace), but recording `parent`
    /// explicitly (a server dispatch parenting onto the client-call id
    /// carried in the frame). The thread's previous current span is still
    /// what gets restored on close.
    pub fn start_with_parent(
        trace: u64,
        parent: u64,
        kind: SpanKind,
        virt_now_us: f64,
    ) -> Option<SpanTimer> {
        let mut t = Self::start_in_trace(trace, kind, virt_now_us)?;
        if parent != 0 {
            t.parent = parent;
        }
        Some(t)
    }

    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Close the span and buffer it on this thread's pending list. Returns
    /// the elapsed microseconds: the larger of the virtual and wall deltas,
    /// matching the phase-timer convention.
    pub fn finish(self, virt_now_us: f64, count: u32, status: SpanStatus) -> f64 {
        let end_wall = wall_now_us();
        let wall_us = end_wall.saturating_sub(self.start_wall_us) as f64;
        let virt_us = (virt_now_us - self.start_virt_us).max(0.0);
        let span = Span {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            kind: self.kind,
            start_virt_us: self.start_virt_us,
            end_virt_us: virt_now_us.max(self.start_virt_us),
            start_wall_us: self.start_wall_us,
            end_wall_us: end_wall,
            attrs: SpanAttrs { count, status },
        };
        // `self` drops here and restores the current-span register.
        push_pending(span);
        virt_us.max(wall_us)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        // Restore the register even when `finish` was skipped (an error
        // return unwound past it); otherwise later spans on this thread
        // would parent onto a dead id.
        let (id, restore) = (self.id, self.restore);
        CURRENT_SPAN.with(|c| {
            if c.get() == id {
                c.set(restore);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Pending buffer + tail-based retention.

/// Per-thread pending cap: a trace recording more open work than this is
/// pathological; overflow increments the drop counter.
const PENDING_CAP: usize = 1024;

thread_local! {
    static PENDING: RefCell<Vec<Span>> = const { RefCell::new(Vec::new()) };
    /// Mirrors `!PENDING.is_empty()`. [`trace_finished`] runs on every
    /// transaction close (usually with nothing buffered), and a `Cell` read
    /// is cheaper than a `RefCell` borrow.
    static HAS_PENDING: Cell<bool> = const { Cell::new(false) };
}

fn push_pending(span: Span) {
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        if p.len() >= PENDING_CAP {
            global_ring().dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        p.push(span);
    });
    HAS_PENDING.with(|c| c.set(true));
}

/// Close the current trace on this thread: promote its buffered spans to
/// the ring when `keep`, discard them otherwise. Call exactly once per
/// trace, after the root span finished.
pub fn trace_finished(keep: bool) {
    if !HAS_PENDING.with(|c| c.replace(false)) {
        return;
    }
    PENDING.with(|p| {
        let mut p = p.borrow_mut();
        if keep {
            let spans = std::mem::take(&mut *p);
            global_ring().push_all(spans);
        } else {
            p.clear();
        }
    });
}

/// Promote everything buffered on this thread to the ring unconditionally.
/// Server threads call this after each dispatched frame: they never learn
/// how the trace ends, so the bounded ring is their retention policy.
pub fn flush_pending_to_ring() {
    trace_finished(true);
}

/// Put one already-built span straight into the ring, bypassing the
/// pending buffer. Used for the root span synthesized when an *unsampled*
/// transaction aborts on an LL/SC conflict: nothing was recorded while it
/// ran, but the abort itself must stay visible to a scrape.
pub fn record_to_ring(span: Span) {
    if !registry::global().enabled() {
        return;
    }
    global_ring().push_all(vec![span]);
}

// ---------------------------------------------------------------------------
// The sharded bounded ring.

/// Total ring capacity across all shards.
pub const RING_CAPACITY: usize = 8192;

struct RingShard {
    spans: Mutex<VecDeque<Span>>,
}

/// A sharded, bounded, drop-oldest buffer of finished spans. Writers touch
/// one shard (their thread's registry shard); a drain walks all shards.
pub struct SpanRing {
    shards: Vec<RingShard>,
    per_shard_cap: usize,
    dropped: AtomicU64,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        SpanRing {
            shards: (0..SHARDS).map(|_| RingShard { spans: Mutex::new(VecDeque::new()) }).collect(),
            per_shard_cap: capacity.div_ceil(SHARDS),
            dropped: AtomicU64::new(0),
        }
    }

    fn push_all(&self, spans: Vec<Span>) {
        let n = spans.len() as u64;
        let shard = &self.shards[registry::shard_index()];
        let mut q = shard.spans.lock();
        for span in spans {
            if q.len() >= self.per_shard_cap {
                q.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
                registry::global_add(Counter::SpansDropped, 1);
            }
            q.push_back(span);
        }
        drop(q);
        registry::global_add(Counter::SpansRecorded, n);
    }

    /// Take every buffered span, oldest first per shard.
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.spans.lock().drain(..));
        }
        out
    }

    /// Copy every buffered span without removing anything, oldest first per
    /// shard. This is the default scrape (`Request::Spans` peek), so a
    /// monitoring poller never steals the traces a one-shot exporter like
    /// `tell_trace` is about to drain.
    pub fn peek(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.spans.lock().iter().cloned());
        }
        out
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.spans.lock().len()).sum()
    }

    /// True when no span is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted (ring overflow) or refused (pending overflow) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-wide span ring `Request::Spans` scrapes.
pub fn global_ring() -> &'static SpanRing {
    static RING: OnceLock<SpanRing> = OnceLock::new();
    RING.get_or_init(|| SpanRing::new(RING_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_nonzero_and_distinct() {
        let mut ids: Vec<u64> = (0..2000).map(|_| next_span_id()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
    }

    #[test]
    fn span_encoding_round_trips() {
        for kind in SpanKind::ALL {
            let span = Span {
                trace: 0xdead_beef,
                id: 42,
                parent: 7,
                kind,
                start_virt_us: 1.5,
                end_virt_us: 9.25,
                start_wall_us: 1_000_000,
                end_wall_us: 1_000_040,
                attrs: SpanAttrs { count: 3, status: SpanStatus::Conflict },
            };
            let mut buf = Vec::new();
            span.encode(&mut buf);
            let mut r = Reader::new(&buf);
            let back = Span::decode(&mut r).unwrap();
            assert!(r.is_exhausted());
            assert_eq!(back, span);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        // capacity is split across SHARDS and push_all targets one shard,
        // so give each shard room for both spans
        let ring = SpanRing::new(SHARDS * 2);
        let span = Span {
            trace: 9,
            id: 1,
            parent: 0,
            kind: SpanKind::Txn,
            start_virt_us: 0.0,
            end_virt_us: 1.0,
            start_wall_us: 0,
            end_wall_us: 1,
            attrs: SpanAttrs::default(),
        };
        ring.push_all(vec![span.clone(), span.clone()]);
        assert_eq!(ring.peek().len(), 2);
        assert_eq!(ring.peek().len(), 2, "peek must not remove spans");
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.peek().is_empty());
    }

    #[test]
    fn unknown_kind_and_status_are_rejected() {
        let span = Span {
            trace: 1,
            id: 2,
            parent: 0,
            kind: SpanKind::Txn,
            start_virt_us: 0.0,
            end_virt_us: 0.0,
            start_wall_us: 0,
            end_wall_us: 0,
            attrs: SpanAttrs::default(),
        };
        let mut buf = Vec::new();
        span.encode(&mut buf);
        let mut bad_kind = buf.clone();
        bad_kind[24] = 0xEE;
        assert!(Span::decode(&mut Reader::new(&bad_kind)).is_err());
        let mut bad_status = buf.clone();
        *bad_status.last_mut().unwrap() = 0xEE;
        assert!(Span::decode(&mut Reader::new(&bad_status)).is_err());
    }

    #[test]
    fn timers_nest_and_parent_correctly() {
        // Thread-isolated: CURRENT/PENDING are thread-locals, and the kept
        // spans are filtered by trace id before assertions.
        let trace = trace::next_trace_id();
        std::thread::spawn(move || {
            let _guard = trace::TraceGuard::enter(trace);
            let root = SpanTimer::start(SpanKind::Txn, 0.0).unwrap();
            let root_id = root.id();
            assert_eq!(current_span(), root_id);
            let child = SpanTimer::start(SpanKind::TxnRead, 0.0).unwrap();
            let child_id = child.id();
            assert_eq!(current_span(), child_id);
            let grandchild = SpanTimer::start(SpanKind::RpcClientCall, 0.0).unwrap();
            grandchild.finish(0.0, 1, SpanStatus::Ok);
            assert_eq!(current_span(), child_id);
            child.finish(0.0, 2, SpanStatus::Ok);
            assert_eq!(current_span(), root_id);
            root.finish(0.0, 0, SpanStatus::Ok);
            assert_eq!(current_span(), 0);
            trace_finished(true);
            (root_id, child_id)
        })
        .join()
        .unwrap();
        let spans: Vec<Span> =
            global_ring().drain().into_iter().filter(|s| s.trace == trace).collect();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.kind == SpanKind::Txn).unwrap();
        let child = spans.iter().find(|s| s.kind == SpanKind::TxnRead).unwrap();
        let grand = spans.iter().find(|s| s.kind == SpanKind::RpcClientCall).unwrap();
        assert_eq!(root.parent, 0);
        assert_eq!(child.parent, root.id);
        assert_eq!(grand.parent, child.id);
    }

    #[test]
    fn dropped_timer_restores_parent_register() {
        let trace = trace::next_trace_id();
        std::thread::spawn(move || {
            let _guard = trace::TraceGuard::enter(trace);
            let root = SpanTimer::start(SpanKind::Txn, 0.0).unwrap();
            let root_id = root.id();
            {
                let _child = SpanTimer::start(SpanKind::TxnValidate, 0.0).unwrap();
                // dropped without finish — the error path
            }
            assert_eq!(current_span(), root_id);
            root.finish(0.0, 0, SpanStatus::Error);
            trace_finished(false); // dropped trace leaves no spans behind
        })
        .join()
        .unwrap();
        assert!(global_ring().drain().iter().all(|s| s.trace != trace));
    }

    #[test]
    fn disabled_registry_records_no_spans() {
        let trace = trace::next_trace_id();
        std::thread::spawn(move || {
            let _guard = trace::TraceGuard::enter(trace);
            registry::global().set_enabled(false);
            let t = SpanTimer::start(SpanKind::Txn, 0.0);
            registry::global().set_enabled(true);
            assert!(t.is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn no_trace_means_no_span() {
        std::thread::spawn(|| {
            assert!(trace::current().is_none());
            assert!(SpanTimer::start(SpanKind::GcPass, 0.0).is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let ring = SpanRing::new(SHARDS * 4); // 4 per shard
        let mk = |i: u64| Span {
            trace: 9,
            id: i,
            parent: 0,
            kind: SpanKind::GcPass,
            start_virt_us: 0.0,
            end_virt_us: 0.0,
            start_wall_us: 0,
            end_wall_us: 0,
            attrs: SpanAttrs::default(),
        };
        ring.push_all((1..=6).map(mk).collect());
        assert_eq!(ring.dropped(), 2);
        let left = ring.drain();
        assert_eq!(left.len(), 4);
        assert_eq!(left.first().unwrap().id, 3); // 1 and 2 were evicted
    }

    #[test]
    fn server_dispatch_scope_nests() {
        assert!(!in_server_dispatch());
        {
            let _outer = ServerDispatchScope::enter();
            assert!(in_server_dispatch());
            {
                let _inner = ServerDispatchScope::enter();
                assert!(in_server_dispatch());
            }
            assert!(in_server_dispatch());
        }
        assert!(!in_server_dispatch());
    }
}

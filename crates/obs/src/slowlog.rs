//! Threshold-based slow-operation logging.
//!
//! When a named operation exceeds the configured budget, one structured
//! JSON line is emitted (stderr by default) carrying the operation name,
//! the elapsed time, the budget, and the originating trace id — enough to
//! grep a storage node's log for the transaction that stalled. The budget
//! starts from the `TELL_SLOW_OP_US` environment variable and can be
//! changed at runtime; unset means slow-op logging is off.
//!
//! Emission is **rate limited per thread** by a token bucket
//! ([`set_rate_limit`]), so a pathological workload — every operation over
//! a tight budget — cannot turn the slow-op log into an I/O flood that
//! perturbs the very latencies it reports. Suppressed lines still count
//! the operation as slow (`Counter::SlowOps`, the `check*` return value)
//! and are tallied in `Counter::SlowlogSuppressed`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use crate::registry::Counter;
use crate::trace;

// f64 bits of the budget; 0 (== 0.0) means disabled.
static BUDGET_BITS: AtomicU64 = AtomicU64::new(0);
static ENV_INIT: Once = Once::new();

enum Sink {
    Stderr,
    Capture(Arc<Mutex<Vec<String>>>),
}

static SINK: Mutex<Sink> = Mutex::new(Sink::Stderr);

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("TELL_SLOW_OP_US") {
            if let Ok(us) = v.trim().parse::<f64>() {
                if us > 0.0 {
                    BUDGET_BITS.store(us.to_bits(), Ordering::Relaxed);
                }
            }
        }
    });
}

/// The active budget in microseconds, or `None` when logging is off.
pub fn budget_us() -> Option<f64> {
    init_from_env();
    let bits = BUDGET_BITS.load(Ordering::Relaxed);
    if bits == 0 {
        None
    } else {
        Some(f64::from_bits(bits))
    }
}

/// Set (or with `None` / non-positive, clear) the slow-op budget.
pub fn set_budget_us(us: Option<f64>) {
    init_from_env(); // settle env handling so a later read cannot overwrite
    let bits = match us {
        Some(v) if v > 0.0 => v.to_bits(),
        _ => 0,
    };
    BUDGET_BITS.store(bits, Ordering::Relaxed);
}

/// Redirect slow-op lines into an in-memory buffer (for tests) and return
/// it. [`log_to_stderr`] restores the default.
pub fn capture() -> Arc<Mutex<Vec<String>>> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    *SINK.lock() = Sink::Capture(buf.clone());
    buf
}

/// Route slow-op lines back to stderr (the default).
pub fn log_to_stderr() {
    *SINK.lock() = Sink::Stderr;
}

/// Default token-bucket refill rate: slow-op lines per second, per thread.
pub const DEFAULT_LINES_PER_SEC: f64 = 32.0;
/// Default token-bucket burst: lines a quiet thread may emit back to back.
pub const DEFAULT_BURST: f64 = 64.0;

/// `Some((per_sec, burst))`, or `None` for unlimited. Read only on the
/// already-slow emission path, so a mutex is fine.
static LIMIT: Mutex<Option<(f64, f64)>> = Mutex::new(Some((DEFAULT_LINES_PER_SEC, DEFAULT_BURST)));

thread_local! {
    /// This thread's bucket: (tokens, last refill). `None` until first use.
    static BUCKET: Cell<Option<(f64, Instant)>> = const { Cell::new(None) };
}

/// Set the per-thread emission rate limit: `Some((lines_per_sec, burst))`,
/// or `None` to emit every slow-op line. The default is
/// ([`DEFAULT_LINES_PER_SEC`], [`DEFAULT_BURST`]).
pub fn set_rate_limit(limit: Option<(f64, f64)>) {
    *LIMIT.lock() = limit.map(|(r, b)| (r.max(0.0), b.max(1.0)));
}

/// Take one emission token, refilling by elapsed wall time. Returns `false`
/// when this thread is over its budget and the line must be suppressed.
fn try_take_token() -> bool {
    let Some((per_sec, burst)) = *LIMIT.lock() else {
        return true;
    };
    BUCKET.with(|cell| {
        let now = Instant::now();
        let tokens = match cell.get() {
            // clamp to the current burst first, so shrinking the limit at
            // runtime takes effect immediately
            Some((t, last)) => {
                (t.min(burst) + now.duration_since(last).as_secs_f64() * per_sec).min(burst)
            }
            None => burst,
        };
        if tokens >= 1.0 {
            cell.set(Some((tokens - 1.0, now)));
            true
        } else {
            cell.set(Some((tokens, now)));
            false
        }
    })
}

/// Check one completed operation against the budget. Over budget: emit a
/// JSON line carrying this thread's current trace id, bump
/// [`Counter::SlowOps`], and return `true`.
pub fn check(op: &str, elapsed_us: f64) -> bool {
    check_closing(op, elapsed_us, None, &[])
}

/// [`check`] for an operation that closes a span: over budget, the line
/// additionally carries the closing span's id and a per-phase duration
/// breakdown (`"phases":{"txn.read":12.5,…}`, omitted when empty) so a slow
/// transaction is attributable without a span scrape.
pub fn check_closing(
    op: &str,
    elapsed_us: f64,
    span: Option<u64>,
    phases: &[(&'static str, f64)],
) -> bool {
    let Some(budget) = budget_us() else {
        return false;
    };
    if elapsed_us <= budget {
        return false;
    }
    // The operation is slow regardless of whether the line makes it out.
    crate::registry::global().incr(Counter::SlowOps);
    if !try_take_token() {
        crate::registry::global().incr(Counter::SlowlogSuppressed);
        return true;
    }
    let ts_us =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
    let trace = match trace::current() {
        Some(t) => format!("\"{}\"", trace::fmt_trace(t)),
        None => "null".to_string(),
    };
    let span = match span {
        Some(s) => format!("\"{s:016x}\""),
        None => "null".to_string(),
    };
    let mut breakdown = String::new();
    if !phases.is_empty() {
        breakdown.push_str(",\"phases\":{");
        for (i, (name, us)) in phases.iter().enumerate() {
            if i > 0 {
                breakdown.push(',');
            }
            let us = if us.is_finite() { *us } else { 0.0 };
            let _ = std::fmt::Write::write_fmt(&mut breakdown, format_args!("\"{name}\":{us:?}"));
        }
        breakdown.push('}');
    }
    // While the profiler runs, attach the top frames its sampler observed
    // on this thread during the op's window — ties the slow-op line to the
    // flamegraph with zero cost when the profiler is off (one relaxed
    // load inside `top_frames_in_window`).
    let frames = crate::prof::top_frames_in_window(elapsed_us, 3);
    if !frames.is_empty() {
        breakdown.push_str(",\"frames\":[");
        for (i, (name, _)) in frames.iter().enumerate() {
            if i > 0 {
                breakdown.push(',');
            }
            let _ = std::fmt::Write::write_fmt(&mut breakdown, format_args!("\"{name}\""));
        }
        breakdown.push(']');
    }
    let line = format!(
        "{{\"kind\":\"slow_op\",\"op\":\"{op}\",\"elapsed_us\":{elapsed_us:?},\
         \"budget_us\":{budget:?},\"trace\":{trace},\"span\":{span}{breakdown},\"ts_us\":{ts_us}}}"
    );
    match &*SINK.lock() {
        Sink::Stderr => eprintln!("{line}"),
        Sink::Capture(buf) => buf.lock().push(line),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: budget, sink, and trace field
    // are process-global state, so parallel tests would race.
    #[test]
    fn slow_ops_are_logged_with_trace_and_budget_is_respected() {
        let buf = capture();
        set_budget_us(Some(100.0));

        // Under budget: nothing logged.
        assert!(!check("txn.install", 50.0));
        assert!(buf.lock().is_empty());

        // Over budget with a trace attached.
        let _g = trace::TraceGuard::enter(0xabcd);
        assert!(check("txn.install", 250.0));
        {
            let lines = buf.lock();
            assert_eq!(lines.len(), 1);
            assert!(lines[0].contains("\"op\":\"txn.install\""));
            assert!(lines[0].contains("\"elapsed_us\":250.0"));
            assert!(lines[0].contains("\"trace\":\"000000000000abcd\""));
        }
        drop(_g);

        // Without a trace the field is null; ditto the span on plain check.
        assert!(check("net.exchange", 300.0));
        assert!(buf.lock()[1].contains("\"trace\":null"));
        assert!(buf.lock()[1].contains("\"span\":null"));
        assert!(!buf.lock()[1].contains("\"phases\""));

        // A closing check carries the span id and the phase breakdown.
        assert!(check_closing(
            "txn.total",
            400.0,
            Some(0xfeed),
            &[("txn.read", 120.5), ("txn.install", 33.0)],
        ));
        {
            let lines = buf.lock();
            let last = lines.last().unwrap();
            assert!(last.contains("\"span\":\"000000000000feed\""));
            assert!(last.contains("\"phases\":{\"txn.read\":120.5,\"txn.install\":33.0}"));
        }

        // Disabled: nothing logged regardless of elapsed time.
        set_budget_us(None);
        assert!(!check("txn.install", 1e9));
        assert_eq!(buf.lock().len(), 3);

        // Rate limiting: zero refill + burst of 2 means the third
        // consecutive slow op is suppressed — still reported slow and
        // counted, just not logged.
        set_budget_us(Some(100.0));
        set_rate_limit(Some((0.0, 2.0)));
        let suppressed_before = crate::global().counter(Counter::SlowlogSuppressed);
        let len_before = buf.lock().len();
        assert!(check("op.limited", 200.0));
        assert!(check("op.limited", 200.0));
        assert!(check("op.limited", 200.0));
        assert_eq!(buf.lock().len(), len_before + 2);
        assert_eq!(crate::global().counter(Counter::SlowlogSuppressed), suppressed_before + 1);
        // Unlimited: every line goes out again.
        set_rate_limit(None);
        assert!(check("op.unlimited", 200.0));
        assert_eq!(buf.lock().len(), len_before + 3);

        set_rate_limit(Some((DEFAULT_LINES_PER_SEC, DEFAULT_BURST)));
        set_budget_us(None);
        log_to_stderr();
    }
}

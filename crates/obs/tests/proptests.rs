//! Property tests for the snapshot JSON renderer — any snapshot must
//! round-trip bit-for-bit through `to_json` / `from_json` — and for the
//! telemetry time-series ring: `since` must match a reference model under
//! arbitrary scrape cursors and ring wrap, and rollup deltas must tile the
//! counter totals exactly. The profiler's collapsed-stack encoder gets the
//! same treatment: folded text must round-trip, the cardinality bound must
//! hold, and no sample may vanish — every add lands in a stack or in the
//! drop counter.

use std::sync::Arc;

use proptest::prelude::*;
use tell_common::Summary;
use tell_obs::{
    CollapsedTable, Counter, FrameKind, MetricsSnapshot, Registry, Rollup, TsPoint, TsRing,
};

fn metric_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,30}"
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Non-negative finite values, the domain Histogram::summary produces.
    prop_oneof![
        Just(0.0),
        0.0..1e12f64,
        (0u64..u64::MAX)
            .prop_map(|b| f64::from_bits(b).abs())
            .prop_filter("finite", |v| v.is_finite()),
    ]
}

fn summary() -> impl Strategy<Value = Summary> {
    (
        (any::<u64>(), finite_f64(), finite_f64(), finite_f64()),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(|((count, min, max, mean), (stddev, p50, p99, p999))| Summary {
            count,
            min,
            max,
            mean,
            stddev,
            p50,
            p99,
            p999,
        })
}

fn positive_finite_f64() -> impl Strategy<Value = f64> {
    // Bucket upper bounds: strictly positive finite values.
    finite_f64().prop_map(|v| if v > 0.0 { v } else { 1.0 })
}

fn snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec((metric_name(), any::<u64>()), 0..8),
        proptest::collection::vec((metric_name(), any::<u64>()), 0..8),
        proptest::collection::vec((metric_name(), summary()), 0..8),
        proptest::collection::vec(
            (metric_name(), proptest::collection::vec((positive_finite_f64(), any::<u64>()), 1..6)),
            0..4,
        ),
    )
        .prop_map(|(counters, gauges, histograms, buckets)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
            buckets,
        })
}

proptest! {
    #[test]
    fn snapshot_round_trips_through_json(snap in snapshot()) {
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("rendered JSON must parse");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,200}") {
        let _ = MetricsSnapshot::from_json(&text);
    }
}

// ---------------------------------------------------------------------------
// Time-series ring: `since` vs a reference model.

#[derive(Debug, Clone)]
enum RingOp {
    Push,
    Since { cursor: u64, max: usize },
}

fn ring_ops() -> impl Strategy<Value = Vec<RingOp>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(RingOp::Push),
            1 => (0u64..60, 1usize..12)
                .prop_map(|(cursor, max)| RingOp::Since { cursor, max }),
        ],
        1..80,
    )
}

proptest! {
    /// The ring's cursor reads must agree with a trivially correct model:
    /// seqs are 1..=pushed, only the newest `capacity` survive the wrap, a
    /// scrape returns the kept seqs above the cursor (bounded by `max`),
    /// and a cursor ahead of the ring resets to the start.
    #[test]
    fn ring_since_matches_reference_model(
        capacity in 1usize..6,
        ops in ring_ops(),
    ) {
        let ring = TsRing::new(capacity);
        let mut pushed: u64 = 0;
        for op in ops {
            match op {
                RingOp::Push => {
                    pushed += 1;
                    prop_assert_eq!(ring.push(TsPoint::default()), pushed);
                }
                RingOp::Since { cursor, max } => {
                    let (points, next) = ring.since(cursor, max);
                    let latest = pushed;
                    let cur = if cursor > latest { 0 } else { cursor };
                    let oldest_kept = pushed.saturating_sub(capacity as u64) + 1;
                    let expect: Vec<u64> =
                        (oldest_kept.max(cur + 1)..=latest).take(max).collect();
                    let got: Vec<u64> = points.iter().map(|p| p.seq).collect();
                    prop_assert_eq!(&got, &expect);
                    prop_assert_eq!(next, expect.last().copied().unwrap_or(latest));
                }
            }
        }
    }

    /// Rollup deltas tile the counter totals: each point carries exactly
    /// what was added in its interval, and (with a ring big enough not to
    /// evict) the deltas sum to the registry's final total.
    #[test]
    fn rollup_deltas_match_reference_model(
        intervals in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..4),
            1..16,
        ),
    ) {
        let reg = Registry::new();
        let ring = Arc::new(TsRing::new(64));
        let mut rollup = Rollup::new(Arc::clone(&ring));
        for adds in &intervals {
            let mut sum = 0u64;
            for n in adds {
                reg.add(Counter::TxnCommitted, *n);
                sum += n;
            }
            let p = rollup.roll(&reg, 0.0, 0);
            prop_assert_eq!(p.counter(Counter::TxnCommitted), sum);
        }
        let (points, next) = ring.since(0, 1024);
        prop_assert_eq!(points.len(), intervals.len());
        prop_assert_eq!(next, intervals.len() as u64);
        let total: u64 = points.iter().map(|p| p.counter(Counter::TxnCommitted)).sum();
        prop_assert_eq!(total, reg.counter(Counter::TxnCommitted));
    }
}

// ---------------------------------------------------------------------------
// Profiler collapsed-stack encoder.

/// A logical stack: 1..=MAX_DEPTH frame codes, each a valid [`FrameKind`].
fn stack() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..FrameKind::ALL.len() as u8, 1..16)
}

fn adds() -> impl Strategy<Value = Vec<(Vec<u8>, u64)>> {
    proptest::collection::vec((stack(), 1u64..10_000), 0..64)
}

proptest! {
    /// Folded text is a faithful encoding: parsing what `to_folded`
    /// rendered reproduces the table exactly (same stacks, same counts,
    /// and — with an unbounded parse — nothing dropped).
    #[test]
    fn folded_encoding_round_trips(adds in adds()) {
        let mut table = CollapsedTable::new(usize::MAX);
        for (key, n) in &adds {
            table.add(key, *n);
        }
        let folded = table.to_folded();
        let back = CollapsedTable::parse_folded(&folded, usize::MAX)
            .expect("rendered folded text must parse");
        prop_assert_eq!(back.rows(), table.rows());
        prop_assert_eq!(back.total(), table.total());
        prop_assert_eq!(back.dropped(), 0);
    }

    /// The cardinality bound holds and the drop counter accounts exactly
    /// for what the bound rejected: distinct stacks never exceed
    /// `max_stacks`, and recorded + dropped equals the sum of all adds.
    #[test]
    fn cardinality_bound_and_drop_accounting(
        max_stacks in 1usize..8,
        adds in adds(),
    ) {
        let mut table = CollapsedTable::new(max_stacks);
        let mut total_added = 0u64;
        for (key, n) in &adds {
            table.add(key, *n);
            total_added += n;
        }
        prop_assert!(table.len() <= max_stacks);
        prop_assert_eq!(table.total() + table.dropped(), total_added);
        // A stack admitted once keeps accepting samples: re-adding every
        // recorded stack must not increase the drop counter.
        let dropped_before = table.dropped();
        let keys: Vec<Vec<u8>> = table
            .rows()
            .iter()
            .map(|(names, _)| {
                names
                    .iter()
                    .map(|n| FrameKind::from_name(n).expect("rendered name decodes") as u8)
                    .collect()
            })
            .collect();
        for key in &keys {
            table.add(key, 1);
        }
        prop_assert_eq!(table.dropped(), dropped_before);
    }

    /// Merging preserves every sample: totals and drops are additive, and
    /// merge order cannot change the rendered output when capacity is
    /// unbounded.
    #[test]
    fn merge_is_lossless_and_order_independent(a in adds(), b in adds()) {
        let build = |adds: &[(Vec<u8>, u64)]| {
            let mut t = CollapsedTable::new(usize::MAX);
            for (key, n) in adds {
                t.add(key, *n);
            }
            t
        };
        let (ta, tb) = (build(&a), build(&b));
        let mut ab = ta.clone();
        ab.merge(&tb);
        let mut ba = tb.clone();
        ba.merge(&ta);
        prop_assert_eq!(ab.to_folded(), ba.to_folded());
        prop_assert_eq!(ab.total(), ta.total() + tb.total());
        prop_assert_eq!(ab.dropped(), 0);
    }

    /// The parser never panics, and whatever it accepts re-renders to the
    /// same parse (idempotent normalization).
    #[test]
    fn folded_parser_never_panics(text in "\\PC{0,200}") {
        if let Ok(table) = CollapsedTable::parse_folded(&text, 32) {
            let again = CollapsedTable::parse_folded(&table.to_folded(), 32)
                .expect("normalized folded text must parse");
            prop_assert_eq!(again.rows(), table.rows());
        }
    }
}

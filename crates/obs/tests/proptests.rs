//! Property tests for the snapshot JSON renderer: any snapshot must
//! round-trip bit-for-bit through `to_json` / `from_json`.

use proptest::prelude::*;
use tell_common::Summary;
use tell_obs::MetricsSnapshot;

fn metric_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,30}"
}

fn finite_f64() -> impl Strategy<Value = f64> {
    // Non-negative finite values, the domain Histogram::summary produces.
    prop_oneof![
        Just(0.0),
        0.0..1e12f64,
        (0u64..u64::MAX)
            .prop_map(|b| f64::from_bits(b).abs())
            .prop_filter("finite", |v| v.is_finite()),
    ]
}

fn summary() -> impl Strategy<Value = Summary> {
    (
        (any::<u64>(), finite_f64(), finite_f64(), finite_f64()),
        (finite_f64(), finite_f64(), finite_f64(), finite_f64()),
    )
        .prop_map(|((count, min, max, mean), (stddev, p50, p99, p999))| Summary {
            count,
            min,
            max,
            mean,
            stddev,
            p50,
            p99,
            p999,
        })
}

fn snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        proptest::collection::vec((metric_name(), any::<u64>()), 0..8),
        proptest::collection::vec((metric_name(), any::<u64>()), 0..8),
        proptest::collection::vec((metric_name(), summary()), 0..8),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
}

proptest! {
    #[test]
    fn snapshot_round_trips_through_json(snap in snapshot()) {
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("rendered JSON must parse");
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(text in "\\PC{0,200}") {
        let _ = MetricsSnapshot::from_json(&text);
    }
}

//! Segment-slot allocation.
//!
//! Segment files are named by *slot* (`seg-<slot>.log`), and slots are
//! recycled: when a checkpoint subsumes a sealed segment the file is
//! deleted and its slot returns to the free pool, so a long-lived node
//! cycles through a bounded set of file names instead of growing an
//! unbounded directory. The allocator is a bitmap over slot numbers —
//! `alloc` returns the lowest free slot, which keeps the directory compact
//! and makes recovery listings deterministic.

use tell_common::BitSet;

/// Bitmap allocator over segment slots.
#[derive(Debug, Default)]
pub struct SlotAllocator {
    used: BitSet,
}

impl SlotAllocator {
    /// Empty allocator: every slot free.
    pub fn new() -> Self {
        SlotAllocator { used: BitSet::new() }
    }

    /// Claim the lowest free slot.
    pub fn alloc(&mut self) -> u32 {
        let slot = self.used.first_zero();
        self.used.set(slot);
        slot as u32
    }

    /// Mark `slot` used (recovery replays the directory listing into the
    /// bitmap before any new segment is created).
    pub fn reserve(&mut self, slot: u32) {
        self.used.set(slot as usize);
    }

    /// Return `slot` to the free pool. Returns whether it was allocated.
    pub fn free(&mut self, slot: u32) -> bool {
        self.used.clear(slot as usize)
    }

    /// Number of slots currently allocated.
    pub fn in_use(&self) -> usize {
        self.used.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_lowest_free_slot() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.alloc(), 0);
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.alloc(), 2);
        assert!(a.free(1));
        assert!(!a.free(1), "double free is reported");
        assert_eq!(a.alloc(), 1, "recycled slot is reused first");
        assert_eq!(a.alloc(), 3);
        assert_eq!(a.in_use(), 4);
    }

    #[test]
    fn reserve_skips_recovered_slots() {
        let mut a = SlotAllocator::new();
        a.reserve(0);
        a.reserve(2);
        assert_eq!(a.alloc(), 1);
        assert_eq!(a.alloc(), 3);
    }
}

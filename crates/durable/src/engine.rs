//! The per-node log-structured engine.
//!
//! One [`DurableNode`] owns one data directory:
//!
//! ```text
//! sn-3/
//!   MANIFEST          atomic commit point (checkpoint id + covered seg_seq)
//!   ckpt-7.dat        current checkpoint (live entries + watermark trailer)
//!   seg-0.log         segment files, named by recycled *slot*; replay
//!   seg-1.log         order comes from the seg_seq in each header
//! ```
//!
//! Writes append CRC-framed records to the active segment; the in-RAM index
//! maps `(pid, key)` to the value's on-disk location, and the LRU object
//! cache holds hot value bytes. Rotation seals a full segment; every
//! `checkpoint_every` records the engine rewrites the live set into a fresh
//! checkpoint, commits it via the manifest, and recycles subsumed segment
//! slots. Recovery loads the manifest's checkpoint and replays strictly
//! newer segments, truncating a torn tail in the newest one.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use tell_common::{Error, Result, SnId};
use tell_obs::{add, incr, Counter};
use tell_store::durability::{
    DurabilityProvider, NodeDurability, RecoveredNode, RecoveredPartition,
};
use tell_store::Cell;

use crate::alloc::SlotAllocator;
use crate::cache::ObjectCache;
use crate::manifest::{sync_dir, Manifest, NO_CHECKPOINT};
use crate::segment::{
    decode_header, encode_header, frame_into, io_err, read_frames, write_all, FrameEnd, LogRecord,
    CKPT_MAGIC, FRAME_PREFIX, HEADER_LEN, SEG_MAGIC,
};

/// When to fsync the active segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record: `record()` returning means durable.
    Always,
    /// fsync every N records: bounded loss window, much cheaper.
    Batch(u64),
    /// Never fsync (the OS flushes eventually): crash durability is
    /// whatever the page cache survived — for benches and tests only.
    Never,
}

impl FsyncPolicy {
    /// Parse `always`, `never`, or `batch:<n>` (CLI flag format).
    pub fn parse(s: &str) -> std::result::Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("batch:").and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => Ok(FsyncPolicy::Batch(n)),
                _ => Err(format!("bad fsync policy {other:?} (always | never | batch:<n>)")),
            },
        }
    }
}

/// Tuning knobs for one node's engine.
#[derive(Clone, Debug)]
pub struct DurableNodeConfig {
    /// Rotate the active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// fsync policy for the active segment.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many records (0 = only explicit checkpoints).
    pub checkpoint_every: u64,
    /// Object-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Trim the cache from a background thread instead of only inline.
    pub background_eviction: bool,
}

impl Default for DurableNodeConfig {
    fn default() -> Self {
        DurableNodeConfig {
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 4096,
            cache_bytes: 32 << 20,
            background_eviction: false,
        }
    }
}

/// Which file a value lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FileKey {
    Seg(u32),
    Ckpt(u64),
}

#[derive(Clone, Copy, Debug)]
struct ValueLoc {
    file: FileKey,
    off: u64,
    len: u32,
}

#[derive(Clone, Debug)]
struct IndexEntry {
    token: u64,
    loc: ValueLoc,
}

#[derive(Debug, Default)]
struct PartitionIndex {
    map: std::collections::BTreeMap<Bytes, IndexEntry>,
    applied_seq: u64,
    max_token: u64,
}

struct ActiveSegment {
    file: File,
    slot: u32,
    seg_seq: u64,
    len: u64,
}

struct Inner {
    allocator: SlotAllocator,
    active: ActiveSegment,
    /// Sealed segments awaiting checkpoint subsumption: `(slot, seg_seq)`.
    sealed: Vec<(u32, u64)>,
    next_seg_seq: u64,
    manifest: Manifest,
    index: HashMap<u32, PartitionIndex>,
    records_since_ckpt: u64,
    appends_since_sync: u64,
}

/// A log-structured persistence engine for one storage node.
pub struct DurableNode {
    dir: PathBuf,
    config: DurableNodeConfig,
    cache: ObjectCache,
    inner: Mutex<Inner>,
    evictor_stop: Arc<AtomicBool>,
    evictor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for DurableNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableNode").field("dir", &self.dir).finish_non_exhaustive()
    }
}

fn seg_path(dir: &Path, slot: u32) -> PathBuf {
    dir.join(format!("seg-{slot}.log"))
}

fn ckpt_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("ckpt-{id}.dat"))
}

fn parse_seg_name(name: &str) -> Option<u32> {
    name.strip_prefix("seg-")?.strip_suffix(".log")?.parse().ok()
}

fn parse_ckpt_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".dat")?.parse().ok()
}

fn read_value_at(dir: &Path, loc: &ValueLoc) -> Result<Bytes> {
    let path = match loc.file {
        FileKey::Seg(slot) => seg_path(dir, slot),
        FileKey::Ckpt(id) => ckpt_path(dir, id),
    };
    let mut file = File::open(&path).map_err(|e| io_err("open value file", &e))?;
    file.seek(SeekFrom::Start(loc.off)).map_err(|e| io_err("seek value", &e))?;
    let mut buf = vec![0u8; loc.len as usize];
    std::io::Read::read_exact(&mut file, &mut buf).map_err(|e| io_err("read value", &e))?;
    Ok(Bytes::from(buf))
}

fn open_fresh_segment(dir: &Path, slot: u32, seg_seq: u64) -> Result<ActiveSegment> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(seg_path(dir, slot))
        .map_err(|e| io_err("create segment", &e))?;
    write_all(&mut file, "segment header", &encode_header(SEG_MAGIC, seg_seq))?;
    file.sync_all().map_err(|e| io_err("sync segment header", &e))?;
    sync_dir(dir)?;
    Ok(ActiveSegment { file, slot, seg_seq, len: HEADER_LEN })
}

impl DurableNode {
    /// Open (or create) the engine at `dir`, replaying on-disk state.
    /// Returns the live engine plus the recovered partition images.
    pub fn open(
        dir: PathBuf,
        config: DurableNodeConfig,
    ) -> Result<(Arc<DurableNode>, Vec<RecoveredPartition>)> {
        fs::create_dir_all(&dir).map_err(|e| io_err("create data dir", &e))?;
        let _ = fs::remove_file(dir.join("MANIFEST.tmp"));
        let manifest = Manifest::load(&dir)?;

        // Inventory the directory.
        let mut segs: Vec<(u64, u32)> = Vec::new(); // (seg_seq, slot)
        let mut ckpts: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("list data dir", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list data dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(slot) = parse_seg_name(name) {
                let path = seg_path(&dir, slot);
                let mut header = [0u8; HEADER_LEN as usize];
                let ok = File::open(&path)
                    .ok()
                    .and_then(|mut f| std::io::Read::read_exact(&mut f, &mut header).ok())
                    .and_then(|_| decode_header(&header, SEG_MAGIC).ok());
                match ok {
                    // An unreadable header is a torn creation only while the
                    // file is at most header-sized: the header is synced
                    // before the segment goes active, so no acked record can
                    // follow a header that never fully reached disk. A
                    // longer file holds framed records — an unreadable
                    // header there is real corruption (e.g. a bit flip in an
                    // old synced segment) and deleting it would silently
                    // drop acked writes.
                    None => {
                        let len =
                            fs::metadata(&path).map_err(|e| io_err("stat segment", &e))?.len();
                        if len > HEADER_LEN {
                            return Err(Error::corrupt(format!(
                                "segment {name} has an unreadable header but {len} bytes of data"
                            )));
                        }
                        fs::remove_file(&path).map_err(|e| io_err("drop torn segment", &e))?;
                        incr(Counter::DurableTornTailsTruncated);
                    }
                    Some(seg_seq) if seg_seq <= manifest.covered_seg_seq => {
                        // Subsumed by the checkpoint; a crash beat the cleanup.
                        fs::remove_file(&path).map_err(|e| io_err("drop covered segment", &e))?;
                    }
                    Some(seg_seq) => segs.push((seg_seq, slot)),
                }
            } else if let Some(id) = parse_ckpt_name(name) {
                if manifest.checkpoint_id == NO_CHECKPOINT || id != manifest.checkpoint_id {
                    fs::remove_file(ckpt_path(&dir, id))
                        .map_err(|e| io_err("drop stale checkpoint", &e))?;
                } else {
                    ckpts.push(id);
                }
            }
        }
        segs.sort_unstable();

        let mut index: HashMap<u32, PartitionIndex> = HashMap::new();
        let mut recovered_records = 0u64;

        // Load the checkpoint the manifest points at.
        if manifest.checkpoint_id != NO_CHECKPOINT {
            if ckpts.is_empty() {
                return Err(Error::corrupt(format!(
                    "MANIFEST names checkpoint {} but the file is missing",
                    manifest.checkpoint_id
                )));
            }
            let id = manifest.checkpoint_id;
            let mut file =
                File::open(ckpt_path(&dir, id)).map_err(|e| io_err("open checkpoint", &e))?;
            let mut header = [0u8; HEADER_LEN as usize];
            std::io::Read::read_exact(&mut file, &mut header)
                .map_err(|e| io_err("read checkpoint header", &e))?;
            if decode_header(&header, CKPT_MAGIC)? != id {
                return Err(Error::corrupt("checkpoint id mismatch"));
            }
            let mut saw_trailer = false;
            let end = read_frames(&mut file, HEADER_LEN, |payload, payload_off| {
                let (rec, value_off) = LogRecord::decode(payload)?;
                match rec {
                    LogRecord::Put { pid, key, cell, .. } => {
                        let part = index.entry(pid).or_default();
                        part.map.insert(
                            key,
                            IndexEntry {
                                token: cell.token,
                                loc: ValueLoc {
                                    file: FileKey::Ckpt(id),
                                    off: payload_off + value_off as u64,
                                    len: cell.value.len() as u32,
                                },
                            },
                        );
                        recovered_records += 1;
                    }
                    LogRecord::Delete { .. } => {
                        return Err(Error::corrupt("delete record inside checkpoint"));
                    }
                    LogRecord::CheckpointTrailer { covered_seg_seq, partitions } => {
                        if covered_seg_seq != manifest.covered_seg_seq {
                            return Err(Error::corrupt(
                                "checkpoint trailer disagrees with MANIFEST",
                            ));
                        }
                        for (pid, applied_seq, max_token) in partitions {
                            let part = index.entry(pid).or_default();
                            part.applied_seq = applied_seq;
                            part.max_token = max_token;
                        }
                        saw_trailer = true;
                    }
                }
                Ok(())
            })?;
            // The manifest is only written after the checkpoint is fsynced,
            // so a torn or trailer-less checkpoint it points at is real
            // corruption, not a crash artifact.
            if end != FrameEnd::Eof || !saw_trailer {
                return Err(Error::corrupt("checkpoint is torn or missing its trailer"));
            }
        }

        // Replay segments newer than the checkpoint, oldest seg_seq first.
        // Only the newest may be torn (the crash tail); truncate it clean.
        let mut allocator = SlotAllocator::new();
        let mut max_seg_seq = manifest.covered_seg_seq;
        for (i, &(seg_seq, slot)) in segs.iter().enumerate() {
            allocator.reserve(slot);
            max_seg_seq = max_seg_seq.max(seg_seq);
            let path = seg_path(&dir, slot);
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open segment", &e))?;
            file.seek(SeekFrom::Start(HEADER_LEN)).map_err(|e| io_err("seek segment", &e))?;
            let end = read_frames(&mut file, HEADER_LEN, |payload, payload_off| {
                let (rec, value_off) = LogRecord::decode(payload)?;
                match rec {
                    LogRecord::Put { pid, seq, key, cell } => {
                        let part = index.entry(pid).or_default();
                        part.map.insert(
                            key,
                            IndexEntry {
                                token: cell.token,
                                loc: ValueLoc {
                                    file: FileKey::Seg(slot),
                                    off: payload_off + value_off as u64,
                                    len: cell.value.len() as u32,
                                },
                            },
                        );
                        part.applied_seq = part.applied_seq.max(seq);
                        part.max_token = part.max_token.max(cell.token);
                    }
                    LogRecord::Delete { pid, seq, key } => {
                        let part = index.entry(pid).or_default();
                        part.map.remove(&key);
                        part.applied_seq = part.applied_seq.max(seq);
                    }
                    LogRecord::CheckpointTrailer { .. } => {
                        return Err(Error::corrupt("checkpoint trailer inside segment"));
                    }
                }
                recovered_records += 1;
                Ok(())
            })?;
            if let FrameEnd::Torn { offset } = end {
                if i + 1 != segs.len() {
                    return Err(Error::corrupt(format!(
                        "segment seg_seq={seg_seq} is corrupt mid-log (tear at byte {offset})"
                    )));
                }
                file.set_len(offset).map_err(|e| io_err("truncate torn tail", &e))?;
                file.sync_all().map_err(|e| io_err("sync truncated segment", &e))?;
                incr(Counter::DurableTornTailsTruncated);
            }
        }
        add(Counter::DurableRecoveredRecords, recovered_records);

        // Recovered segments stay sealed; appends go to a fresh one.
        let sealed: Vec<(u32, u64)> = segs.iter().map(|&(seq, slot)| (slot, seq)).collect();
        let next_seg_seq = max_seg_seq + 1;
        let slot = allocator.alloc();
        let active = open_fresh_segment(&dir, slot, next_seg_seq)?;

        let node = Arc::new(DurableNode {
            cache: ObjectCache::new(config.cache_bytes),
            dir: dir.clone(),
            config: config.clone(),
            inner: Mutex::new(Inner {
                allocator,
                active,
                sealed,
                next_seg_seq: next_seg_seq + 1,
                manifest,
                index,
                records_since_ckpt: 0,
                appends_since_sync: 0,
            }),
            evictor_stop: Arc::new(AtomicBool::new(false)),
            evictor: Mutex::new(None),
        });

        // Materialize recovered images (and warm the cache along the way).
        let mut partitions = Vec::new();
        {
            let inner = node.inner.lock();
            let mut pids: Vec<u32> = inner.index.keys().copied().collect();
            pids.sort_unstable();
            for pid in pids {
                let part = &inner.index[&pid];
                let mut entries = Vec::with_capacity(part.map.len());
                for (key, entry) in &part.map {
                    let value = read_value_at(&dir, &entry.loc)?;
                    node.cache.put(pid, key.clone(), value.clone());
                    entries.push((key.clone(), Cell { token: entry.token, value }));
                }
                partitions.push(RecoveredPartition {
                    pid,
                    applied_seq: part.applied_seq,
                    max_token: part.max_token,
                    entries,
                });
            }
        }

        if config.background_eviction && config.cache_bytes > 0 {
            node.spawn_evictor();
        }
        Ok((node, partitions))
    }

    fn spawn_evictor(self: &Arc<Self>) {
        let stop = Arc::clone(&self.evictor_stop);
        let weak = Arc::downgrade(self);
        let low_watermark = self.config.cache_bytes - self.config.cache_bytes / 8;
        let handle = std::thread::Builder::new()
            .name("tell-durable-evictor".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                    let Some(node) = weak.upgrade() else { break };
                    node.cache.trim_to(low_watermark);
                }
            })
            .expect("spawn evictor thread");
        *self.evictor.lock() = Some(handle);
    }

    /// The object cache (benches read hit/miss state through tell-obs, but
    /// tests also want direct occupancy checks).
    pub fn cache(&self) -> &ObjectCache {
        &self.cache
    }

    /// Read one key through the cache, falling back to the on-disk value.
    pub fn get(&self, pid: u32, key: &Bytes) -> Result<Option<Cell>> {
        let inner = self.inner.lock();
        let Some(entry) = inner.index.get(&pid).and_then(|p| p.map.get(key)).cloned() else {
            return Ok(None);
        };
        if let Some(value) = self.cache.get(pid, key) {
            return Ok(Some(Cell { token: entry.token, value }));
        }
        // Stay under the lock: a concurrent checkpoint could otherwise
        // delete the segment between the index lookup and the read.
        let value = read_value_at(&self.dir, &entry.loc)?;
        self.cache.put(pid, key.clone(), value.clone());
        Ok(Some(Cell { token: entry.token, value }))
    }

    /// Segment files currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.sealed.len() + 1
    }

    /// Force a checkpoint now.
    pub fn checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.do_checkpoint(&mut inner)
    }

    fn rotate(&self, inner: &mut Inner) -> Result<()> {
        inner.active.file.sync_all().map_err(|e| io_err("sync sealed segment", &e))?;
        incr(Counter::DurableFsyncs);
        incr(Counter::DurableSegmentsSealed);
        inner.appends_since_sync = 0;
        let seg_seq = inner.next_seg_seq;
        inner.next_seg_seq += 1;
        let slot = inner.allocator.alloc();
        let fresh = open_fresh_segment(&self.dir, slot, seg_seq)?;
        let old = std::mem::replace(&mut inner.active, fresh);
        inner.sealed.push((old.slot, old.seg_seq));
        Ok(())
    }

    fn do_checkpoint(&self, inner: &mut Inner) -> Result<()> {
        // Rotate so every record to be covered sits in a sealed segment.
        if inner.active.len > HEADER_LEN {
            self.rotate(inner)?;
        }
        let covered = inner.active.seg_seq - 1;
        let id = inner.manifest.checkpoint_id.wrapping_add(1);

        let path = ckpt_path(&self.dir, id);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create checkpoint", &e))?;
        write_all(&mut file, "checkpoint header", &encode_header(CKPT_MAGIC, id))?;
        let mut off = HEADER_LEN;
        let mut relocations: Vec<(u32, Bytes, ValueLoc)> = Vec::new();
        let mut trailer_parts: Vec<(u32, u64, u64)> = Vec::new();
        let mut pids: Vec<u32> = inner.index.keys().copied().collect();
        pids.sort_unstable();
        let mut payload = Vec::new();
        let mut framed = Vec::new();
        let mut records = 0u64;
        for &pid in &pids {
            let part = &inner.index[&pid];
            trailer_parts.push((pid, part.applied_seq, part.max_token));
            for (key, entry) in &part.map {
                let value = match self.cache.get(pid, key) {
                    Some(v) => v,
                    None => read_value_at(&self.dir, &entry.loc)?,
                };
                let rec = LogRecord::Put {
                    pid,
                    seq: 0,
                    key: key.clone(),
                    cell: Cell { token: entry.token, value },
                };
                payload.clear();
                framed.clear();
                let value_off = rec.encode_into(&mut payload);
                frame_into(&mut framed, &payload);
                write_all(&mut file, "checkpoint record", &framed)?;
                relocations.push((
                    pid,
                    key.clone(),
                    ValueLoc {
                        file: FileKey::Ckpt(id),
                        off: off + FRAME_PREFIX + value_off as u64,
                        len: entry.loc.len,
                    },
                ));
                off += framed.len() as u64;
                records += 1;
            }
        }
        let trailer =
            LogRecord::CheckpointTrailer { covered_seg_seq: covered, partitions: trailer_parts };
        payload.clear();
        framed.clear();
        trailer.encode_into(&mut payload);
        frame_into(&mut framed, &payload);
        write_all(&mut file, "checkpoint trailer", &framed)?;
        file.sync_all().map_err(|e| io_err("sync checkpoint", &e))?;
        incr(Counter::DurableFsyncs);
        drop(file);

        // Commit point: the manifest now names the new checkpoint.
        let old_id = inner.manifest.checkpoint_id;
        inner.manifest = Manifest { checkpoint_id: id, covered_seg_seq: covered };
        inner.manifest.store(&self.dir)?;

        // Cleanup is safe after the commit point; recovery re-does it if we
        // crash here.
        if old_id != NO_CHECKPOINT {
            let _ = fs::remove_file(ckpt_path(&self.dir, old_id));
        }
        let mut recycled = 0u64;
        for (slot, _seg_seq) in inner.sealed.drain(..) {
            let _ = fs::remove_file(seg_path(&self.dir, slot));
            inner.allocator.free(slot);
            recycled += 1;
        }
        sync_dir(&self.dir)?;
        for (pid, key, loc) in relocations {
            if let Some(entry) = inner.index.get_mut(&pid).and_then(|p| p.map.get_mut(&key)) {
                // Only relocate if the entry wasn't overwritten meanwhile
                // (it can't be — we hold the lock — but stay defensive).
                entry.loc = loc;
            }
        }
        inner.records_since_ckpt = 0;
        incr(Counter::DurableCheckpoints);
        add(Counter::DurableCheckpointRecords, records);
        add(Counter::DurableSegmentsRecycled, recycled);
        Ok(())
    }
}

impl DurableNode {
    fn append_locked(
        &self,
        inner: &mut Inner,
        pid: u32,
        seq: u64,
        key: &Bytes,
        cell: Option<&Cell>,
    ) -> Result<()> {
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::DurableAppend);
        let rec = match cell {
            Some(c) => LogRecord::Put { pid, seq, key: key.clone(), cell: c.clone() },
            None => LogRecord::Delete { pid, seq, key: key.clone() },
        };
        let mut payload = Vec::new();
        let value_off = rec.encode_into(&mut payload);
        let mut framed = Vec::new();
        frame_into(&mut framed, &payload);

        let at = inner.active.len;
        write_all(&mut inner.active.file, "append record", &framed)?;
        inner.active.len += framed.len() as u64;
        incr(Counter::DurableAppends);
        add(Counter::DurableAppendBytes, framed.len() as u64);

        let slot = inner.active.slot;
        let part = inner.index.entry(pid).or_default();
        match cell {
            Some(c) => {
                part.map.insert(
                    key.clone(),
                    IndexEntry {
                        token: c.token,
                        loc: ValueLoc {
                            file: FileKey::Seg(slot),
                            off: at + FRAME_PREFIX + value_off as u64,
                            len: c.value.len() as u32,
                        },
                    },
                );
                part.max_token = part.max_token.max(c.token);
                self.cache.put(pid, key.clone(), c.value.clone());
            }
            None => {
                part.map.remove(key);
                self.cache.remove(pid, key);
            }
        }
        part.applied_seq = part.applied_seq.max(seq);

        inner.appends_since_sync += 1;
        let should_sync = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => inner.appends_since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if should_sync {
            let _fsync = tell_obs::FrameGuard::enter(tell_obs::FrameKind::DurableFsync);
            inner.active.file.sync_data().map_err(|e| io_err("fsync segment", &e))?;
            incr(Counter::DurableFsyncs);
            inner.appends_since_sync = 0;
        }

        if inner.active.len >= self.config.segment_bytes {
            self.rotate(inner)?;
        }
        inner.records_since_ckpt += 1;
        if self.config.checkpoint_every > 0
            && inner.records_since_ckpt >= self.config.checkpoint_every
        {
            self.do_checkpoint(inner)?;
        }
        Ok(())
    }
}

impl NodeDurability for DurableNode {
    fn record(&self, pid: u32, seq: u64, key: &Bytes, cell: Option<&Cell>) -> Result<()> {
        let mut inner = self.inner.lock();
        self.append_locked(&mut inner, pid, seq, key, cell)
    }

    fn reset_partition(&self, pid: u32, applied_seq: u64, entries: &[(Bytes, Cell)]) -> Result<()> {
        let mut inner = self.inner.lock();
        let keep: std::collections::HashSet<&Bytes> = entries.iter().map(|(k, _)| k).collect();
        let stale: Vec<Bytes> = inner
            .index
            .get(&pid)
            .map(|p| p.map.keys().filter(|k| !keep.contains(k)).cloned().collect())
            .unwrap_or_default();
        // Content records carry seq 0: a reset torn by a crash must recover
        // at the partition's *old* watermark — a stale copy that re-syncs
        // from a fresh peer — never at the target watermark over incomplete
        // content (which would pass the freshness check and serve with
        // acked keys missing).
        for key in &stale {
            self.append_locked(&mut inner, pid, 0, key, None)?;
        }
        for (key, cell) in entries {
            self.append_locked(&mut inner, pid, 0, key, Some(cell))?;
        }
        // Commit point: the applied_seq watermark lands in one final record
        // only after every content record is in the log — a no-op delete of
        // the empty key (absent on both sides), or a re-put if the snapshot
        // genuinely contains an empty key.
        let watermark_cell = entries.iter().find(|(k, _)| k.is_empty()).map(|(_, c)| c);
        self.append_locked(&mut inner, pid, applied_seq, &Bytes::new(), watermark_cell)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let _frame = tell_obs::FrameGuard::enter(tell_obs::FrameKind::DurableFsync);
        inner.active.file.sync_data().map_err(|e| io_err("fsync segment", &e))?;
        incr(Counter::DurableFsyncs);
        inner.appends_since_sync = 0;
        Ok(())
    }
}

impl Drop for DurableNode {
    fn drop(&mut self) {
        self.evictor_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.evictor.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Filesystem-backed [`DurabilityProvider`]: one subdirectory per storage
/// node under a shared root.
#[derive(Debug)]
pub struct FsDurability {
    root: PathBuf,
    config: DurableNodeConfig,
}

impl FsDurability {
    /// Provider rooted at `root` with shared per-node config.
    pub fn new(root: impl Into<PathBuf>, config: DurableNodeConfig) -> Arc<Self> {
        Arc::new(FsDurability { root: root.into(), config })
    }

    /// The data directory a given node uses.
    pub fn node_dir(&self, node: SnId) -> PathBuf {
        self.root.join(format!("sn-{}", node.0))
    }
}

impl DurabilityProvider for FsDurability {
    fn open_node(&self, node: SnId) -> Result<RecoveredNode> {
        let (engine, partitions) = DurableNode::open(self.node_dir(node), self.config.clone())?;
        Ok(RecoveredNode { engine, partitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tell-durable-engine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn cell(token: u64, value: &str) -> Cell {
        Cell { token, value: b(value) }
    }

    fn tiny_config() -> DurableNodeConfig {
        DurableNodeConfig {
            segment_bytes: 256,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 0,
            cache_bytes: 1 << 20,
            background_eviction: false,
        }
    }

    #[test]
    fn fresh_dir_recovers_nothing_and_roundtrips() {
        let dir = test_dir("roundtrip");
        {
            let (node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
            assert!(recovered.is_empty());
            node.record(0, 1, &b("alpha"), Some(&cell(10, "one"))).unwrap();
            node.record(0, 2, &b("beta"), Some(&cell(11, "two"))).unwrap();
            node.record(1, 1, &b("gamma"), Some(&cell(5, "three"))).unwrap();
            node.record(0, 3, &b("alpha"), Some(&cell(12, "one-v2"))).unwrap();
            node.record(1, 2, &b("gamma"), None).unwrap();
        }
        let (node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered.len(), 2);
        let p0 = &recovered[0];
        assert_eq!((p0.pid, p0.applied_seq, p0.max_token), (0, 3, 12));
        assert_eq!(
            p0.entries,
            vec![(b("alpha"), cell(12, "one-v2")), (b("beta"), cell(11, "two"))]
        );
        let p1 = &recovered[1];
        assert_eq!((p1.pid, p1.applied_seq, p1.max_token), (1, 2, 5));
        assert!(p1.entries.is_empty(), "delete replayed, applied_seq kept");
        assert_eq!(node.get(0, &b("alpha")).unwrap(), Some(cell(12, "one-v2")));
        assert_eq!(node.get(1, &b("gamma")).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_checkpoint_recycle_segments() {
        let dir = test_dir("ckpt");
        let (node, _) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        for i in 0..40 {
            let key = b(&format!("key-{i:03}"));
            node.record(0, i + 1, &key, Some(&cell(i + 1, &format!("value-{i}")))).unwrap();
        }
        assert!(node.segment_count() > 1, "tiny segments forced rotation");
        node.checkpoint().unwrap();
        assert_eq!(node.segment_count(), 1, "checkpoint recycled sealed segments");
        // Values remain readable from the checkpoint file (cold cache).
        node.cache.trim_to(0);
        assert_eq!(node.get(0, &b("key-007")).unwrap(), Some(cell(8, "value-7")));
        drop(node);
        // Recovery from checkpoint + empty tail.
        let (node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].entries.len(), 40);
        assert_eq!(recovered[0].applied_seq, 40);
        assert_eq!(node.get(0, &b("key-039")).unwrap(), Some(cell(40, "value-39")));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_after_checkpoint_survive_restart() {
        let dir = test_dir("post-ckpt");
        {
            let (node, _) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
            node.record(0, 1, &b("a"), Some(&cell(1, "v1"))).unwrap();
            node.checkpoint().unwrap();
            node.record(0, 2, &b("b"), Some(&cell(2, "v2"))).unwrap();
            node.record(0, 3, &b("a"), None).unwrap();
        }
        let (_node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].entries, vec![(b("b"), cell(2, "v2"))]);
        assert_eq!(recovered[0].applied_seq, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_to_the_acked_prefix() {
        let dir = test_dir("torn");
        {
            let (node, _) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
            node.record(0, 1, &b("a"), Some(&cell(1, "first"))).unwrap();
            node.record(0, 2, &b("b"), Some(&cell(2, "second"))).unwrap();
        }
        // Tear the newest segment mid-record: chop 3 bytes off.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("seg-"))
            .max_by_key(|p| fs::metadata(p).unwrap().len())
            .unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (_node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].entries, vec![(b("a"), cell(1, "first"))]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_reset_recovers_stale_not_fresh() {
        let dir = test_dir("torn-reset");
        let config = DurableNodeConfig { segment_bytes: 1 << 20, ..tiny_config() };
        {
            let (node, _) = DurableNode::open(dir.clone(), config.clone()).unwrap();
            node.record(0, 1, &b("a"), Some(&cell(1, "v1"))).unwrap();
            node.record(0, 2, &b("b"), Some(&cell(2, "v2"))).unwrap();
            // Re-sync from a peer that is 3 mutations ahead.
            node.reset_partition(0, 5, &[(b("a"), cell(7, "v1-new")), (b("c"), cell(8, "v3"))])
                .unwrap();
        }
        // Tear off the tail of the newest segment: the final watermark
        // record (and possibly more) is lost, as if the process was killed
        // mid-reset.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("seg-"))
            .max_by_key(|p| fs::metadata(p).unwrap().len())
            .unwrap();
        let len = fs::metadata(&seg).unwrap().len();
        let f = OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let (_node, recovered) = DurableNode::open(dir.clone(), config.clone()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(
            recovered[0].applied_seq < 5,
            "torn reset must recover below the target watermark (stale), got {}",
            recovered[0].applied_seq
        );
        // A clean reset (no tear) recovers exactly the snapshot at the
        // target watermark.
        let (node, _) = DurableNode::open(dir.clone(), config.clone()).unwrap();
        node.reset_partition(0, 5, &[(b("a"), cell(7, "v1-new")), (b("c"), cell(8, "v3"))])
            .unwrap();
        drop(node);
        let (_node, recovered) = DurableNode::open(dir.clone(), config).unwrap();
        assert_eq!(recovered[0].applied_seq, 5);
        assert_eq!(
            recovered[0].entries,
            vec![(b("a"), cell(7, "v1-new")), (b("c"), cell(8, "v3"))]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_only_torn_creation_is_dropped() {
        let dir = test_dir("torn-creation");
        {
            let (node, _) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
            node.record(0, 1, &b("a"), Some(&cell(1, "v"))).unwrap();
        }
        // A crash during open_fresh_segment leaves at most a partial header.
        fs::write(seg_path(&dir, 99), [0xAAu8; 7]).unwrap();
        let (_node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered[0].entries, vec![(b("a"), cell(1, "v"))]);
        assert!(!seg_path(&dir, 99).exists(), "torn creation removed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_of_a_populated_segment_fails_loudly() {
        let dir = test_dir("bad-header");
        {
            let (node, _) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
            node.record(0, 1, &b("a"), Some(&cell(1, "v"))).unwrap();
        }
        let seg = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.file_name().unwrap().to_str().unwrap().starts_with("seg-"))
            .max_by_key(|p| fs::metadata(p).unwrap().len())
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        assert!(bytes.len() as u64 > HEADER_LEN);
        bytes[0] ^= 0xFF; // flip a magic byte
        fs::write(&seg, &bytes).unwrap();
        let err = DurableNode::open(dir.clone(), tiny_config()).unwrap_err();
        assert!(
            format!("{err:?}").contains("unreadable header"),
            "expected loud corruption error, got {err:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_triggers_by_record_count() {
        let dir = test_dir("auto-ckpt");
        let config = DurableNodeConfig { checkpoint_every: 8, ..tiny_config() };
        let (node, _) = DurableNode::open(dir.clone(), config).unwrap();
        for i in 0..20u64 {
            node.record(0, i + 1, &b(&format!("k{i}")), Some(&cell(i + 1, "v"))).unwrap();
        }
        let manifest = Manifest::load(&dir).unwrap();
        assert_ne!(manifest.checkpoint_id, NO_CHECKPOINT, "auto checkpoint ran");
        drop(node);
        let (_node, recovered) = DurableNode::open(dir.clone(), tiny_config()).unwrap();
        assert_eq!(recovered[0].entries.len(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("batch:32"), Ok(FsyncPolicy::Batch(32)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn provider_keeps_nodes_separate() {
        let root = test_dir("provider");
        let config = tiny_config();
        let provider = FsDurability::new(root.clone(), config);
        {
            let n0 = provider.open_node(SnId(0)).unwrap();
            let n1 = provider.open_node(SnId(1)).unwrap();
            n0.engine.record(0, 1, &b("k"), Some(&cell(1, "node0"))).unwrap();
            n1.engine.record(0, 1, &b("k"), Some(&cell(1, "node1"))).unwrap();
        }
        let n0 = provider.open_node(SnId(0)).unwrap();
        assert_eq!(n0.partitions[0].entries, vec![(b("k"), cell(1, "node0"))]);
        let n1 = provider.open_node(SnId(1)).unwrap();
        assert_eq!(n1.partitions[0].entries, vec![(b("k"), cell(1, "node1"))]);
        fs::remove_dir_all(&root).unwrap();
    }
}

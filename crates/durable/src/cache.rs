//! Byte-bounded LRU object cache.
//!
//! The durable engine's index keeps every key's *location* in RAM, but the
//! value bytes themselves may live only on disk. This cache holds the hot
//! values: writes go through it (a just-written value is the most likely
//! next read), reads promote, and eviction trims from the cold end once the
//! byte budget is exceeded. An optional background evictor thread trims to
//! a low watermark so foreground operations rarely pay eviction cost.
//!
//! Hand-rolled intrusive LRU: a `HashMap` from `(pid, key)` to a slab index
//! plus prev/next links threaded through the slab. No per-op allocation
//! beyond the map entry, O(1) for get/insert/remove/evict-one.

use std::collections::HashMap;

use bytes::Bytes;
use tell_obs::{add, incr, Counter, ProfMutex};

/// Cache key: partition id + row key.
type Key = (u32, Bytes);

const NIL: usize = usize::MAX;

struct Entry {
    key: Key,
    value: Bytes,
    prev: usize,
    next: usize,
}

struct Inner {
    map: HashMap<Key, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    bytes: usize,
}

impl Inner {
    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn entry_bytes(key: &Key, value: &Bytes) -> usize {
        key.1.len() + value.len() + 64
    }

    /// Drop the LRU entry; returns false when empty.
    fn evict_one(&mut self) -> bool {
        let idx = self.tail;
        if idx == NIL {
            return false;
        }
        self.detach(idx);
        let entry = &mut self.slab[idx];
        self.bytes -= Self::entry_bytes(&entry.key, &entry.value);
        let key = std::mem::replace(&mut entry.key, (0, Bytes::new()));
        entry.value = Bytes::new();
        self.map.remove(&key);
        self.free.push(idx);
        true
    }
}

/// A byte-capacity LRU over `(partition, key) -> value`.
#[derive(Debug)]
pub struct ObjectCache {
    inner: ProfMutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("entries", &self.map.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl ObjectCache {
    /// New cache bounded to roughly `capacity` bytes of key+value payload.
    pub fn new(capacity: usize) -> Self {
        ObjectCache {
            inner: ProfMutex::new(
                "durable.cache",
                Inner {
                    map: HashMap::new(),
                    slab: Vec::new(),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    bytes: 0,
                },
            ),
            capacity,
        }
    }

    /// Look up and promote. Counts a hit or miss.
    pub fn get(&self, pid: u32, key: &Bytes) -> Option<Bytes> {
        let mut inner = self.inner.lock();
        let probe = (pid, key.clone());
        match inner.map.get(&probe).copied() {
            Some(idx) => {
                inner.detach(idx);
                inner.push_front(idx);
                incr(Counter::DurableCacheHits);
                Some(inner.slab[idx].value.clone())
            }
            None => {
                incr(Counter::DurableCacheMisses);
                None
            }
        }
    }

    /// Insert or replace (write-through from the engine). Evicts from the
    /// cold end until the budget holds; a value bigger than the whole
    /// budget is simply not cached.
    pub fn put(&self, pid: u32, key: Bytes, value: Bytes) {
        let k: Key = (pid, key);
        let cost = Inner::entry_bytes(&k, &value);
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.map.get(&k).copied() {
            let old = Inner::entry_bytes(&k, &inner.slab[idx].value);
            inner.slab[idx].value = value;
            inner.bytes = inner.bytes - old + cost;
            inner.detach(idx);
            inner.push_front(idx);
        } else {
            if cost > self.capacity {
                return;
            }
            let idx = match inner.free.pop() {
                Some(idx) => {
                    inner.slab[idx] = Entry { key: k.clone(), value, prev: NIL, next: NIL };
                    idx
                }
                None => {
                    inner.slab.push(Entry { key: k.clone(), value, prev: NIL, next: NIL });
                    inner.slab.len() - 1
                }
            };
            inner.map.insert(k, idx);
            inner.bytes += cost;
            inner.push_front(idx);
        }
        let mut evicted = 0u64;
        while inner.bytes > self.capacity && inner.evict_one() {
            evicted += 1;
        }
        if evicted > 0 {
            add(Counter::DurableCacheEvictions, evicted);
        }
    }

    /// Drop a key (delete path).
    pub fn remove(&self, pid: u32, key: &Bytes) {
        let mut inner = self.inner.lock();
        let probe = (pid, key.clone());
        if let Some(idx) = inner.map.remove(&probe) {
            inner.detach(idx);
            let cost = Inner::entry_bytes(&inner.slab[idx].key, &inner.slab[idx].value);
            inner.bytes -= cost;
            inner.slab[idx].key = (0, Bytes::new());
            inner.slab[idx].value = Bytes::new();
            inner.free.push(idx);
        }
    }

    /// Trim to `target` bytes (the background evictor's low watermark).
    /// Returns how many entries were evicted.
    pub fn trim_to(&self, target: usize) -> u64 {
        let mut inner = self.inner.lock();
        let mut evicted = 0u64;
        while inner.bytes > target && inner.evict_one() {
            evicted += 1;
        }
        if evicted > 0 {
            add(Counter::DurableCacheEvictions, evicted);
        }
        evicted
    }

    /// Current payload bytes held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn lru_order_and_promotion() {
        // Each entry costs key(2) + value(2) + 64 = 68 bytes; budget fits 3.
        let cache = ObjectCache::new(3 * 68);
        cache.put(0, b("k1"), b("v1"));
        cache.put(0, b("k2"), b("v2"));
        cache.put(0, b("k3"), b("v3"));
        assert_eq!(cache.len(), 3);
        // Touch k1 so k2 becomes coldest, then overflow.
        assert_eq!(cache.get(0, &b("k1")), Some(b("v1")));
        cache.put(0, b("k4"), b("v4"));
        assert_eq!(cache.get(0, &b("k2")), None, "coldest entry evicted");
        assert_eq!(cache.get(0, &b("k1")), Some(b("v1")));
        assert_eq!(cache.get(0, &b("k4")), Some(b("v4")));
    }

    #[test]
    fn replace_updates_bytes_and_oversized_values_skip_cache() {
        let cache = ObjectCache::new(200);
        cache.put(1, b("k"), b("small"));
        let before = cache.bytes();
        cache.put(1, b("k"), b("a bit larger value"));
        assert!(cache.bytes() > before);
        assert_eq!(cache.len(), 1);
        cache.put(1, b("big"), Bytes::from(vec![0u8; 500]));
        assert_eq!(cache.get(1, &b("big")), None, "oversized value not cached");
        assert_eq!(cache.get(1, &b("k")), Some(b("a bit larger value")));
    }

    #[test]
    fn remove_frees_slot_for_reuse() {
        let cache = ObjectCache::new(10_000);
        cache.put(0, b("a"), b("1"));
        cache.put(0, b("b"), b("2"));
        cache.remove(0, &b("a"));
        assert_eq!(cache.get(0, &b("a")), None);
        assert_eq!(cache.len(), 1);
        cache.put(0, b("c"), b("3"));
        assert_eq!(cache.get(0, &b("b")), Some(b("2")));
        assert_eq!(cache.get(0, &b("c")), Some(b("3")));
    }

    #[test]
    fn trim_to_watermark() {
        let cache = ObjectCache::new(10 * 68);
        for i in 0..10 {
            cache.put(0, b(&format!("k{i}")), b("xx"));
        }
        let evicted = cache.trim_to(4 * 69);
        assert!(evicted >= 5, "trimmed {evicted}");
        assert!(cache.bytes() <= 4 * 69);
        // The survivors are the hottest (most recently inserted) entries.
        assert!(cache.get(0, &b("k9")).is_some());
        assert!(cache.get(0, &b("k0")).is_none());
    }

    #[test]
    fn partitions_do_not_collide() {
        let cache = ObjectCache::new(10_000);
        cache.put(1, b("k"), b("p1"));
        cache.put(2, b("k"), b("p2"));
        assert_eq!(cache.get(1, &b("k")), Some(b("p1")));
        assert_eq!(cache.get(2, &b("k")), Some(b("p2")));
        cache.remove(1, &b("k"));
        assert_eq!(cache.get(2, &b("k")), Some(b("p2")));
    }
}

//! `tell-durable` — the log-structured persistence tier for storage nodes.
//!
//! The paper's shared-data design (§3–4) makes storage nodes the durable
//! substrate processing nodes are rebuilt from, but `tell-store` alone is
//! pure in-memory: durability there is only replication, so losing every
//! copy-holder of a partition loses data. This crate adds the missing
//! tier, in the style main-memory engines pair with their RAM path
//! (Hekaton's log + checkpoint recovery): each storage node gets
//!
//! * an **append-only segment log** with CRC-framed records
//!   ([`segment`]), rotated at a size threshold, slots recycled through a
//!   bitmap allocator ([`alloc`]),
//! * **periodic checkpoints** that rewrite the live set and commit through
//!   an atomically-replaced manifest ([`manifest`]),
//! * **restart recovery** that loads the checkpoint and replays strictly
//!   newer segments, truncating a torn tail in the newest one
//!   ([`engine`]), and
//! * a byte-bounded **LRU object cache** with optional background
//!   eviction so the hot set stays in RAM ([`cache`]).
//!
//! It plugs into `tell-store` behind the [`tell_store::durability`] traits:
//! [`FsDurability`] is the provider a cluster is configured with, and the
//! default `None` keeps the pure in-memory path byte-for-byte unchanged.

pub mod alloc;
pub mod cache;
pub mod engine;
pub mod manifest;
pub mod segment;

pub use cache::ObjectCache;
pub use engine::{DurableNode, DurableNodeConfig, FsDurability, FsyncPolicy};
pub use manifest::Manifest;
pub use segment::{crc32, LogRecord};

//! Append-only segment files with CRC-framed records.
//!
//! A segment is a 16-byte header followed by frames:
//!
//! ```text
//! header:  "TDSG" | version u16 | reserved u16 | seg_seq u64
//! frame:   len u32 | crc32(payload) u32 | payload (len bytes)
//! ```
//!
//! `seg_seq` is a per-node monotonic sequence number assigned when the
//! segment is created; replay order follows `seg_seq`, not the (recycled)
//! file-name slot. Frames carry [`LogRecord`]s. A reader stops cleanly at
//! the first frame that is short, oversized or fails its CRC — in the
//! newest segment that is the torn tail of a crash and is truncated away;
//! anywhere else it is real corruption and surfaces as an error.

use std::io::{Read, Write};

use bytes::Bytes;
use tell_common::{Error, Result};
use tell_store::Cell;

/// Segment header magic.
pub const SEG_MAGIC: &[u8; 4] = b"TDSG";
/// Checkpoint header magic (checkpoints share the frame format).
pub const CKPT_MAGIC: &[u8; 4] = b"TDCK";
/// On-disk format version.
pub const FORMAT_VERSION: u16 = 1;
/// Header length shared by segments and checkpoints.
pub const HEADER_LEN: u64 = 16;
/// Frame prefix: length + CRC.
pub const FRAME_PREFIX: u64 = 8;
/// Upper bound on a single frame payload; anything larger read back from
/// disk is treated as a torn/corrupt length field.
pub const MAX_PAYLOAD: u32 = 64 << 20;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected).
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for b in bytes {
        c = CRC_TABLE[((c ^ *b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Records.
// ---------------------------------------------------------------------

/// One durable mutation (or checkpoint bookkeeping entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecord {
    /// `key` in partition `pid` now holds `cell`; `seq` is the partition's
    /// acked-mutation sequence at this write. Checkpoint entries reuse this
    /// kind with `seq = 0` (their sequence floor travels in the trailer).
    Put { pid: u32, seq: u64, key: Bytes, cell: Cell },
    /// `key` in partition `pid` was removed at partition sequence `seq`.
    Delete { pid: u32, seq: u64, key: Bytes },
    /// Checkpoint trailer: the per-partition watermarks the snapshot
    /// captured — `(pid, applied_seq, max_token)` — plus the highest
    /// `seg_seq` the checkpoint subsumes.
    CheckpointTrailer { covered_seg_seq: u64, partitions: Vec<(u32, u64, u64)> },
}

const KIND_PUT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_TRAILER: u8 = 3;

impl LogRecord {
    /// Serialize into `out`. For `Put`, returns the offset *within the
    /// payload* where the value bytes start (the engine's value locator
    /// points straight at them).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        match self {
            LogRecord::Put { pid, seq, key, cell } => {
                out.push(KIND_PUT);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&cell.token.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                out.extend_from_slice(&(cell.value.len() as u32).to_le_bytes());
                let value_off = out.len();
                out.extend_from_slice(&cell.value);
                value_off
            }
            LogRecord::Delete { pid, seq, key } => {
                out.push(KIND_DELETE);
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
                0
            }
            LogRecord::CheckpointTrailer { covered_seg_seq, partitions } => {
                out.push(KIND_TRAILER);
                out.extend_from_slice(&covered_seg_seq.to_le_bytes());
                out.extend_from_slice(&(partitions.len() as u32).to_le_bytes());
                for (pid, seq, token) in partitions {
                    out.extend_from_slice(&pid.to_le_bytes());
                    out.extend_from_slice(&seq.to_le_bytes());
                    out.extend_from_slice(&token.to_le_bytes());
                }
                0
            }
        }
    }

    /// Decode one payload. Returns the record and, for `Put`, the offset of
    /// the value bytes within the payload.
    pub fn decode(payload: &[u8]) -> Result<(LogRecord, usize)> {
        let mut cur = Cursor { buf: payload, pos: 0 };
        let kind = cur.u8()?;
        match kind {
            KIND_PUT => {
                let pid = cur.u32()?;
                let seq = cur.u64()?;
                let token = cur.u64()?;
                let klen = cur.u32()? as usize;
                let key = cur.bytes(klen)?;
                let vlen = cur.u32()? as usize;
                let value_off = cur.pos;
                let value = cur.bytes(vlen)?;
                cur.done()?;
                Ok((LogRecord::Put { pid, seq, key, cell: Cell { token, value } }, value_off))
            }
            KIND_DELETE => {
                let pid = cur.u32()?;
                let seq = cur.u64()?;
                let klen = cur.u32()? as usize;
                let key = cur.bytes(klen)?;
                cur.done()?;
                Ok((LogRecord::Delete { pid, seq, key }, 0))
            }
            KIND_TRAILER => {
                let covered_seg_seq = cur.u64()?;
                let n = cur.u32()? as usize;
                let mut partitions = Vec::with_capacity(n);
                for _ in 0..n {
                    partitions.push((cur.u32()?, cur.u64()?, cur.u64()?));
                }
                cur.done()?;
                Ok((LogRecord::CheckpointTrailer { covered_seg_seq, partitions }, 0))
            }
            other => Err(Error::corrupt(format!("unknown log record kind {other}"))),
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self.pos.checked_add(n).filter(|e| *e <= self.buf.len());
        let end = end.ok_or_else(|| Error::corrupt("truncated log record"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self, n: usize) -> Result<Bytes> {
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }
    fn done(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Error::corrupt("trailing bytes in log record"))
        }
    }
}

// ---------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------

/// Encode a header (segment or checkpoint) into a fresh 16-byte block.
pub fn encode_header(magic: &[u8; 4], seq: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..4].copy_from_slice(magic);
    h[4..6].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&seq.to_le_bytes());
    h
}

/// Parse a header, returning its sequence/id field.
pub fn decode_header(buf: &[u8], magic: &[u8; 4]) -> Result<u64> {
    if buf.len() < HEADER_LEN as usize {
        return Err(Error::corrupt("short file header"));
    }
    if &buf[..4] != magic {
        return Err(Error::corrupt("bad file magic"));
    }
    let version = u16::from_le_bytes(buf[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(Error::corrupt(format!("unsupported format version {version}")));
    }
    Ok(u64::from_le_bytes(buf[8..16].try_into().unwrap()))
}

/// Frame `payload` (length + CRC prefix) into `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// How a sequential frame read ended.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameEnd {
    /// Clean end of file on a frame boundary.
    Eof,
    /// A short, oversized or CRC-failing frame at `offset` — a torn tail if
    /// this is the newest segment, corruption otherwise.
    Torn { offset: u64 },
}

/// Read every intact frame of an already-opened file positioned just past
/// its header. Calls `f(payload, payload_file_offset)` per frame; returns
/// how the stream ended.
pub fn read_frames<R: Read>(
    reader: &mut R,
    start_offset: u64,
    mut f: impl FnMut(&[u8], u64) -> Result<()>,
) -> Result<FrameEnd> {
    let mut offset = start_offset;
    let mut payload = Vec::new();
    loop {
        let mut prefix = [0u8; FRAME_PREFIX as usize];
        match read_exact_or_eof(reader, &mut prefix)? {
            ReadEnd::Eof => return Ok(FrameEnd::Eof),
            ReadEnd::Partial => return Ok(FrameEnd::Torn { offset }),
            ReadEnd::Full => {}
        }
        let len = u32::from_le_bytes(prefix[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(prefix[4..8].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Ok(FrameEnd::Torn { offset });
        }
        payload.resize(len as usize, 0);
        match read_exact_or_eof(reader, &mut payload)? {
            ReadEnd::Full => {}
            _ => return Ok(FrameEnd::Torn { offset }),
        }
        if crc32(&payload) != crc {
            return Ok(FrameEnd::Torn { offset });
        }
        f(&payload, offset + FRAME_PREFIX)?;
        offset += FRAME_PREFIX + len as u64;
    }
}

enum ReadEnd {
    Full,
    Partial,
    Eof,
}

fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadEnd> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 { ReadEnd::Eof } else { ReadEnd::Partial });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read segment", &e)),
        }
    }
    Ok(ReadEnd::Full)
}

/// Map an I/O error into the workspace error type.
pub fn io_err(what: &str, e: &std::io::Error) -> Error {
    Error::Unavailable(format!("durable {what}: {e}"))
}

/// Write `bytes` fully (convenience over `Write`).
pub fn write_all<W: Write>(w: &mut W, what: &str, bytes: &[u8]) -> Result<()> {
    w.write_all(bytes).map_err(|e| io_err(what, &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(pid: u32, seq: u64, key: &str, val: &str) -> LogRecord {
        LogRecord::Put {
            pid,
            seq,
            key: Bytes::copy_from_slice(key.as_bytes()),
            cell: Cell { token: seq * 10, value: Bytes::copy_from_slice(val.as_bytes()) },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn record_roundtrip() {
        for rec in [
            put(3, 7, "key", "value"),
            LogRecord::Delete { pid: 1, seq: 9, key: Bytes::from_static(b"gone") },
            LogRecord::CheckpointTrailer {
                covered_seg_seq: 12,
                partitions: vec![(0, 5, 50), (7, 9, 90)],
            },
        ] {
            let mut buf = Vec::new();
            let value_off = rec.encode_into(&mut buf);
            let (decoded, off) = LogRecord::decode(&buf).unwrap();
            assert_eq!(decoded, rec);
            assert_eq!(off, value_off);
            if let LogRecord::Put { cell, .. } = &rec {
                assert_eq!(&buf[off..off + cell.value.len()], cell.value.as_ref());
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LogRecord::decode(&[]).is_err());
        assert!(LogRecord::decode(&[99]).is_err());
        let mut buf = Vec::new();
        put(0, 1, "k", "v").encode_into(&mut buf);
        buf.pop();
        assert!(LogRecord::decode(&buf).is_err());
        buf.push(0);
        buf.push(0);
        assert!(LogRecord::decode(&buf).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn frames_stop_cleanly_at_torn_tail() {
        let mut file = Vec::from(encode_header(SEG_MAGIC, 1));
        let mut p1 = Vec::new();
        put(0, 1, "a", "1").encode_into(&mut p1);
        let mut p2 = Vec::new();
        put(0, 2, "b", "2").encode_into(&mut p2);
        frame_into(&mut file, &p1);
        let second_at = file.len() as u64;
        frame_into(&mut file, &p2);

        // Whole file: two frames, clean EOF.
        let mut seen = Vec::new();
        let end = read_frames(&mut &file[HEADER_LEN as usize..], HEADER_LEN, |p, off| {
            seen.push((LogRecord::decode(p).unwrap().0, off));
            Ok(())
        })
        .unwrap();
        assert_eq!(end, FrameEnd::Eof);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].1, HEADER_LEN + FRAME_PREFIX);

        // Truncate anywhere strictly inside the second frame (a cut exactly
        // on the boundary is a clean EOF): the first frame survives and the
        // tear is reported at the second frame's start.
        for cut in second_at as usize + 1..file.len() {
            let mut n = 0;
            let end = read_frames(&mut &file[HEADER_LEN as usize..cut], HEADER_LEN, |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
            assert_eq!(end, FrameEnd::Torn { offset: second_at }, "cut at {cut}");
            assert_eq!(n, 1);
        }

        // Flip a payload byte in the second frame: CRC catches it.
        let mut corrupt = file.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        let end =
            read_frames(&mut &corrupt[HEADER_LEN as usize..], HEADER_LEN, |_, _| Ok(())).unwrap();
        assert_eq!(end, FrameEnd::Torn { offset: second_at });
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let h = encode_header(SEG_MAGIC, 42);
        assert_eq!(decode_header(&h, SEG_MAGIC).unwrap(), 42);
        assert!(decode_header(&h, CKPT_MAGIC).is_err());
        assert!(decode_header(&h[..10], SEG_MAGIC).is_err());
        let mut bad = h;
        bad[4] = 0xFF;
        assert!(decode_header(&bad, SEG_MAGIC).is_err());
    }
}

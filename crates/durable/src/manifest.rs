//! The durable manifest: the atomic commit point for checkpoints.
//!
//! `MANIFEST` names the current checkpoint (if any) and the highest
//! `seg_seq` it subsumes. It is rewritten via `MANIFEST.tmp` + fsync +
//! rename + directory fsync, so a crash leaves either the old or the new
//! manifest — never a torn one. Recovery trusts the manifest: segments with
//! `seg_seq` at or below `covered_seg_seq` are garbage awaiting deletion,
//! everything newer is replayed on top of the checkpoint.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use tell_common::{Error, Result};

use crate::segment::{crc32, io_err};

const MANIFEST_MAGIC: &[u8; 4] = b"TDMF";
/// Sentinel for "no checkpoint yet".
pub const NO_CHECKPOINT: u64 = u64::MAX;

/// Contents of a node's `MANIFEST` file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Current checkpoint id, or [`NO_CHECKPOINT`].
    pub checkpoint_id: u64,
    /// Highest `seg_seq` the checkpoint covers (0 when none).
    pub covered_seg_seq: u64,
}

impl Default for Manifest {
    fn default() -> Self {
        Manifest { checkpoint_id: NO_CHECKPOINT, covered_seg_seq: 0 }
    }
}

impl Manifest {
    fn path(dir: &Path) -> PathBuf {
        dir.join("MANIFEST")
    }

    /// Load the manifest, or the default when the file does not exist yet
    /// (fresh data dir). A present-but-corrupt manifest is an error: it
    /// means we can no longer tell which segments a checkpoint subsumed.
    pub fn load(dir: &Path) -> Result<Manifest> {
        let path = Self::path(dir);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Manifest::default()),
            Err(e) => return Err(io_err("open manifest", &e)),
        };
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(|e| io_err("read manifest", &e))?;
        if buf.len() != 24 || &buf[..4] != MANIFEST_MAGIC {
            return Err(Error::corrupt("malformed MANIFEST"));
        }
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if crc32(&buf[8..]) != crc {
            return Err(Error::corrupt("MANIFEST checksum mismatch"));
        }
        Ok(Manifest {
            checkpoint_id: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            covered_seg_seq: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
        })
    }

    /// Atomically replace the manifest: write `MANIFEST.tmp`, fsync it,
    /// rename over `MANIFEST`, fsync the directory.
    pub fn store(&self, dir: &Path) -> Result<()> {
        let mut buf = Vec::with_capacity(24);
        buf.extend_from_slice(MANIFEST_MAGIC);
        let mut body = [0u8; 16];
        body[..8].copy_from_slice(&self.checkpoint_id.to_le_bytes());
        body[8..].copy_from_slice(&self.covered_seg_seq.to_le_bytes());
        buf.extend_from_slice(&crc32(&body).to_le_bytes());
        buf.extend_from_slice(&body);

        let tmp = dir.join("MANIFEST.tmp");
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err("create manifest tmp", &e))?;
        file.write_all(&buf).map_err(|e| io_err("write manifest tmp", &e))?;
        file.sync_all().map_err(|e| io_err("sync manifest tmp", &e))?;
        drop(file);
        fs::rename(&tmp, Self::path(dir)).map_err(|e| io_err("rename manifest", &e))?;
        sync_dir(dir)
    }
}

/// fsync a directory so renames/creates inside it are durable.
pub fn sync_dir(dir: &Path) -> Result<()> {
    let d = File::open(dir).map_err(|e| io_err("open dir", &e))?;
    d.sync_all().map_err(|e| io_err("sync dir", &e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("tell-durable-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_manifest_is_default() {
        let dir = tmp_dir("missing");
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_then_load_roundtrips_and_replaces() {
        let dir = tmp_dir("roundtrip");
        let m1 = Manifest { checkpoint_id: 3, covered_seg_seq: 17 };
        m1.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m1);
        let m2 = Manifest { checkpoint_id: 4, covered_seg_seq: 29 };
        m2.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m2);
        assert!(!dir.join("MANIFEST.tmp").exists(), "tmp renamed away");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_an_error() {
        let dir = tmp_dir("corrupt");
        Manifest { checkpoint_id: 1, covered_seg_seq: 2 }.store(&dir).unwrap();
        let path = dir.join("MANIFEST");
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(Manifest::load(&dir).is_err());
        fs::write(&path, b"short").unwrap();
        assert!(Manifest::load(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}

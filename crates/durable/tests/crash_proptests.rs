//! Crash-recovery round-trips: arbitrary op sequences against the engine,
//! a crash at an arbitrary byte position (torn tail, truncated header,
//! corrupt CRC), and recovery must yield *exactly* the prefix of writes
//! whose frames survived — never a reordering, never a resurrection,
//! never a loss of an intact earlier frame.
//!
//! The expected state is computed from an independent model: each op's
//! framed length is derived from the public `LogRecord` encoding, so the
//! byte position of every frame boundary — and therefore the exact
//! surviving prefix for any cut — is known without consulting the engine.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use proptest::prelude::*;
use tell_durable::segment::{frame_into, HEADER_LEN};
use tell_durable::{DurableNode, DurableNodeConfig, FsyncPolicy, LogRecord};
use tell_store::{Cell, NodeDurability};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tell-durable-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(segment_bytes: u64) -> DurableNodeConfig {
    DurableNodeConfig {
        segment_bytes,
        // Crashes are simulated by truncating fully-written files, so the
        // fsync knob only costs wall time here.
        fsync: FsyncPolicy::Never,
        checkpoint_every: 0, // no checkpoints: frame positions stay modelable
        cache_bytes: 1 << 20,
        background_eviction: false,
    }
}

/// One modeled operation; `put` carries `(token, value)`, `None` deletes.
#[derive(Clone, Debug)]
struct Op {
    pid: u32,
    key: u8,
    put: Option<(u64, Vec<u8>)>,
}

fn ops_strategy(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u32..3, 0u8..6, proptest::option::of(proptest::collection::vec(any::<u8>(), 0..12))),
        1..max_len,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (pid, key, value))| Op { pid, key, put: value.map(|v| (i as u64 + 1, v)) })
            .collect()
    })
}

fn key_bytes(key: u8) -> Bytes {
    Bytes::from(vec![b'k', key])
}

/// Assign per-partition sequence numbers in op order (mirrors what the
/// store cluster does: one monotone counter per partition).
fn with_seqs(ops: &[Op]) -> Vec<(Op, u64)> {
    let mut next: BTreeMap<u32, u64> = BTreeMap::new();
    ops.iter()
        .map(|op| {
            let seq = next.entry(op.pid).or_insert(0);
            *seq += 1;
            (op.clone(), *seq)
        })
        .collect()
}

/// The framed length of one op, computed from the public encoding.
fn frame_len(op: &Op, seq: u64) -> u64 {
    let rec = match &op.put {
        Some((token, value)) => LogRecord::Put {
            pid: op.pid,
            seq,
            key: key_bytes(op.key),
            cell: Cell { token: *token, value: Bytes::from(value.clone()) },
        },
        None => LogRecord::Delete { pid: op.pid, seq, key: key_bytes(op.key) },
    };
    let mut payload = Vec::new();
    rec.encode_into(&mut payload);
    let mut framed = Vec::new();
    frame_into(&mut framed, &payload);
    framed.len() as u64
}

/// Per-partition expected image after applying the first `k` ops.
#[derive(Debug, Default, PartialEq, Eq)]
struct PartModel {
    applied_seq: u64,
    max_token: u64,
    entries: BTreeMap<Bytes, Cell>,
}

fn model(seqd: &[(Op, u64)], k: usize) -> BTreeMap<u32, PartModel> {
    let mut parts: BTreeMap<u32, PartModel> = BTreeMap::new();
    for (op, seq) in &seqd[..k] {
        let part = parts.entry(op.pid).or_default();
        part.applied_seq = part.applied_seq.max(*seq);
        match &op.put {
            Some((token, value)) => {
                part.max_token = part.max_token.max(*token);
                part.entries.insert(
                    key_bytes(op.key),
                    Cell { token: *token, value: Bytes::from(value.clone()) },
                );
            }
            None => {
                part.entries.remove(&key_bytes(op.key));
            }
        }
    }
    parts
}

/// Write every op through a live engine, then drop it.
fn write_all_ops(dir: &Path, seqd: &[(Op, u64)], segment_bytes: u64) {
    let (node, recovered) =
        DurableNode::open(dir.to_path_buf(), config(segment_bytes)).expect("open fresh engine");
    assert!(recovered.is_empty(), "fresh dir must recover nothing");
    for (op, seq) in seqd {
        let cell = op
            .put
            .as_ref()
            .map(|(token, value)| Cell { token: *token, value: Bytes::from(value.clone()) });
        node.record(op.pid, *seq, &key_bytes(op.key), cell.as_ref()).expect("record");
    }
}

/// Recover `dir` and compare the result against `expected`.
fn check_recovery(dir: PathBuf, expected: &BTreeMap<u32, PartModel>) -> Result<(), TestCaseError> {
    let (_node, recovered) = DurableNode::open(dir, config(1 << 30)).expect("recovery open");
    let mut got: BTreeMap<u32, PartModel> = BTreeMap::new();
    for part in recovered {
        let entries = part.entries.into_iter().collect();
        got.insert(
            part.pid,
            PartModel { applied_seq: part.applied_seq, max_token: part.max_token, entries },
        );
    }
    prop_assert_eq!(&got, expected);
    Ok(())
}

/// Segment files present in `dir`, as `(slot, path)` sorted by slot.
fn segments(dir: &Path) -> Vec<(u32, PathBuf)> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir).expect("read data dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if let Some(slot) = name.strip_prefix("seg-").and_then(|s| s.strip_suffix(".log")) {
            segs.push((slot.parse().expect("slot number"), path));
        }
    }
    segs.sort();
    segs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single segment, crash = truncation at any byte (including inside
    /// the header): recovery yields exactly the frames fully below the
    /// cut.
    #[test]
    fn truncation_recovers_the_exact_prefix(
        ops in ops_strategy(40),
        cut_sel in any::<u64>(),
    ) {
        let seqd = with_seqs(&ops);
        let dir = fresh_dir("trunc");
        write_all_ops(&dir, &seqd, 1 << 30);

        // Frame boundaries: file length after each op.
        let mut ends = Vec::with_capacity(seqd.len());
        let mut at = HEADER_LEN;
        for (op, seq) in &seqd {
            at += frame_len(op, *seq);
            ends.push(at);
        }
        let total = at;
        let cut = cut_sel % (total + 1);
        let k = ends.iter().filter(|&&e| e <= cut).count();

        let segs = segments(&dir);
        prop_assert_eq!(segs.len(), 1, "single-segment config rotated");
        let file = fs::OpenOptions::new().write(true).open(&segs[0].1).expect("open segment");
        prop_assert_eq!(file.metadata().expect("metadata").len(), total);
        file.set_len(cut).expect("truncate");
        drop(file);

        check_recovery(dir.clone(), &model(&seqd, k))?;
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Single segment, crash = one byte flipped anywhere past the header:
    /// the CRC rejects the containing frame and everything after it, and
    /// every intact frame before it survives.
    #[test]
    fn corrupt_crc_drops_the_frame_and_its_suffix(
        ops in ops_strategy(40),
        pos_sel in any::<u64>(),
    ) {
        let seqd = with_seqs(&ops);
        let dir = fresh_dir("crc");
        write_all_ops(&dir, &seqd, 1 << 30);

        let mut ends = Vec::with_capacity(seqd.len());
        let mut at = HEADER_LEN;
        for (op, seq) in &seqd {
            at += frame_len(op, *seq);
            ends.push(at);
        }
        let total = at;
        let pos = HEADER_LEN + pos_sel % (total - HEADER_LEN);
        let k = ends.iter().filter(|&&e| e <= pos).count();

        let segs = segments(&dir);
        prop_assert_eq!(segs.len(), 1, "single-segment config rotated");
        let mut bytes = fs::read(&segs[0].1).expect("read segment");
        bytes[pos as usize] ^= 0xff;
        fs::write(&segs[0].1, &bytes).expect("write corrupted segment");

        check_recovery(dir.clone(), &model(&seqd, k))?;
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Multiple segments, crash = truncating the *active* (newest) one at
    /// any byte: every sealed segment replays in full, and the active
    /// segment contributes exactly its surviving frames.
    #[test]
    fn multi_segment_truncation_keeps_all_sealed_frames(
        ops in ops_strategy(60),
        cut_sel in any::<u64>(),
    ) {
        const SEG_BYTES: u64 = 200;
        let seqd = with_seqs(&ops);
        let dir = fresh_dir("multi");
        write_all_ops(&dir, &seqd, SEG_BYTES);

        // Mirror rotation: a frame is appended to the current segment,
        // then the segment rotates once its length reaches SEG_BYTES. Track
        // which ops land in the final (active) segment and the in-file end
        // offset of each.
        let mut seg_start = 0usize; // index of the first op in the current segment
        let mut at = HEADER_LEN;
        let mut ends: Vec<u64> = Vec::new(); // per-op end offset within its segment
        for (i, (op, seq)) in seqd.iter().enumerate() {
            at += frame_len(op, *seq);
            ends.push(at);
            if at >= SEG_BYTES && i + 1 < seqd.len() {
                seg_start = i + 1;
                at = HEADER_LEN;
            }
        }
        // If the last op itself triggered rotation the active segment is
        // empty and `seg_start` of the *active* segment is past the end.
        let last_rotated = *ends.last().expect("non-empty ops") >= SEG_BYTES;
        let (active_start, active_len) =
            if last_rotated { (seqd.len(), HEADER_LEN) } else { (seg_start, at) };

        let segs = segments(&dir);
        let (_, active_path) = segs.last().expect("at least one segment");
        let file = fs::OpenOptions::new().write(true).open(active_path).expect("open active");
        prop_assert_eq!(file.metadata().expect("metadata").len(), active_len);
        let cut = cut_sel % (active_len + 1);
        file.set_len(cut).expect("truncate");
        drop(file);

        let k = active_start
            + ends[active_start..].iter().filter(|&&e| e <= cut).count();
        check_recovery(dir.clone(), &model(&seqd, k))?;
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

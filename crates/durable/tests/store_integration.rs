//! End-to-end: StoreCluster wired to the real log-structured engine via
//! [`FsDurability`] — acked writes survive killing every copy-holder and
//! restarting nodes from their data directories.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use tell_common::SnId;
use tell_durable::{DurableNodeConfig, FsDurability, FsyncPolicy};
use tell_store::cluster::{Expect, Mutation};
use tell_store::{StoreCluster, StoreConfig};

fn test_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tell-durable-int-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn tiny_engine_config() -> DurableNodeConfig {
    DurableNodeConfig {
        segment_bytes: 512,
        fsync: FsyncPolicy::Always,
        checkpoint_every: 32,
        cache_bytes: 1 << 20,
        background_eviction: false,
    }
}

fn durable_config(root: &Path, nodes: usize, rf: usize) -> StoreConfig {
    StoreConfig::new(nodes)
        .replication(rf)
        .durability(FsDurability::new(root.to_path_buf(), tiny_engine_config()) as _)
}

fn k(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn acked_writes_survive_whole_cluster_restart() {
    let root = test_root("cluster-restart");
    {
        let c = StoreCluster::new(durable_config(&root, 3, 2));
        for i in 0..100u32 {
            let key = Bytes::from(format!("key-{i:03}"));
            c.srv_write(&key, Expect::Absent, Mutation::Put(k(&format!("val-{i}")))).unwrap();
        }
        // Overwrite some, delete some: recovery must replay the latest.
        for i in (0..100u32).step_by(7) {
            let key = format!("key-{i:03}");
            let (t, _) = c.srv_read(key.as_bytes()).unwrap().unwrap();
            c.srv_write(&k(&key), Expect::Token(t), Mutation::Put(k("updated"))).unwrap();
        }
        for i in (0..100u32).step_by(11) {
            let key = format!("key-{i:03}");
            c.srv_write(&k(&key), Expect::Any, Mutation::Delete).unwrap();
        }
    }
    // Whole-process "restart": a fresh cluster over the same data dirs.
    let c = StoreCluster::new(durable_config(&root, 3, 2));
    for i in 0..100u32 {
        let key = format!("key-{i:03}");
        let got = c.srv_read(key.as_bytes()).unwrap();
        if i % 11 == 0 {
            assert_eq!(got, None, "{key} was deleted before the restart");
        } else if i % 7 == 0 {
            assert_eq!(got.unwrap().1, k("updated"), "{key} lost its last update");
        } else {
            assert_eq!(got.unwrap().1, k(&format!("val-{i}")), "{key} lost its value");
        }
    }
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn kill_all_copy_holders_then_restart_from_log() {
    let root = test_root("kill-all");
    let c = StoreCluster::new(durable_config(&root, 2, 2));
    for i in 0..40u32 {
        let key = Bytes::from(format!("k{i}"));
        c.srv_write(&key, Expect::Absent, Mutation::Put(k("v"))).unwrap();
    }
    // Every copy-holder of every partition dies.
    c.kill_node(SnId(0));
    c.kill_node(SnId(1));
    assert!(c.srv_read(b"k0").is_err(), "nothing alive to serve");
    // In-memory-only, this was contract-excluded data loss. With the log
    // tier it is a recoverable scenario.
    c.restart_node_from_log(SnId(0)).unwrap();
    c.restart_node_from_log(SnId(1)).unwrap();
    for i in 0..40u32 {
        let key = format!("k{i}");
        assert!(c.srv_read(key.as_bytes()).unwrap().is_some(), "lost {key}");
    }
    // And the partitions accept new writes with monotonic tokens.
    let (t, _) = c.srv_read(b"k3").unwrap().unwrap();
    c.srv_write(&k("k3"), Expect::Token(t), Mutation::Put(k("post-restart"))).unwrap();
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn restarted_node_does_not_resurrect_writes_acked_after_its_death() {
    let root = test_root("no-resurrect");
    let c = StoreCluster::new(durable_config(&root, 2, 2));
    c.srv_write(&k("x"), Expect::Absent, Mutation::Put(k("first"))).unwrap();
    c.kill_node(SnId(0));
    // Acked while node 0 is down: only node 1's copy and log see it.
    let (t, _) = c.srv_read(b"x").unwrap().unwrap();
    c.srv_write(&k("x"), Expect::Token(t), Mutation::Put(k("second"))).unwrap();
    // Node 0 restarts from a log that predates "second": its copy must
    // catch up from node 1 rather than serve "first".
    c.restart_node_from_log(SnId(0)).unwrap();
    c.kill_node(SnId(1));
    let (_, val) = c.srv_read(b"x").unwrap().unwrap();
    assert_eq!(val, k("second"));
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn increments_are_durable() {
    let root = test_root("counter");
    let key = tell_store::keys::counter("tid");
    {
        let c = StoreCluster::new(durable_config(&root, 1, 1));
        for _ in 0..10 {
            c.srv_increment(&key, 3).unwrap();
        }
        assert_eq!(c.srv_increment(&key, 0).unwrap(), 30);
    }
    let c = StoreCluster::new(durable_config(&root, 1, 1));
    assert_eq!(c.srv_increment(&key, 12).unwrap(), 42, "counter recovered then advanced");
    fs::remove_dir_all(&root).unwrap();
}

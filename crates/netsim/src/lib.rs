//! Virtual-time network model.
//!
//! The paper's scalability results hinge on network latency budgets: a
//! transaction's running time is dominated by `#round-trips × RTT` plus CPU
//! work, and the InfiniBand-vs-Ethernet experiment (Fig 10) is entirely a
//! latency experiment. This crate models that budget in *simulated
//! microseconds*:
//!
//! * [`NetworkProfile`] describes a fabric (RTT, bandwidth, per-op CPU).
//! * [`NetMeter`] charges request costs against a worker's
//!   [`tell_common::SimClock`] and keeps traffic counters, so benchmark
//!   harnesses can report bandwidth utilisation like §6.6 does.
//! * [`resources`] models serial resources (partition executors, a
//!   centralized sequencer) for the baseline engines, in the same virtual
//!   time base.

pub mod meter;
pub mod profile;
pub mod resources;

pub use meter::{NetMeter, TrafficStats};
pub use profile::NetworkProfile;
pub use resources::ResourcePool;

//! Serial-resource modelling for the baseline engines.
//!
//! The partitioned baselines (VoltDB-like, MySQL-Cluster-like) and the
//! FoundationDB-like centralized validator are simulated single-threadedly in
//! virtual time: each partition executor / data node / sequencer is a serial
//! resource that can serve one request at a time. [`ResourcePool`] tracks
//! when each resource next becomes free and computes queueing delays — this
//! is what produces VoltDB's sky-high multi-partition latencies in Table 4
//! without hand-tuning them.

/// A set of serial resources identified by dense indices.
#[derive(Clone, Debug)]
pub struct ResourcePool {
    free_at_us: Vec<f64>,
    busy_us: Vec<f64>,
}

impl ResourcePool {
    /// `n` resources, all free at time zero.
    pub fn new(n: usize) -> Self {
        ResourcePool { free_at_us: vec![0.0; n], busy_us: vec![0.0; n] }
    }

    /// Number of resources.
    pub fn len(&self) -> usize {
        self.free_at_us.len()
    }

    /// True when the pool has no resources.
    pub fn is_empty(&self) -> bool {
        self.free_at_us.is_empty()
    }

    /// Occupy resource `id` for `service_us`, starting no earlier than
    /// `arrival_us` and no earlier than the resource is free. Returns the
    /// completion time.
    pub fn occupy(&mut self, id: usize, arrival_us: f64, service_us: f64) -> f64 {
        let start = self.free_at_us[id].max(arrival_us);
        let done = start + service_us;
        self.free_at_us[id] = done;
        self.busy_us[id] += service_us;
        done
    }

    /// Occupy *all* of `ids` simultaneously (a multi-partition transaction in
    /// an H-Store-style engine): execution starts once every involved
    /// resource is free, and all of them are blocked until it completes.
    pub fn occupy_all(&mut self, ids: &[usize], arrival_us: f64, service_us: f64) -> f64 {
        let start = ids.iter().map(|&i| self.free_at_us[i]).fold(arrival_us, f64::max);
        let done = start + service_us;
        for &i in ids {
            self.free_at_us[i] = done;
            self.busy_us[i] += service_us;
        }
        done
    }

    /// Time when resource `id` is next free.
    pub fn free_at(&self, id: usize) -> f64 {
        self.free_at_us[id]
    }

    /// Accumulated service time of resource `id` (utilisation numerator).
    pub fn busy_time(&self, id: usize) -> f64 {
        self.busy_us[id]
    }

    /// Latest completion time across all resources.
    pub fn horizon(&self) -> f64 {
        self.free_at_us.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_resource_queues() {
        let mut p = ResourcePool::new(1);
        assert_eq!(p.occupy(0, 0.0, 10.0), 10.0);
        assert_eq!(p.occupy(0, 0.0, 10.0), 20.0);
        assert_eq!(p.occupy(0, 100.0, 10.0), 110.0);
        assert_eq!(p.busy_time(0), 30.0);
    }

    #[test]
    fn independent_resources_run_in_parallel() {
        let mut p = ResourcePool::new(2);
        assert_eq!(p.occupy(0, 0.0, 10.0), 10.0);
        assert_eq!(p.occupy(1, 0.0, 10.0), 10.0);
        assert_eq!(p.horizon(), 10.0);
    }

    #[test]
    fn occupy_all_waits_for_stragglers_and_blocks_everyone() {
        let mut p = ResourcePool::new(3);
        p.occupy(2, 0.0, 50.0); // partition 2 busy until t=50
                                // Multi-partition txn arriving at t=0 must wait for partition 2...
        let done = p.occupy_all(&[0, 1, 2], 0.0, 5.0);
        assert_eq!(done, 55.0);
        // ...and meanwhile partitions 0 and 1 were unable to serve others.
        assert_eq!(p.free_at(0), 55.0);
        assert_eq!(p.free_at(1), 55.0);
        // A single-partition txn behind it queues.
        assert_eq!(p.occupy(0, 1.0, 5.0), 60.0);
    }

    #[test]
    fn horizon_is_latest_completion() {
        let mut p = ResourcePool::new(2);
        p.occupy(0, 0.0, 3.0);
        p.occupy(1, 0.0, 9.0);
        assert_eq!(p.horizon(), 9.0);
    }
}

//! Per-worker request metering.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tell_common::SimClock;

use crate::profile::NetworkProfile;

/// Cluster-wide traffic counters, shared across all [`NetMeter`]s of a run.
/// Lets the harness report per-SN bandwidth the way §6.6 does ("total
/// bandwidth usage of one SN is ... MB/s").
#[derive(Debug, Default)]
pub struct TrafficStats {
    pub requests: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub bytes_received: AtomicU64,
    pub replication_bytes: AtomicU64,
    /// Read record operations (get / multi-get / scans), for workload
    /// write-ratio reporting (Table 2 of the paper).
    pub read_ops: AtomicU64,
    /// Write record operations (puts, conditional writes, increments).
    pub write_ops: AtomicU64,
}

impl TrafficStats {
    /// Fresh counters.
    pub fn new() -> Arc<Self> {
        Arc::new(TrafficStats::default())
    }

    /// Total bytes moved in either direction (excluding replication traffic).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed) + self.bytes_received.load(Ordering::Relaxed)
    }

    /// Number of request/response exchanges.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Fraction of record operations that are writes.
    pub fn write_ratio(&self) -> f64 {
        let r = self.read_ops.load(Ordering::Relaxed) as f64;
        let w = self.write_ops.load(Ordering::Relaxed) as f64;
        if r + w == 0.0 {
            0.0
        } else {
            w / (r + w)
        }
    }

    /// Count `n` read operations.
    pub fn note_reads(&self, n: u64) {
        self.read_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` write operations.
    pub fn note_writes(&self, n: u64) {
        self.write_ops.fetch_add(n, Ordering::Relaxed);
    }
}

/// Charges network costs for one worker thread against its [`SimClock`].
///
/// One `NetMeter` exists per storage-client handle; all meters of a benchmark
/// run share a [`TrafficStats`].
#[derive(Clone)]
pub struct NetMeter {
    profile: NetworkProfile,
    clock: SimClock,
    stats: Arc<TrafficStats>,
}

impl NetMeter {
    /// New meter over `profile`, charging `clock`.
    pub fn new(profile: NetworkProfile, clock: SimClock, stats: Arc<TrafficStats>) -> Self {
        NetMeter { profile, clock, stats }
    }

    /// Meter with zero-cost profile, for unit tests.
    pub fn free() -> Self {
        NetMeter::new(NetworkProfile::zero(), SimClock::new(), TrafficStats::new())
    }

    /// The fabric this meter charges for.
    pub fn profile(&self) -> &NetworkProfile {
        &self.profile
    }

    /// The worker clock being charged.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Shared traffic counters.
    pub fn stats(&self) -> &Arc<TrafficStats> {
        &self.stats
    }

    /// Charge one request/response exchange: `out` bytes to the server,
    /// `inn` bytes back, plus `server_ops` served operations (a batch of `k`
    /// gets is one exchange with `k` server ops). Returns the cost charged.
    pub fn charge_request(&self, out: usize, inn: usize, server_ops: usize) -> f64 {
        let bytes = out + inn;
        let cost = self.profile.rtt_us
            + bytes as f64 / self.profile.bandwidth_bytes_per_us
            + self.profile.server_op_us * server_ops.max(1) as f64;
        self.clock.advance(cost);
        tell_obs::prof::sim_tick(self.clock.now_us());
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(out as u64, Ordering::Relaxed);
        self.stats.bytes_received.fetch_add(inn as u64, Ordering::Relaxed);
        // A simulated latency spike (wan profile, fault injection) surfaces
        // here: the exchange cost blows past the slow-op budget and the
        // line carries the transaction's trace id. Deliberately only the
        // threshold check — no histogram — because this runs on every
        // simulated exchange and a per-call record would dominate the
        // instrumentation budget.
        tell_obs::slowlog::check("net.exchange", cost);
        cost
    }

    /// Charge synchronous replication of `bytes` to `replicas` backups.
    pub fn charge_replication(&self, replicas: usize, bytes: usize) -> f64 {
        let cost = self.profile.replication_cost_us(replicas, bytes);
        self.clock.advance(cost);
        tell_obs::prof::sim_tick(self.clock.now_us());
        self.stats.replication_bytes.fetch_add((replicas * bytes) as u64, Ordering::Relaxed);
        cost
    }

    /// Charge pure local CPU work (record deserialization, predicate
    /// evaluation...). Kept on the meter so all time flows through one place.
    pub fn charge_cpu(&self, us: f64) {
        self.clock.advance(us);
        tell_obs::prof::sim_tick(self.clock.now_us());
    }

    /// Record an exchange that happened over a *real* transport (tell-rpc).
    /// Wall-clock time was already spent on the wire, so the virtual clock
    /// is **not** advanced — charging simulated latency on top of real
    /// latency would double-count. Only the shared traffic counters are
    /// updated, so bandwidth/write-ratio reporting keeps working when PNs
    /// run against remote storage nodes.
    pub fn charge_real(&self, out: usize, inn: usize) {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(out as u64, Ordering::Relaxed);
        self.stats.bytes_received.fetch_add(inn as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_charges_clock_and_counters() {
        let clock = SimClock::new();
        let stats = TrafficStats::new();
        let m = NetMeter::new(NetworkProfile::infiniband(), clock.clone(), Arc::clone(&stats));
        let c = m.charge_request(100, 400, 1);
        assert!(c > 0.0);
        assert_eq!(clock.now_us(), c);
        assert_eq!(stats.request_count(), 1);
        assert_eq!(stats.total_bytes(), 500);
    }

    #[test]
    fn batch_is_cheaper_than_individual_requests() {
        let profile = NetworkProfile::infiniband();
        let batched = {
            let m = NetMeter::new(profile.clone(), SimClock::new(), TrafficStats::new());
            m.charge_request(10 * 64, 10 * 256, 10);
            m.clock().now_us()
        };
        let individual = {
            let m = NetMeter::new(profile, SimClock::new(), TrafficStats::new());
            for _ in 0..10 {
                m.charge_request(64, 256, 1);
            }
            m.clock().now_us()
        };
        assert!(
            batched < individual / 3.0,
            "batching must amortize round trips: batched={batched} individual={individual}"
        );
    }

    #[test]
    fn replication_tracked_separately() {
        let stats = TrafficStats::new();
        let m = NetMeter::new(NetworkProfile::infiniband(), SimClock::new(), Arc::clone(&stats));
        m.charge_replication(2, 1000);
        assert_eq!(stats.replication_bytes.load(Ordering::Relaxed), 2000);
        assert_eq!(stats.total_bytes(), 0);
        assert!(m.clock().now_us() > 0.0);
    }

    #[test]
    fn charge_real_counts_traffic_without_advancing_time() {
        let stats = TrafficStats::new();
        let m = NetMeter::new(NetworkProfile::infiniband(), SimClock::new(), Arc::clone(&stats));
        m.charge_real(128, 512);
        assert_eq!(m.clock().now_us(), 0.0, "real transport must not advance virtual time");
        assert_eq!(stats.request_count(), 1);
        assert_eq!(stats.total_bytes(), 640);
    }

    #[test]
    fn free_meter_is_free() {
        let m = NetMeter::free();
        m.charge_request(1 << 20, 1 << 20, 100);
        m.charge_replication(3, 1 << 20);
        assert_eq!(m.clock().now_us(), 0.0);
    }
}

//! Network fabric profiles.

/// Cost parameters of a cluster fabric, in microseconds and bytes.
///
/// A storage request of `n` bytes payload costs
/// `rtt_us + n / bandwidth_bytes_per_us + server_op_us` on the caller's
/// clock; synchronous replication adds `replica_rtt_us` per replica per
/// written object (the master forwards each object to its backups before
/// acknowledging).
#[derive(Clone, Debug, PartialEq)]
pub struct NetworkProfile {
    /// Human-readable name used in benchmark output.
    pub name: &'static str,
    /// Round-trip latency between a processing node and a storage node.
    pub rtt_us: f64,
    /// Usable bandwidth per link.
    pub bandwidth_bytes_per_us: f64,
    /// Server-side cost to serve one operation (hash-table lookup etc.).
    pub server_op_us: f64,
    /// Extra latency for the master to reach its replicas (same fabric, so
    /// usually equal to `rtt_us`).
    pub replica_rtt_us: f64,
}

impl NetworkProfile {
    /// 40 Gbit QDR InfiniBand with RDMA (§6.1): a few microseconds per
    /// round trip, OS network stack bypassed.
    pub fn infiniband() -> Self {
        NetworkProfile {
            name: "InfiniBand",
            rtt_us: 7.0,
            // 40 Gbit/s ~ 5 GB/s; leave headroom for protocol overhead.
            bandwidth_bytes_per_us: 4000.0,
            server_op_us: 1.0,
            // The master->backup write path is a regular RPC, not the RDMA
            // fast path, and is paid per replicated object (RamCloud's
            // synchronous backup, §4.4.2).
            replica_rtt_us: 20.0,
        }
    }

    /// 10 Gbit Ethernet through the kernel TCP stack (Fig 10): roughly an
    /// order of magnitude higher RTT than RDMA.
    pub fn ethernet_10g() -> Self {
        NetworkProfile {
            name: "10GbE",
            rtt_us: 75.0,
            bandwidth_bytes_per_us: 1000.0,
            server_op_us: 2.0,
            replica_rtt_us: 110.0,
        }
    }

    /// Generic datacenter TCP fabric used by the FoundationDB-like baseline,
    /// which does not exploit RDMA.
    pub fn tcp_datacenter() -> Self {
        NetworkProfile {
            name: "TCP-DC",
            rtt_us: 120.0,
            bandwidth_bytes_per_us: 1000.0,
            server_op_us: 2.0,
            replica_rtt_us: 120.0,
        }
    }

    /// Cross-datacenter WAN (documented as out of scope in §2.3; available
    /// so tests can demonstrate *why* it is out of scope).
    pub fn wan() -> Self {
        NetworkProfile {
            name: "WAN",
            rtt_us: 50_000.0,
            bandwidth_bytes_per_us: 125.0,
            server_op_us: 2.0,
            replica_rtt_us: 50_000.0,
        }
    }

    /// Zero-cost profile for unit tests that do not care about timing.
    pub fn zero() -> Self {
        NetworkProfile {
            name: "zero",
            rtt_us: 0.0,
            bandwidth_bytes_per_us: f64::INFINITY,
            server_op_us: 0.0,
            replica_rtt_us: 0.0,
        }
    }

    /// Cost of one request/response exchange carrying `bytes` bytes total.
    #[inline]
    pub fn request_cost_us(&self, bytes: usize) -> f64 {
        self.rtt_us + bytes as f64 / self.bandwidth_bytes_per_us + self.server_op_us
    }

    /// Additional cost when the request must be synchronously replicated.
    #[inline]
    pub fn replication_cost_us(&self, replicas: usize, bytes: usize) -> f64 {
        if replicas == 0 {
            0.0
        } else {
            // The master forwards the object to each backup before acking;
            // the measured RF2/RF3 penalty in Fig 5 matches a per-replica
            // cost, not a parallel single round trip.
            replicas as f64 * (self.replica_rtt_us + bytes as f64 / self.bandwidth_bytes_per_us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infiniband_is_much_faster_than_ethernet() {
        let ib = NetworkProfile::infiniband();
        let eth = NetworkProfile::ethernet_10g();
        assert!(eth.request_cost_us(128) / ib.request_cost_us(128) > 5.0);
    }

    #[test]
    fn replication_cost_scales_with_replica_count() {
        let ib = NetworkProfile::infiniband();
        let one = ib.replication_cost_us(1, 1000);
        let two = ib.replication_cost_us(2, 1000);
        assert!((two - 2.0 * one).abs() < 1e-9);
        assert_eq!(ib.replication_cost_us(0, 1000), 0.0);
    }

    #[test]
    fn zero_profile_costs_nothing() {
        let z = NetworkProfile::zero();
        assert_eq!(z.request_cost_us(1 << 20), 0.0);
        assert_eq!(z.replication_cost_us(3, 1 << 20), 0.0);
    }

    #[test]
    fn large_payloads_are_bandwidth_bound() {
        let ib = NetworkProfile::infiniband();
        let small = ib.request_cost_us(100);
        let large = ib.request_cost_us(10_000_000);
        assert!(large > small * 10.0);
    }
}

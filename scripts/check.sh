#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> bench JSON smoke (scripts/bench_report.sh --smoke)"
scripts/bench_report.sh --smoke

echo "==> trace smoke (tell_trace against a loopback cluster)"
# The example validates the emitted Chrome trace-event JSON and exits
# nonzero when it is malformed or no trace was assembled.
cargo run -q --example tell_trace -- --loopback --txns 4 > /dev/null

echo "All checks passed."

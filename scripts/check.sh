#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

# Deterministic fault-schedule simulation smoke (crates/sim): three fixed
# seeds cover the fault-free, SN-churn and CM-restart schedules. The
# verdict line is bit-reproducible per seed, so a change in behavior —
# not just an SI violation — shows up as a diff here. A long nightly run
# (not gated; violations there open issues rather than block merges) is
#   cargo run --release --example tell_sim -- --seed "$(date +%s)" --seconds 30 --faults all
run_sim_smoke() {
  echo "==> sim smoke (tell_sim seeds 1/none 2/sn 3/cm)"
  cargo build -q --example tell_sim
  cargo run -q --example tell_sim -- --seed 1 --seconds 0.2 --faults none
  cargo run -q --example tell_sim -- --seed 2 --seconds 0.2 --faults sn
  cargo run -q --example tell_sim -- --seed 3 --seconds 0.2 --faults cm

  # Isolation matrix: three fixed seeds x four levels, each cell checked
  # against its own oracle plus every weaker one, and re-run to prove the
  # history JSON and stats are bit-reproducible (crates/sim/tests/
  # isolation_matrix.rs holds the seed list).
  echo "==> isolation matrix (3 seeds x 4 levels, per-level oracles, bit-reproducible)"
  cargo test -q -p tell-sim --test isolation_matrix
}

if [[ "${1:-}" == "--sim" ]]; then
  run_sim_smoke
  exit 0
fi

# Durable-tier gate (crates/durable + the seams it plugs into): the
# crash-recovery proptests at a reduced case count, the over-TCP
# kill/restart test, and one durable sim seed whose death budget exceeds
# rf-1 — a schedule only log recovery can survive.
run_durable_gate() {
  echo "==> durable gate (crash proptests, e2e restart, durable sim seed)"
  PROPTEST_CASES=8 cargo test -q -p tell-durable --test crash_proptests
  cargo test -q -p tell-rpc --test durable_restart
  cargo run -q --example tell_sim -- --seed 4 --seconds 0.2 --faults sn --durable
}

if [[ "${1:-}" == "--durable" ]]; then
  run_durable_gate
  exit 0
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q"
cargo test -q

echo "==> rpc e2e (reactor lifecycle, wire proptests, client/server suite)"
# Named explicitly even though the workspace run above includes them: the
# reactor's failure-shape tests (shutdown under load, peers dying
# mid-frame, backpressure) are the gate for any transport change, and an
# explicit invocation keeps them from silently falling out of the suite.
cargo test -q -p tell-rpc --test e2e --test reactor_e2e --test wire_proptests

echo "==> bench JSON smoke (scripts/bench_report.sh --smoke)"
scripts/bench_report.sh --smoke

echo "==> trace smoke (tell_trace against a loopback cluster)"
# The example validates the emitted Chrome trace-event JSON and exits
# nonzero when it is malformed or no trace was assembled.
cargo run -q --example tell_trace -- --loopback --txns 4 > /dev/null

echo "==> telemetry smoke (tell_top --json against a loopback cluster)"
# One collector poll over Request::Telemetry against an in-process SN+CM
# pair: both nodes must answer and the snapshot must carry ring points.
top_json="$(cargo run -q --example tell_top -- --loopback --json)"
if [[ "$top_json" != *'"reachable":true'* || "$top_json" != *'"polls":1'* ]]; then
  echo "error: tell_top --loopback --json returned an unhealthy snapshot:" >&2
  echo "$top_json" >&2
  exit 1
fi

echo "==> profiler smoke (tell_flame --loopback over the wire)"
# Boot a loopback cluster, start/fetch/stop the profiler through the
# Profile wire ops, and require a valid non-empty folded payload that
# saw the transaction path. parse_folded in the example already rejects
# malformed lines; here we also pin the content.
flame_folded="$(cargo run -q --example tell_flame -- --loopback 2>/dev/null)"
if [[ "$flame_folded" != *'txn'* || "$flame_folded" != *'rpc.dispatch'* ]]; then
  echo "error: tell_flame --loopback produced no transaction/dispatch stacks:" >&2
  echo "$flame_folded" >&2
  exit 1
fi

echo "==> profiled sim replay (bit-identical folded output, seed 5)"
prof_a="$(cargo run -q --example tell_sim -- --seed 5 --seconds 0.1 --profile)"
prof_b="$(cargo run -q --example tell_sim -- --seed 5 --seconds 0.1 --profile)"
if [[ "$prof_a" != "$prof_b" || "$prof_a" != *'txn'* ]]; then
  echo "error: profiled sim replay diverged or sampled nothing" >&2
  diff <(echo "$prof_a") <(echo "$prof_b") >&2 || true
  exit 1
fi

run_sim_smoke

run_durable_gate

echo "All checks passed."

#!/usr/bin/env bash
# Run benches with machine-readable output: every participating bench
# writes a BENCH_<name>.json snapshot (driver report + the process-global
# metrics registry) into $TELL_BENCH_JSON.
#
# Usage:
#   scripts/bench_report.sh            # default-size run into the repo root
#   scripts/bench_report.sh --smoke    # tiny run used by scripts/check.sh
#   TELL_BENCH_JSON=/tmp/x scripts/bench_report.sh   # custom output dir
#
# The default output dir is the repo root on purpose: the BENCH_*.json
# snapshots are committed, so every checked-in change carries the bench
# trajectory it produced.
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="${TELL_BENCH_JSON:-.}"
mkdir -p "$out_dir"
# Absolutize: cargo runs benches with the package dir as cwd, so a
# relative path would land the snapshots in crates/bench/.
out_dir="$(cd "$out_dir" && pwd)"
export TELL_BENCH_JSON="$out_dir"

if [[ "${1:-}" == "--smoke" ]]; then
  # Small enough to ride along in scripts/check.sh.
  export TELL_BENCH_SCALE=tiny
  export TELL_BENCH_WH=2
  export TELL_BENCH_TXNS=20
  export TELL_BENCH_WORKERS=1
fi

cargo bench -q -p tell-bench --bench table2_mixes

# Durable-tier characterization: restart recovery time vs log size (with
# and without checkpoints) and LRU hit rate under an 80/20 read skew.
cargo bench -q -p tell-bench --bench durable_recovery

# Real-wire server comparison: the epoll reactor vs the thread-per-
# connection baseline, in committed transactions per wall second at 4 and
# 64 concurrent connections (tiny scale shortens the measure window).
cargo bench -q -p tell-bench --bench rpc_reactor

# Telemetry rollup overhead: full update transactions with the ring
# roller at 50x the deployed cadence vs the roller idle, A-B-B-A paired
# blocks. Bounds the observability tier's hot-path cost at < 5 %.
cargo bench -q -p tell-bench --bench telemetry_overhead

# Profiler overhead: full update transactions with the logical-stack
# sampler at 10x the deployed 99 Hz default vs the sampler stopped,
# A-B-B-A paired blocks, plus the top contended locks (the commit path's
# cm.state must appear). Bounds the always-on profiler at < 3 %.
cargo bench -q -p tell-bench --bench prof_overhead

# Simulation throughput snapshot: how many transactions the deterministic
# fault-schedule harness pushes through the full stack per virtual and
# per wall second, under the all-faults mix. Fixed seed: the virtual-side
# numbers are reproducible; wall-side numbers track host speed.
sim_secs=0.5
[[ "${1:-}" == "--smoke" ]] && sim_secs=0.1
cargo run -q --release --example tell_sim -- --seed 1 --seconds "$sim_secs" \
  --faults all --bench-json "$out_dir/BENCH_sim_throughput.json" > /dev/null

# Isolation-level matrix: the same seeded fault-free workload once per
# level, so the snapshot shows what each level costs — commits per wall
# second and the abort rate climb together as the level strengthens
# (serializable certifies the read set; rc never promotes a snapshot).
# Virtual-side numbers are reproducible for the seed.
iso_field() { sed -n "s/^ *\"$2\": \([0-9.]*\),\{0,1\}\$/\1/p" "$1"; }
iso_out="$out_dir/BENCH_isolation_matrix.json"
{
  printf '{\n  "bench": "isolation_matrix",\n  "seed": 1,\n  "faults": "none",\n'
  printf '  "virtual_secs": %s,\n  "levels": {\n' "$sim_secs"
  sep=''
  for level in rc nmsi si serializable; do
    tmp="$out_dir/.bench_iso_$level.json"
    cargo run -q --release --example tell_sim -- --seed 1 --seconds "$sim_secs" \
      --isolation "$level" --bench-json "$tmp" > /dev/null
    txns="$(iso_field "$tmp" txns)"
    commits="$(iso_field "$tmp" commits)"
    aborts="$(iso_field "$tmp" aborts)"
    cpv="$(iso_field "$tmp" commits_per_virtual_sec)"
    cpw="$(iso_field "$tmp" commits_per_wall_sec)"
    rate="$(awk -v a="$aborts" -v t="$txns" 'BEGIN { printf "%.3f", t ? a / t : 0 }')"
    printf '%s    "%s": { "txns": %s, "commits": %s, "aborts": %s, "abort_rate": %s, "commits_per_virtual_sec": %s, "commits_per_wall_sec": %s }' \
      "$sep" "$level" "$txns" "$commits" "$aborts" "$rate" "$cpv" "$cpw"
    sep=$',\n'
    rm -f "$tmp"
  done
  printf '\n  }\n}\n'
} > "$iso_out"

shopt -s nullglob
files=("$out_dir"/BENCH_*.json)
if (( ${#files[@]} == 0 )); then
  echo "error: no BENCH_*.json snapshots were written to $out_dir" >&2
  exit 1
fi
echo "snapshots:"
for f in "${files[@]}"; do
  echo "  $f ($(wc -c <"$f") bytes)"
done

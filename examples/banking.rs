//! Concurrent banking under distributed snapshot isolation: many workers
//! transfer money between accounts from separate processing nodes; the
//! total balance is invariant, lost updates are impossible, and conflicts
//! are resolved by the storage layer's LL/SC conflict detection (§4.1).
//!
//! ```sh
//! cargo run --release --example banking
//! ```

use std::sync::Arc;

use bytes::Bytes;
use tell::common::Rid;
use tell::core::database::IndexSpec;
use tell::core::{Database, TellConfig};

const ACCOUNTS: u64 = 16;
const WORKERS: usize = 4;
const TRANSFERS_PER_WORKER: usize = 200;
const INITIAL: i64 = 1_000;

fn encode(balance: i64, id: u64) -> Bytes {
    let mut b = balance.to_be_bytes().to_vec();
    b.extend_from_slice(&id.to_be_bytes());
    Bytes::from(b)
}

fn balance_of(row: &[u8]) -> i64 {
    i64::from_be_bytes(row[..8].try_into().unwrap())
}

fn main() -> tell::common::Result<()> {
    let db = Database::create(TellConfig { storage_nodes: 3, ..TellConfig::default() });
    // Using the core API directly (the SQL layer sits on top of this).
    let table = db.create_table(
        "accounts",
        vec![IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice))],
    )?;
    let rids: Vec<Rid> =
        db.bulk_load(&table, (0..ACCOUNTS).map(|i| encode(INITIAL, i)).collect())?;

    println!(
        "loaded {ACCOUNTS} accounts with {INITIAL} each (total {})",
        ACCOUNTS as i64 * INITIAL
    );

    let mut handles = Vec::new();
    for w in 0..WORKERS {
        let db = Arc::clone(&db);
        let table = Arc::clone(&table);
        let rids = rids.clone();
        handles.push(std::thread::spawn(move || {
            // Each worker is its own processing node (own virtual clock,
            // own storage client) — all sharing the same data.
            let pn = db.processing_node();
            let mut conflicts_seen = 0u64;
            for i in 0..TRANSFERS_PER_WORKER {
                let from = rids[(w * 7 + i * 3) % rids.len()];
                let to = rids[(w * 11 + i * 5 + 1) % rids.len()];
                if from == to {
                    continue;
                }
                let amount = ((i % 50) + 1) as i64;
                pn.run(10_000, |txn| {
                    let from_row = txn.get(&table, from)?.expect("account exists");
                    let to_row = txn.get(&table, to)?.expect("account exists");
                    let from_balance = balance_of(&from_row);
                    if from_balance < amount {
                        return Ok(()); // insufficient funds: no-op
                    }
                    let from_id = u64::from_be_bytes(from_row[8..16].try_into().unwrap());
                    let to_id = u64::from_be_bytes(to_row[8..16].try_into().unwrap());
                    txn.update(&table, from, encode(from_balance - amount, from_id))?;
                    txn.update(&table, to, encode(balance_of(&to_row) + amount, to_id))?;
                    Ok(())
                })
                .expect("transfer eventually commits");
                conflicts_seen = pn.metrics().conflicts();
            }
            (pn.metrics().committed(), conflicts_seen, pn.clock().now_us())
        }));
    }

    let mut committed = 0;
    let mut conflicts = 0;
    let mut virtual_us: f64 = 0.0;
    for h in handles {
        let (c, x, t) = h.join().expect("worker");
        committed += c;
        conflicts += x;
        virtual_us = virtual_us.max(t);
    }

    // Verify the invariant from a fresh processing node.
    let pn = db.processing_node();
    let mut txn = pn.begin()?;
    let total: i64 =
        txn.scan_table(&table, usize::MAX)?.iter().map(|(_, row)| balance_of(row)).sum();
    txn.commit()?;

    println!("committed {committed} transactions, {conflicts} write-write conflicts retried");
    println!("total balance after the storm: {total} (must equal {})", ACCOUNTS as i64 * INITIAL);
    println!("longest worker virtual time: {:.1} ms", virtual_us / 1e3);
    assert_eq!(total, ACCOUNTS as i64 * INITIAL, "snapshot isolation preserved the invariant");
    println!("invariant holds — no lost updates under concurrent multi-node access");
    Ok(())
}

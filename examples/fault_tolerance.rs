//! Fault tolerance (§4.4): storage-node fail-over, processing-node crash
//! recovery through the transaction log, and commit-manager replacement —
//! all three failure classes the paper handles, end to end.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use bytes::Bytes;
use tell::commitmgr::manager::CmConfig;
use tell::common::{CmId, SnId};
use tell::core::database::IndexSpec;
use tell::core::recovery::recover_failed_pn;
use tell::core::{Database, TellConfig, VersionedRecord};

fn row(v: u64, pk: u64) -> Bytes {
    let mut b = v.to_be_bytes().to_vec();
    b.extend_from_slice(&pk.to_be_bytes());
    Bytes::from(b)
}

fn main() -> tell::common::Result<()> {
    let db = Database::create(TellConfig {
        storage_nodes: 3,
        replication_factor: 2, // survive one storage-node failure
        commit_managers: 2,    // survive one commit-manager failure
        cm: CmConfig::default(),
        ..TellConfig::default()
    });
    let table = db.create_table(
        "ledger",
        vec![IndexSpec::new("pk", true, |r: &[u8]| r.get(8..16).map(Bytes::copy_from_slice))],
    )?;
    let rids = db.bulk_load(&table, (0..50).map(|i| row(i, i)).collect())?;
    println!("loaded {} rows on 3 SNs with RF2", rids.len());

    // -----------------------------------------------------------------
    // 1. Storage-node failure (§4.4.2): kill an SN mid-workload; the
    //    cluster fails over to replicas, then restores the replication
    //    factor on the survivors.
    // -----------------------------------------------------------------
    let pn = db.processing_node();
    pn.run(100, |txn| txn.update(&table, rids[0], row(1_000, 0)))?;
    db.store().kill_node(SnId(0));
    println!("killed sn:0 — reads and writes continue against replicas:");
    let mut txn = pn.begin()?;
    assert_eq!(txn.scan_table(&table, usize::MAX)?.len(), 50, "no data lost");
    txn.commit()?;
    pn.run(100, |txn| txn.update(&table, rids[1], row(2_000, 1)))?;
    let created = db.store().restore_replication();
    println!("  re-replicated {created} partition copies onto the surviving nodes");

    // -----------------------------------------------------------------
    // 2. Processing-node crash (§4.4.1): simulate a PN dying mid-commit —
    //    log entry written, update applied, commit flag never set. The
    //    recovery process rolls its write set back.
    // -----------------------------------------------------------------
    let failed_pn = db.processing_node();
    let failed_id = failed_pn.id();
    let dirty_tid = {
        let txn = failed_pn.begin()?;
        let tid = txn.tid();
        // What commit() does up to the crash point: log entry + apply.
        let client = db.admin_client();
        tell::core::txlog::append(
            &client,
            &tell::core::txlog::LogEntry {
                tid,
                pn: failed_id,
                timestamp_us: 0,
                write_set: vec![(table.id, rids[2])],
                committed: false,
            },
        )?;
        let key = tell::store::keys::record(table.id, rids[2]);
        let (token, raw) = client.get(&key)?.unwrap();
        let mut rec = VersionedRecord::decode(&raw)?;
        rec.add_version(tid, Some(row(9_999_999, 2)));
        client.store_conditional(&key, token, rec.encode())?;
        std::mem::forget(txn); // the PN is gone; nobody aborts or commits
        tid
    };
    println!("simulated PN crash mid-commit (tid {dirty_tid}, partially applied)");
    let report = recover_failed_pn(&db, failed_id)?;
    println!(
        "  recovery rolled back {} transaction(s), reverted {} version(s)",
        report.rolled_back, report.versions_reverted
    );
    let mut txn = pn.begin()?;
    let v = txn.get(&table, rids[2])?.unwrap();
    assert_eq!(u64::from_be_bytes(v[..8].try_into().unwrap()), 2, "dirty write gone");
    txn.commit()?;

    // -----------------------------------------------------------------
    // 3. Commit-manager failure (§4.4.3): kill one of the two managers;
    //    transactions fail over to the survivor; a replacement recovers the
    //    committed-set from the store and the transaction log.
    // -----------------------------------------------------------------
    db.commit_managers().fail(CmId(0))?;
    println!("killed cm:0 — transactions keep flowing through cm:1:");
    for i in 0..5 {
        pn.run(100, |txn| txn.update(&table, rids[3], row(3_000 + i, 3)))?;
    }
    let replacement = db.commit_managers().spawn_recovered(CmId(9))?;
    println!(
        "  replacement cm:{} recovered (base version {})",
        replacement.id().raw(),
        replacement.base()
    );
    pn.run(100, |txn| txn.update(&table, rids[4], row(4_000, 4)))?;

    println!(
        "all three failure classes survived; {} commits total on this PN",
        pn.metrics().committed()
    );

    // The whole exercise — retries, recovery runs, reverted writes — is in
    // the global registry; print the headline counters at exit.
    let snap = tell::obs::snapshot();
    println!("\nobservability snapshot (selected counters):");
    for (name, v) in &snap.counters {
        if *v > 0
            && (name.starts_with("txn_")
                || name.starts_with("recovery_")
                || name.starts_with("gc_"))
        {
            println!("  tell_{name} {v}");
        }
    }
    Ok(())
}

//! Mixed workloads (§2.1, §5.2): "some PNs can run an OLTP workload, while
//! others perform analytical queries on the same dataset" — scalable
//! analytics on live production data, no ETL.
//!
//! OLTP workers hammer TPC-C new-orders while an analytical processing
//! node runs SQL aggregations and a storage-side **push-down scan** (§5.2)
//! over the same records, comparing its cost with the naive
//! ship-everything scan.
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tell::core::{Database, TellConfig};
use tell::sql::SqlEngine;
use tell::store::{CmpOp, Predicate};
use tell::tpcc::driver::{run_tpcc, TpccConfig};
use tell::tpcc::gen::{load, ScaleParams};
use tell::tpcc::mix::Mix;
use tell::tpcc::schema::create_tpcc_tables;

fn main() -> tell::common::Result<()> {
    let db = Database::create(TellConfig { storage_nodes: 5, ..TellConfig::default() });
    let engine = SqlEngine::new(db);
    create_tpcc_tables(&engine)?;
    let rows = load(&engine, 2, ScaleParams::tiny(), 7)?;
    println!("loaded {rows} TPC-C rows (2 warehouses)");

    // OLTP side: a background thread running the standard mix.
    let stop = Arc::new(AtomicBool::new(false));
    let oltp = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            run_tpcc(
                &engine,
                &TpccConfig {
                    warehouses: 2,
                    scale: ScaleParams::tiny(),
                    mix: Mix::standard(),
                    pn_count: 2,
                    workers_per_pn: 1,
                    txns_per_worker: 400,
                    max_retries: 1000,
                    seed: 1,
                },
            )
            .expect("oltp run")
        })
    };

    // OLAP side: a separate processing node issuing analytical SQL over the
    // *live* data while the OLTP threads commit.
    let olap = engine.session();
    for round in 0..3 {
        let r = olap.execute(
            "SELECT ol_w_id, COUNT(*) AS lines, SUM(ol_amount) AS revenue \
             FROM orderline GROUP BY ol_w_id ORDER BY ol_w_id",
        )?;
        println!("analytics round {round}: per-warehouse order lines + revenue = {:?}", r.rows);
        let top = olap.execute(
            "SELECT i_name, i_price FROM item WHERE i_price > 90.0 ORDER BY i_price DESC LIMIT 3",
        )?;
        println!("  top-priced items: {:?}", top.rows);
    }

    let report = oltp.join().expect("oltp thread");
    stop.store(true, Ordering::Relaxed);
    println!(
        "OLTP finished concurrently: {} commits, abort rate {:.2}%, TpmC {:.0}",
        report.committed,
        report.abort_rate() * 100.0,
        report.tpmc
    );

    // §5.2 operator push-down: count expensive stock rows with the filter
    // evaluated *in the storage layer* vs shipping every record.
    let pn = db_session_pn(&engine);
    let stock = pn.table("stock")?;
    let schema = engine.schema("stock")?;
    let threshold = 50i64;

    let clock = pn.clock();
    let t0 = clock.now_us();
    let mut txn = pn.begin()?;
    let shipped = txn.scan_table(&stock, usize::MAX)?;
    let naive_matches = shipped
        .iter()
        .filter(|(_, row)| {
            tell::sql::row::decode_row(&schema, row)
                .ok()
                .and_then(|r| r[2].as_i64())
                .map(|q| q < threshold)
                .unwrap_or(false)
        })
        .count();
    txn.commit()?;
    let naive_cost = clock.now_us() - t0;

    // The same filter as a serializable byte predicate, evaluated *in the
    // storage layer* (§5.2): stock rows encode `[w_id: tag+i64][i_id:
    // tag+i64][quantity: tag+i64]...`, so s_quantity's Int tag sits at
    // byte 18 and its little-endian payload at byte 19. TPC-C keeps
    // quantities in 10..=100, so the low byte alone decides `< threshold`.
    let low_stock = Predicate::All(vec![
        Predicate::value_eq(18, vec![1u8]), // s_quantity is a non-null INT
        Predicate::value_compare(19, CmpOp::Lt, vec![threshold as u8]),
    ]);
    let t1 = clock.now_us();
    let mut txn = pn.begin()?;
    let pushed = txn.scan_table_pushdown_filtered(&stock, usize::MAX, &low_stock)?;
    txn.commit()?;
    let pushdown_cost = clock.now_us() - t1;

    assert_eq!(naive_matches, pushed.len());
    println!(
        "push-down scan (§5.2): {} low-stock rows; ship-all cost {:.0} µs vs push-down {:.0} µs ({:.1}x cheaper)",
        pushed.len(),
        naive_cost,
        pushdown_cost,
        naive_cost / pushdown_cost
    );

    // Everything above also landed in the global metrics registry — the
    // same snapshot a `Request::Metrics` scrape would return.
    let snap = tell::obs::snapshot();
    println!("\nobservability snapshot (Prometheus text exposition):");
    print!("{}", snap.to_prometheus_text());
    Ok(())
}

fn db_session_pn(engine: &Arc<SqlEngine>) -> tell::core::ProcessingNode {
    engine.database().processing_node()
}

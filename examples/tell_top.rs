//! Live cluster dashboard over `Request::Telemetry`.
//!
//! `tell_top` polls every named node's telemetry ring through a
//! `tell_monitor::Collector`, evaluates the health rules, and refreshes a
//! plain-ANSI terminal view: per-node throughput, abort and latency
//! figures with a sparkline of the recent commit trend, plus the active
//! health alerts and the newest firing/resolved transitions.
//!
//! ```text
//! # against a running cluster (tell_sn + tell_cm):
//! cargo run --release --example tell_top -- \
//!     --node sn0=127.0.0.1:7701 --node cm0=127.0.0.1:7801
//!
//! # self-contained smoke: boot a loopback cluster in-process and render
//! # one machine-readable snapshot (the check.sh telemetry gate):
//! cargo run --release --example tell_top -- --loopback --json
//! ```
//!
//! No raw terminal mode, no curses, no dependencies: the refresh is a
//! cursor-home + clear-to-end escape, so the output degrades gracefully
//! when piped. `--json` renders one snapshot as JSON and exits.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};
use tell_monitor::{Collector, NodeView, Target};
use tell_obs::registry::{Counter, Phase};
use tell_rpc::{Connection, RemoteCmClient, RemoteEndpoint, Request, Response, RpcServer};

struct Args {
    nodes: Vec<Target>,
    interval_ms: u64,
    iterations: u64,
    json: bool,
    loopback: bool,
    profile: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: Vec::new(),
        interval_ms: 1000,
        iterations: 0,
        json: false,
        loopback: false,
        profile: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--node" => {
                let spec = value("--node")?;
                let (name, addr) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--node wants NAME=ADDR, got {spec}"))?;
                args.nodes.push(Target::new(name, addr));
            }
            "--interval" => {
                args.interval_ms =
                    value("--interval")?.parse().map_err(|e| format!("--interval: {e}"))?;
            }
            "--iterations" => {
                args.iterations =
                    value("--iterations")?.parse().map_err(|e| format!("--iterations: {e}"))?;
            }
            "--json" => args.json = true,
            "--loopback" => args.loopback = true,
            "--profile" => args.profile = true,
            "--help" | "-h" => {
                println!(
                    "tell_top: live telemetry dashboard for a tell cluster\n\n\
                     options:\n  \
                     --node NAME=ADDR  add a scrape target (repeatable)\n  \
                     --interval MS     refresh interval (default 1000)\n  \
                     --iterations N    stop after N refreshes (default: run until ^C)\n  \
                     --json            render one snapshot as JSON and exit\n  \
                     --loopback        boot an in-process loopback cluster with a\n                    \
                     background workload and watch that\n  \
                     --profile         one-shot profiler panel: sample every node for one\n                    \
                     interval, show the hottest stacks and contended locks"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.nodes.is_empty() && !args.loopback {
        return Err("no targets: pass --node NAME=ADDR (or --loopback)".to_string());
    }
    Ok(args)
}

// ---------------------------------------------------------------------------
// Loopback cluster: an in-process SN + CM pair with a background workload,
// so the dashboard has live numbers without any external deployment.

struct Loopback {
    servers: Vec<RpcServer>,
    stop: Arc<AtomicBool>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Loopback {
    fn boot() -> Result<(Loopback, Vec<Target>), String> {
        let store = tell_store::StoreCluster::new(tell_store::StoreConfig::new(2));
        let sn = RpcServer::serve_store("127.0.0.1:0", store).map_err(|e| e.to_string())?;
        let sn_addr = sn.local_addr().to_string();
        let cm_cluster = tell_commitmgr::CmCluster::new(
            RemoteEndpoint::connect(sn_addr.clone(), 2),
            1,
            tell_commitmgr::manager::CmConfig::default(),
        );
        let cm = RpcServer::serve_commit(
            "127.0.0.1:0",
            cm_cluster as Arc<dyn tell_commitmgr::CommitService>,
        )
        .map_err(|e| e.to_string())?;
        let cm_addr = cm.local_addr().to_string();

        let endpoint = RemoteEndpoint::connect(sn_addr.clone(), 2);
        let commit: Arc<dyn tell_commitmgr::CommitService> =
            Arc::new(RemoteCmClient::connect([cm_addr.clone()]));
        let db = Database::open(endpoint, commit, TellConfig::default());

        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loopback_workload(&db, &stop))
        };
        let targets = vec![Target::new("sn0", &sn_addr), Target::new("cm0", &cm_addr)];
        Ok((Loopback { servers: vec![sn, cm], stop, worker: Some(worker) }, targets))
    }
}

impl Drop for Loopback {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        self.servers.clear();
    }
}

fn loopback_workload(db: &Arc<Database<RemoteEndpoint>>, stop: &AtomicBool) {
    let pk = IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice));
    let Ok(table) = db.create_table("top_demo", vec![pk]) else { return };
    let row = |balance: u64, id: u64| {
        let mut b = balance.to_be_bytes().to_vec();
        b.extend_from_slice(&id.to_be_bytes());
        Bytes::from(b)
    };
    let pn = db.processing_node();
    let Ok(rid) = pn.run(100, |txn| txn.insert(&table, row(0, 1))) else { return };
    let mut i = 0u64;
    while !stop.load(Ordering::Relaxed) {
        i += 1;
        let _ = pn.run(100, |txn| {
            let current = txn.get(&table, rid)?.expect("row inserted above");
            let balance = u64::from_be_bytes(current[..8].try_into().unwrap());
            txn.update(&table, rid, row(balance + 1, 1))
        });
        if i.is_multiple_of(64) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering.

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Commit-delta sparkline over the node's newest `width` points.
fn sparkline(node: &NodeView, width: usize) -> String {
    let deltas: Vec<u64> =
        node.history.iter().rev().take(width).map(|p| p.counter(Counter::TxnCommitted)).collect();
    let max = deltas.iter().copied().max().unwrap_or(0).max(1);
    deltas.iter().rev().map(|d| SPARK[((d * (SPARK.len() as u64 - 1)) / max) as usize]).collect()
}

/// Per-second rate of a counter from the node's two newest points (the
/// wall clocks bound the interval; virtual-clock histories show "-").
fn rate_per_sec(node: &NodeView, c: Counter) -> Option<f64> {
    let n = node.history.len();
    if n < 2 {
        return None;
    }
    let (prev, last) = (&node.history[n - 2], &node.history[n - 1]);
    let dt_us = last.wall_us.saturating_sub(prev.wall_us);
    if dt_us == 0 {
        return None;
    }
    Some(last.counter(c) as f64 * 1e6 / dt_us as f64)
}

fn fmt_rate(r: Option<f64>) -> String {
    match r {
        Some(v) => format!("{v:.0}"),
        None => "-".to_string(),
    }
}

fn render(collector: &Collector, interval_ms: u64) -> String {
    let mut out = String::new();
    let active = collector.active();
    out.push_str(&format!(
        "tell_top — poll #{} every {}ms — {} node(s), {} active alert(s)\n\n",
        collector.polls(),
        interval_ms,
        collector.nodes().len(),
        active.len(),
    ));
    out.push_str(&format!(
        "{:<10} {:<6} {:>10} {:>10} {:>12}  {}\n",
        "NODE", "STATE", "COMMIT/S", "ABORT/S", "P99 TXN", "TREND"
    ));
    for node in collector.nodes() {
        let state = if node.reachable { "up" } else { "DOWN" };
        let p99 = node
            .latest()
            .map(|p| p.phase(Phase::TxnTotal).p99)
            .filter(|v| *v > 0.0)
            .map(|v| format!("{v:.0}us"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<10} {:<6} {:>10} {:>10} {:>12}  {}\n",
            node.target.name,
            state,
            fmt_rate(rate_per_sec(node, Counter::TxnCommitted)),
            fmt_rate(rate_per_sec(node, Counter::TxnAborted)),
            p99,
            sparkline(node, 24),
        ));
        if let Some(err) = &node.last_error {
            out.push_str(&format!("           └ {err}\n"));
        }
    }
    out.push('\n');
    if active.is_empty() {
        out.push_str("health: ok\n");
    } else {
        out.push_str("ACTIVE ALERTS:\n");
        for (rule, node) in &active {
            out.push_str(&format!("  ! {} node={}\n", rule.label(), node));
        }
    }
    let events = collector.events();
    if !events.is_empty() {
        out.push_str("\nrecent transitions:\n");
        for e in events.iter().rev().take(5).rev() {
            out.push_str(&format!("  {}\n", e.render()));
        }
    }
    out
}

/// One-shot machine-readable snapshot (hand-rolled JSON, same style as the
/// metrics exporter — no serde in the workspace).
fn render_json(collector: &Collector) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"polls\":{},\"nodes\":{{", collector.polls()));
    for (i, node) in collector.nodes().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let latest = node.latest();
        out.push_str(&format!(
            "\"{}\":{{\"reachable\":{},\"points\":{},\"last_seq\":{},\
             \"txn_committed_delta\":{},\"txn_aborted_delta\":{},\"txn_total_us_p99\":{:?}}}",
            node.target.name,
            node.reachable,
            node.history.len(),
            latest.map(|p| p.seq).unwrap_or(0),
            latest.map(|p| p.counter(Counter::TxnCommitted)).unwrap_or(0),
            latest.map(|p| p.counter(Counter::TxnAborted)).unwrap_or(0),
            latest.map(|p| p.phase(Phase::TxnTotal).p99).unwrap_or(0.0),
        ));
    }
    out.push_str("},\"active\":[");
    for (i, (rule, node)) in collector.active().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"rule\":\"{}\",\"node\":\"{}\"}}", rule.label(), node));
    }
    out.push_str("],\"events\":[");
    for (i, e) in collector.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", e.render()));
    }
    out.push_str("]}");
    out
}

/// One-shot profiler panel: sample every target for one interval through
/// the `Profile{Start,Fetch,Stop}` wire ops, then show the hottest logical
/// stacks and the most contended locks across the cluster.
fn profile_panel(targets: &[Target], interval_ms: u64) -> Result<String, String> {
    let call = |target: &Target, req: &Request| -> Result<Response, String> {
        let conn =
            Connection::connect(&target.addr).map_err(|e| format!("{}: {e}", target.name))?;
        let (response, _, _) = conn.call(req).map_err(|e| format!("{}: {e}", target.name))?;
        Ok(response)
    };
    for t in targets {
        call(t, &Request::ProfileStart { hz: 0.0 })?;
    }
    std::thread::sleep(Duration::from_millis(interval_ms));
    let mut table = tell_obs::CollapsedTable::new(usize::MAX);
    let mut locks: Vec<tell_obs::LockStat> = Vec::new();
    let mut samples = 0u64;
    let mut idle = 0u64;
    for t in targets {
        let response = call(t, &Request::ProfileFetch)?;
        let _ = call(t, &Request::ProfileStop);
        let Response::Profile(report) = response else {
            return Err(format!("{}: unexpected response {response:?}", t.name));
        };
        samples += report.samples;
        idle += report.idle;
        let part = tell_obs::CollapsedTable::parse_folded(&report.folded, usize::MAX)
            .map_err(|e| format!("{}: bad folded payload: {e}", t.name))?;
        table.merge(&part);
        for lock in report.locks {
            match locks.iter_mut().find(|l| l.name == lock.name) {
                Some(l) => {
                    l.contended += lock.contended;
                    l.wait_us += lock.wait_us;
                }
                None => locks.push(lock),
            }
        }
    }
    let mut out = format!(
        "tell_top — profile over {}ms, {} node(s): {} samples, {} idle\n\nHOTTEST STACKS:\n",
        interval_ms,
        targets.len(),
        samples,
        idle,
    );
    let mut rows = table.rows();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let total = table.total().max(1);
    for (names, count) in rows.iter().take(10) {
        out.push_str(&format!(
            "  {:>5.1}% {:>8}  {}\n",
            *count as f64 * 100.0 / total as f64,
            count,
            names.join(";")
        ));
    }
    if rows.is_empty() {
        out.push_str("  (no samples landed in instrumented regions)\n");
    }
    out.push_str("\nCONTENDED LOCKS:\n");
    locks.sort_by(|a, b| b.wait_us.cmp(&a.wait_us).then(a.name.cmp(&b.name)));
    let mut any = false;
    for lock in locks.iter().filter(|l| l.contended > 0).take(10) {
        any = true;
        out.push_str(&format!(
            "  {:<24} contended={:<8} wait={}us\n",
            lock.name, lock.contended, lock.wait_us
        ));
    }
    if !any {
        out.push_str("  (no contention observed)\n");
    }
    Ok(out)
}

fn run(args: &Args) -> Result<(), String> {
    // Loopback handles must outlive the polling loop.
    let loopback = if args.loopback { Some(Loopback::boot()?) } else { None };
    let targets = match &loopback {
        Some((_, targets)) => targets.clone(),
        None => args.nodes.clone(),
    };
    if args.profile {
        if args.loopback {
            // Let the background workload commit a few transactions first.
            std::thread::sleep(Duration::from_millis(200));
        }
        let panel = profile_panel(&targets, args.interval_ms)?;
        print!("{panel}");
        return Ok(());
    }
    let mut collector = Collector::new(targets);

    if args.json {
        if args.loopback {
            // Give the background workload a moment to commit, then force
            // a ring point so the very first scrape carries real deltas
            // (the wall driver's first tick may still be pending).
            std::thread::sleep(Duration::from_millis(200));
            tell_obs::timeseries::roll_global_now();
        }
        collector.poll();
        println!("{}", render_json(&collector));
        return Ok(());
    }

    let mut remaining = args.iterations;
    loop {
        collector.poll();
        // Cursor home + clear to end: a flicker-free refresh that still
        // degrades to plain sequential output when piped.
        print!("\x1b[H\x1b[J{}", render(&collector, args.interval_ms));
        use std::io::Write;
        let _ = std::io::stdout().flush();
        if args.iterations > 0 {
            remaining -= 1;
            if remaining == 0 {
                return Ok(());
            }
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_top: {msg}");
            std::process::exit(2);
        }
    };
    if let Err(msg) = run(&args) {
        eprintln!("tell_top: {msg}");
        std::process::exit(1);
    }
}

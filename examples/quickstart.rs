//! Quickstart: spin up a Tell deployment, create tables through SQL, run
//! transactions, and query — the whole shared-data stack in one file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tell::core::{Database, TellConfig};
use tell::sql::SqlEngine;

fn main() -> tell::common::Result<()> {
    // A deployment: 3 storage nodes, replication factor 2, one commit
    // manager, InfiniBand-class network (all simulated in-process; see
    // DESIGN.md for the virtual-time methodology).
    let db = Database::create(TellConfig {
        storage_nodes: 3,
        replication_factor: 2,
        ..TellConfig::default()
    });
    let engine = SqlEngine::new(db);
    let session = engine.session();

    // DDL: tables and secondary indexes live in the shared store, visible
    // to every processing node.
    session.execute(
        "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT NOT NULL, \
         balance DOUBLE NOT NULL, branch TEXT)",
    )?;
    session.execute("CREATE INDEX by_branch ON accounts (branch)")?;

    // DML.
    session.execute(
        "INSERT INTO accounts VALUES \
         (1, 'ada', 1200.0, 'zurich'), \
         (2, 'grace', 800.0, 'zurich'), \
         (3, 'edsger', 450.0, 'eindhoven'), \
         (4, 'barbara', 2200.0, 'boston')",
    )?;

    // Point query — the planner picks the primary-key index.
    let r = session.execute("SELECT owner, balance FROM accounts WHERE id = 2")?;
    println!("pk lookup      : {:?}", r.rows);

    // Secondary-index query.
    let r = session.execute("SELECT owner FROM accounts WHERE branch = 'zurich' ORDER BY owner")?;
    println!("index lookup   : {:?}", r.rows);

    // Aggregation.
    let r = session.execute(
        "SELECT branch, COUNT(*) AS n, SUM(balance) AS total FROM accounts \
         GROUP BY branch ORDER BY total DESC",
    )?;
    println!("aggregation    : {:?}", r.rows);

    // A multi-statement ACID transaction (distributed snapshot isolation;
    // conflicts retry automatically).
    session.transaction(|tx| {
        tx.execute("UPDATE accounts SET balance = balance - 100 WHERE id = 1")?;
        tx.execute("UPDATE accounts SET balance = balance + 100 WHERE id = 3")?;
        Ok(())
    })?;
    let r = session.execute("SELECT id, balance FROM accounts WHERE id IN (1, 3) ORDER BY id")?;
    println!("after transfer : {:?}", r.rows);

    // A second session — in a real deployment this would be another
    // processing node; it sees the same data instantly (shared data: no
    // partitioning, any node can run any query).
    let other_pn = engine.session();
    let r = other_pn.execute("SELECT COUNT(*) FROM accounts")?;
    println!("other PN sees  : {} accounts", r.scalar().unwrap());

    // Virtual-time accounting: how much simulated network time the
    // sessions spent.
    println!(
        "simulated time : this PN {:.1} µs, other PN {:.1} µs; {} storage requests total",
        session.processing_node().clock().now_us(),
        other_pn.processing_node().clock().now_us(),
        engine.database().traffic().request_count(),
    );
    Ok(())
}

//! Elasticity (§2.1): "PNs or SNs can be added on-demand if processing
//! resources or storage capacity is required" — and in Tell "PNs can be
//! added without any cost": no repartitioning, no data movement, unlike
//! Accordion/E-Store-style elastic partitioned systems.
//!
//! This example grows the processing layer 1 → 2 → 4 → 8 workers against a
//! fixed dataset and shows throughput scaling instantly, then adds storage
//! capacity without interrupting the workload.
//!
//! ```sh
//! cargo run --release --example elasticity
//! ```

use std::sync::Arc;

use tell::core::{Database, TellConfig};
use tell::sql::SqlEngine;
use tell::tpcc::driver::{run_tpcc, TpccConfig};
use tell::tpcc::gen::{load, ScaleParams};
use tell::tpcc::mix::Mix;
use tell::tpcc::schema::create_tpcc_tables;

fn main() -> tell::common::Result<()> {
    let db = Database::create(TellConfig { storage_nodes: 5, ..TellConfig::default() });
    let engine = SqlEngine::new(Arc::clone(&db));
    create_tpcc_tables(&engine)?;
    load(&engine, 8, ScaleParams::tiny(), 99)?;

    println!("growing the processing layer (no data moves, no repartitioning):");
    println!("{:>4}  {:>12}  {:>10}  {:>10}", "PNs", "TpmC", "Tps", "aborts");
    let mut last = 0.0;
    for pns in [1usize, 2, 4, 8] {
        // "Adding" PNs is just spawning more workers over the same shared
        // store — the whole point of the shared-data architecture.
        let report = run_tpcc(
            &engine,
            &TpccConfig {
                warehouses: 8,
                scale: ScaleParams::tiny(),
                mix: Mix::standard(),
                pn_count: pns,
                workers_per_pn: 1,
                txns_per_worker: 150,
                max_retries: 1000,
                // Distinct seeds per growth step: runs share the database.
                seed: 3 + pns as u64,
            },
        )?;
        println!(
            "{:>4}  {:>12.0}  {:>10.0}  {:>9.2}%",
            pns,
            report.tpmc,
            report.tps,
            report.abort_rate() * 100.0
        );
        assert!(report.tpmc > last, "each added PN must add throughput");
        last = report.tpmc;
    }

    // Storage elasticity: the workload above grew the database (orders,
    // order lines, history). Show utilisation, then verify the cluster can
    // also shrink tolerance-wise by re-replicating after a node removal.
    let used_mb = db.store().total_used_bytes() as f64 / 1e6;
    println!("\nstorage after the workload: {used_mb:.1} MB across 5 SNs");
    for node in db.store().nodes() {
        println!("  {}: {:.1} MB", node.id, node.used_bytes() as f64 / 1e6);
    }

    // Decommission one storage node: fail it and restore the replication
    // level on the survivors ("eventually, the system re-organizes itself").
    let db2 = Database::create(TellConfig {
        storage_nodes: 4,
        replication_factor: 2,
        ..TellConfig::default()
    });
    let e2 = SqlEngine::new(Arc::clone(&db2));
    create_tpcc_tables(&e2)?;
    load(&e2, 2, ScaleParams::tiny(), 5)?;
    db2.store().kill_node(tell::common::SnId(3));
    let copies = db2.store().restore_replication();
    println!(
        "\ndecommissioned sn:3 on a second cluster; {copies} partition copies re-created — \
         workload continues:"
    );
    let report = run_tpcc(
        &e2,
        &TpccConfig {
            warehouses: 2,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            pn_count: 1,
            workers_per_pn: 2,
            txns_per_worker: 100,
            max_retries: 1000,
            seed: 4,
        },
    )?;
    println!("  {} commits at {:.0} TpmC on the shrunken cluster", report.committed, report.tpmc);
    Ok(())
}

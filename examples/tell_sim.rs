//! Deterministic fault-schedule simulation runner.
//!
//! Expands `--seed` into a fault plan, drives the full PN/SN/CM stack
//! through it turn-by-turn (see `crates/sim`), and checks the observed
//! history against the oracle for the configured isolation level
//! (`--isolation rc|nmsi|si|serializable`, default si). The verdict line
//! on stdout is bit-identical for identical flags — timings and artifact
//! paths go to stderr.
//!
//! ```text
//! cargo run --release --example tell_sim -- --seed 42 --faults all
//! tell_sim: seed=42 faults=all isolation=si events=25 seconds=0.5 txns=7140 commits=6427 aborts=713 verdict=ok
//! cargo run --release --example tell_sim -- --seed 42 --isolation serializable
//! ```
//!
//! On a violation the runner re-executes binary-searched prefixes of the
//! plan to find the *smallest failing prefix*, dumps the observed history
//! (JSON) and a Perfetto-loadable trace of the final run, prints the exact
//! command line that replays the failure, and exits 1.

use tell_common::IsolationLevel;
use tell_obs::export::{chrome_trace_json, validate_json, SourcedSpan};
use tell_sim::{shrink_plan, FaultMix, SimConfig, SimOutcome};

struct Args {
    config: SimConfig,
    bench_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { config: SimConfig::default(), bench_json: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => {
                args.config.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--seconds" => {
                args.config.virtual_secs =
                    value("--seconds")?.parse().map_err(|e| format!("--seconds: {e}"))?
            }
            "--faults" => {
                let v = value("--faults")?;
                args.config.mix = FaultMix::parse(&v)
                    .ok_or_else(|| format!("--faults: unknown mix {v:?} (none|sn|cm|all)"))?
            }
            "--workers" => {
                args.config.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--keys" => {
                args.config.keys = value("--keys")?.parse().map_err(|e| format!("--keys: {e}"))?
            }
            "--isolation" => {
                args.config.isolation =
                    value("--isolation")?.parse::<IsolationLevel>().map_err(|e| e.to_string())?
            }
            "--zipf" => {
                args.config.zipf_theta =
                    value("--zipf")?.parse().map_err(|e| format!("--zipf: {e}"))?
            }
            "--durable" => args.config.durable = true,
            "--profile" => args.config.profile_hz = Some(tell_obs::prof::default_hz()),
            "--profile-hz" => {
                args.config.profile_hz =
                    Some(value("--profile-hz")?.parse().map_err(|e| format!("--profile-hz: {e}"))?)
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--help" | "-h" => {
                println!(
                    "tell_sim: seeded fault-schedule simulation with per-level history oracles\n\n\
                     options:\n  \
                     --seed N         master seed (default 1); same seed = same run\n  \
                     --seconds F      virtual horizon in seconds (default 0.5)\n  \
                     --faults MIX     none | sn | cm | all (default none)\n  \
                     --workers N      concurrent transaction workers (default 4)\n  \
                     --keys N         keyspace size (default 32; small = contended)\n  \
                     --isolation L    rc | nmsi | si | serializable (default si); every\n  \
                                      transaction runs at L and the history is checked\n  \
                                      against L's oracle\n  \
                     --zipf F         Zipfian skew theta for key choice (default 0.8;\n  \
                                      0 = uniform, higher = hotter hot keys)\n  \
                     --durable        log-structured persistence tier per SN (relaxes the\n  \
                                      SN death budget; revivals may restart from log)\n  \
                     --profile        sample a logical-stack profile on the virtual clock\n  \
                                      (bit-identical across replays); folded stacks on stdout\n  \
                     --profile-hz F   like --profile at an explicit sample rate\n  \
                     --bench-json F   write a throughput snapshot to file F\n\n\
                     exit status: 0 = history satisfies the level's oracle, 1 = violation\n\
                     (artifacts are dumped and the minimal failing prefix is reported)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn verdict_line(cfg: &SimConfig, outcome: &SimOutcome) -> String {
    format!(
        "tell_sim: seed={} faults={}{} isolation={} events={} seconds={} txns={} commits={} \
         aborts={} verdict={}",
        cfg.seed,
        cfg.mix.name(),
        if cfg.durable { "+durable" } else { "" },
        cfg.isolation,
        outcome.stats.events_fired,
        cfg.virtual_secs,
        outcome.stats.txns,
        outcome.stats.commits,
        outcome.stats.aborts,
        if outcome.ok() { "ok".to_string() } else { format!("VIOLATION({:?})", outcome.violation) },
    )
}

fn dump_failure(cfg: &SimConfig, outcome: &SimOutcome) {
    let history_path = format!("tell_sim_history_seed{}.json", cfg.seed);
    if let Err(e) = std::fs::write(&history_path, outcome.history.to_json()) {
        eprintln!("tell_sim: could not write {history_path}: {e}");
    } else {
        eprintln!("tell_sim: history dumped to {history_path}");
    }
    // The final (shrunk) run's spans are still in this process's ring.
    let spans: Vec<SourcedSpan> = tell_obs::span::global_ring()
        .drain()
        .into_iter()
        .map(|span| SourcedSpan { node: "sim".to_string(), span })
        .collect();
    if !spans.is_empty() {
        let trace_path = format!("tell_sim_trace_seed{}.json", cfg.seed);
        let json = chrome_trace_json(&spans);
        match validate_json(&json) {
            Ok(()) => {
                if let Err(e) = std::fs::write(&trace_path, json) {
                    eprintln!("tell_sim: could not write {trace_path}: {e}");
                } else {
                    eprintln!(
                        "tell_sim: {} spans dumped to {trace_path} (open in ui.perfetto.dev)",
                        spans.len()
                    );
                }
            }
            Err(e) => eprintln!("tell_sim: trace JSON failed validation: {e}"),
        }
    }
    eprintln!(
        "tell_sim: minimal failing prefix ({} of the plan's events):\n{}",
        outcome.plan.events.len(),
        outcome.plan.describe()
    );
    eprintln!(
        "tell_sim: replay with: cargo run --release --example tell_sim -- \
         --seed {} --seconds {} --faults {} --workers {} --keys {} --isolation {}{}",
        cfg.seed,
        cfg.virtual_secs,
        cfg.mix.name(),
        cfg.workers,
        cfg.keys,
        cfg.isolation,
        if cfg.durable { " --durable" } else { "" },
    );
}

fn write_bench_json(path: &str, cfg: &SimConfig, outcome: &SimOutcome, wall_secs: f64) {
    let virtual_secs = outcome.stats.virtual_end_us / 1e6;
    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"seed\": {},\n  \"faults\": \"{}\",\n  \
         \"isolation\": \"{}\",\n  \
         \"workers\": {},\n  \"keys\": {},\n  \"txns\": {},\n  \"commits\": {},\n  \
         \"aborts\": {},\n  \"events_fired\": {},\n  \"virtual_secs\": {:.3},\n  \
         \"wall_secs\": {:.3},\n  \"commits_per_virtual_sec\": {:.1},\n  \
         \"commits_per_wall_sec\": {:.1},\n  \"verdict\": \"{}\"\n}}\n",
        cfg.seed,
        cfg.mix.name(),
        cfg.isolation,
        cfg.workers,
        cfg.keys,
        outcome.stats.txns,
        outcome.stats.commits,
        outcome.stats.aborts,
        outcome.stats.events_fired,
        virtual_secs,
        wall_secs,
        outcome.stats.commits as f64 / virtual_secs.max(1e-9),
        outcome.stats.commits as f64 / wall_secs.max(1e-9),
        if outcome.ok() { "ok" } else { "violation" },
    );
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("tell_sim: bench snapshot written to {path}"),
        Err(e) => eprintln!("tell_sim: could not write {path}: {e}"),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_sim: {msg}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    let outcome = tell_sim::run(&args.config);
    let wall_secs = started.elapsed().as_secs_f64();
    eprintln!(
        "tell_sim: {} virtual ms in {:.2}s wall, lav={} scrapes={}",
        (outcome.stats.virtual_end_us / 1e3).round(),
        wall_secs,
        outcome.stats.final_lav,
        outcome.stats.scrapes,
    );
    if let Some(path) = &args.bench_json {
        write_bench_json(path, &args.config, &outcome, wall_secs);
    }
    if outcome.ok() {
        println!("{}", verdict_line(&args.config, &outcome));
        if let Some(profile) = &outcome.profile {
            // Folded stacks after the verdict line: deterministic for the
            // seed, pipeable straight into inferno/flamegraph.pl.
            eprintln!(
                "tell_sim: profile hz={} samples={} idle={} dropped={}",
                profile.hz, profile.samples, profile.idle, profile.dropped
            );
            print!("{}", profile.folded);
        }
        return;
    }
    eprintln!("tell_sim: violation found, shrinking the fault plan...");
    let minimal = shrink_plan(&args.config, &outcome.plan);
    println!("{}", verdict_line(&args.config, &minimal));
    dump_failure(&args.config, &minimal);
    std::process::exit(1);
}

//! A standalone commit-manager server (§4.2): issues transaction ids and
//! snapshot descriptors over the tell-rpc wire protocol, keeping its own
//! state in the storage nodes it is pointed at — which is what lets a
//! replacement recover after a failure (§4.4.3).
//!
//! ```text
//! cargo run --release --example tell_cm -- \
//!     --listen 127.0.0.1:7801 --store 127.0.0.1:7701 --managers 2
//! ```
//!
//! Run `tell_sn` first; the commit managers talk to it over TCP exactly
//! like processing nodes do.

use std::sync::Arc;

use tell_commitmgr::manager::CmConfig;
use tell_commitmgr::{CmCluster, CommitService};
use tell_rpc::{ReactorConfig, RemoteEndpoint, RpcServer, Services};
use tell_store::{StoreApi, StoreEndpoint};

struct Args {
    listen: String,
    store: String,
    managers: usize,
    pool: usize,
    workers: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7801".to_string(),
        store: "127.0.0.1:7701".to_string(),
        managers: 1,
        pool: 2,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--store" => args.store = value("--store")?,
            "--managers" => {
                args.managers =
                    value("--managers")?.parse().map_err(|e| format!("--managers: {e}"))?;
            }
            "--pool" => {
                args.pool = value("--pool")?.parse().map_err(|e| format!("--pool: {e}"))?;
            }
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "tell_cm: serve commit managers over TCP\n\n\
                     options:\n  \
                     --listen ADDR     listen address (default 127.0.0.1:7801)\n  \
                     --store ADDR      storage server to keep state in (default 127.0.0.1:7701)\n  \
                     --managers N      parallel commit managers (default 1)\n  \
                     --pool N          TCP connections to the storage server (default 2)\n  \
                     --workers N       reactor dispatch threads (default: auto)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.managers == 0 {
        return Err("--managers must be at least 1".into());
    }
    if args.pool == 0 {
        return Err("--pool must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_cm: {msg}");
            std::process::exit(2);
        }
    };
    let endpoint = RemoteEndpoint::connect(args.store.clone(), args.pool);
    // Probe before booting: the managers keep their recoverable state in
    // the store, so an unreachable store is fatal — better a clean message
    // than a panic out of the initial state publish.
    if let Err(e) = endpoint.unmetered_client().get(&bytes::Bytes::from_static(b"\xffprobe")) {
        eprintln!("tell_cm: cannot reach storage server {}: {e}", args.store);
        std::process::exit(1);
    }
    let cluster = CmCluster::new(endpoint, args.managers, CmConfig::default());
    let services = Services { store: None, commit: Some(cluster as Arc<dyn CommitService>) };
    let config = ReactorConfig { workers: args.workers, ..ReactorConfig::default() };
    let server = match RpcServer::serve_with(&args.listen, services, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tell_cm: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "tell_cm: {} commit manager(s) over store {} serving on {}",
        args.managers,
        args.store,
        server.local_addr()
    );
    loop {
        std::thread::park();
    }
}

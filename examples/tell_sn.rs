//! A standalone storage-node server: the shared data store of §3, behind
//! the tell-rpc wire protocol.
//!
//! ```text
//! cargo run --release --example tell_sn -- --listen 127.0.0.1:7701 --nodes 4
//! ```
//!
//! Pair it with `tell_cm` (the commit manager server) and open a
//! `Database` over `RemoteEndpoint` / `RemoteCmClient` to run the full
//! stack across processes.

use std::sync::Arc;

use tell_rpc::RpcServer;
use tell_store::{StoreCluster, StoreConfig};

struct Args {
    listen: String,
    nodes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { listen: "127.0.0.1:7701".to_string(), nodes: 4 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--nodes" => {
                args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "tell_sn: serve a storage cluster over TCP\n\n\
                     options:\n  \
                     --listen ADDR   listen address (default 127.0.0.1:7701)\n  \
                     --nodes N       storage nodes in the cluster (default 4)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_sn: {msg}");
            std::process::exit(2);
        }
    };
    let store = StoreCluster::new(StoreConfig::new(args.nodes));
    let server = match RpcServer::serve_store(&args.listen, Arc::clone(&store)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tell_sn: {e}");
            std::process::exit(1);
        }
    };
    println!("tell_sn: {} storage nodes serving on {}", args.nodes, server.local_addr());
    loop {
        std::thread::park();
    }
}

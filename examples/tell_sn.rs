//! A standalone storage-node server: the shared data store of §3, behind
//! the tell-rpc wire protocol.
//!
//! ```text
//! cargo run --release --example tell_sn -- --listen 127.0.0.1:7701 --nodes 4
//! ```
//!
//! With `--data-dir` every storage node also keeps a log-structured
//! persistence tier (`tell-durable`) under `DIR/sn-<n>/`; killing the
//! process and restarting it with the same directory recovers every
//! acknowledged write:
//!
//! ```text
//! cargo run --release --example tell_sn -- --data-dir /var/lib/tell --fsync batch:64
//! ```
//!
//! Pair it with `tell_cm` (the commit manager server) and open a
//! `Database` over `RemoteEndpoint` / `RemoteCmClient` to run the full
//! stack across processes.

use std::sync::Arc;

use tell_durable::{DurableNodeConfig, FsDurability, FsyncPolicy};
use tell_rpc::{ReactorConfig, RpcServer, Services};
use tell_store::{DurabilityProvider, StoreCluster, StoreConfig};

struct Args {
    listen: String,
    nodes: usize,
    workers: usize,
    data_dir: Option<String>,
    fsync: FsyncPolicy,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7701".to_string(),
        nodes: 4,
        workers: 0,
        data_dir: None,
        fsync: FsyncPolicy::Always,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--nodes" => {
                args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?;
            }
            "--workers" => {
                args.workers =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
            }
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--fsync" => {
                let v = value("--fsync")?;
                args.fsync = FsyncPolicy::parse(&v).map_err(|e| format!("--fsync: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "tell_sn: serve a storage cluster over TCP\n\n\
                     options:\n  \
                     --listen ADDR   listen address (default 127.0.0.1:7701)\n  \
                     --nodes N       storage nodes in the cluster (default 4)\n  \
                     --workers N     reactor dispatch threads (default: auto)\n  \
                     --data-dir DIR  durable log tier root (one subdir per node);\n  \
                                     restarting with the same dir recovers acked writes\n  \
                     --fsync POLICY  always | never | batch:<n> (default always;\n  \
                                     only meaningful with --data-dir)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_sn: {msg}");
            std::process::exit(2);
        }
    };
    let mut config = StoreConfig::new(args.nodes);
    if let Some(dir) = &args.data_dir {
        let engine_config = DurableNodeConfig { fsync: args.fsync, ..DurableNodeConfig::default() };
        let provider = FsDurability::new(dir.clone(), engine_config) as Arc<dyn DurabilityProvider>;
        config = config.durability(provider);
    }
    let store = match StoreCluster::open(config) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("tell_sn: recovery failed: {e}");
            std::process::exit(1);
        }
    };
    let services = Services { store: Some(Arc::clone(&store)), commit: None };
    let config = ReactorConfig { workers: args.workers, ..ReactorConfig::default() };
    let server = match RpcServer::serve_with(&args.listen, services, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tell_sn: {e}");
            std::process::exit(1);
        }
    };
    match &args.data_dir {
        Some(dir) => println!(
            "tell_sn: {} storage nodes serving on {} (durable, data-dir {dir})",
            args.nodes,
            server.local_addr()
        ),
        None => {
            println!("tell_sn: {} storage nodes serving on {}", args.nodes, server.local_addr())
        }
    }
    loop {
        std::thread::park();
    }
}

//! One-shot metrics scraper: ask a running tell-rpc server (`tell_sn` or
//! `tell_cm`) for its metrics snapshot and print it as Prometheus text.
//!
//! ```text
//! cargo run --release --example tell_metrics -- --addr 127.0.0.1:7701
//! ```
//!
//! Every tell-rpc server answers `Request::Metrics` with a JSON snapshot of
//! its process-global registry, whatever services it hosts; this example is
//! the whole scrape pipeline: connect, request, parse, render.

use tell_obs::MetricsSnapshot;
use tell_rpc::{Connection, Request, Response};

struct Args {
    addr: String,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { addr: "127.0.0.1:7701".to_string(), json: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "tell_metrics: scrape a tell-rpc server's metrics\n\n\
                     options:\n  \
                     --addr ADDR   server to scrape (default 127.0.0.1:7701)\n  \
                     --json        print the raw JSON snapshot instead of\n                \
                     Prometheus text"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn scrape(addr: &str, json: bool) -> Result<String, String> {
    let conn = Connection::connect(addr).map_err(|e| e.to_string())?;
    let (response, _, _) = conn.call(&Request::Metrics).map_err(|e| e.to_string())?;
    let Response::Metrics(body) = response else {
        return Err(format!("unexpected response: {response:?}"));
    };
    if json {
        return Ok(body);
    }
    // Parse rather than pass through: a malformed snapshot should fail the
    // scrape here, not downstream in whatever ingests the text.
    let snapshot = MetricsSnapshot::from_json(&body)?;
    Ok(snapshot.to_prometheus_text())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_metrics: {msg}");
            std::process::exit(2);
        }
    };
    match scrape(&args.addr, args.json) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("tell_metrics: scrape of {} failed: {msg}", args.addr);
            std::process::exit(1);
        }
    }
}

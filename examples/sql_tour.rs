//! A tour of the SQL layer: DDL, constraints, joins, aggregates, ordering,
//! expression evaluation, and how the planner picks access paths over the
//! distributed latch-free B+trees.
//!
//! ```sh
//! cargo run --release --example sql_tour
//! ```

use tell::core::{Database, TellConfig};
use tell::sql::{SqlEngine, Value};

fn show(title: &str, r: &tell::sql::QueryResult) {
    println!("-- {title}");
    if !r.columns.is_empty() {
        println!("   {}", r.columns.join(" | "));
    }
    for row in &r.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("   {}", cells.join(" | "));
    }
    if r.affected > 0 {
        println!("   ({} rows affected)", r.affected);
    }
    println!();
}

fn main() -> tell::common::Result<()> {
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(db);
    let s = engine.session();

    s.execute(
        "CREATE TABLE warehouse_stock (w_id INT, sku INT, qty INT NOT NULL, \
         unit_price DECIMAL(8,2) NOT NULL, PRIMARY KEY (w_id, sku))",
    )?;
    s.execute("CREATE TABLE sku (sku INT PRIMARY KEY, name TEXT NOT NULL, category TEXT)")?;
    s.execute("CREATE INDEX sku_by_category ON sku (category)")?;

    s.execute(
        "INSERT INTO sku VALUES (1,'bolt','fasteners'), (2,'nut','fasteners'), \
         (3,'gear','drive'), (4,'belt','drive'), (5,'manual',NULL)",
    )?;
    for w in 1..=3 {
        for sku in 1..=5 {
            s.execute(&format!(
                "INSERT INTO warehouse_stock VALUES ({w}, {sku}, {}, {})",
                (w * sku * 7) % 40,
                (sku as f64) * 1.25
            ))?;
        }
    }

    show(
        "composite-pk point lookup (IndexEq on pk)",
        &s.execute("SELECT qty FROM warehouse_stock WHERE w_id = 2 AND sku = 3")?,
    );

    show(
        "pk prefix scan (IndexRange on pk, w_id = 2)",
        &s.execute("SELECT sku, qty FROM warehouse_stock WHERE w_id = 2 ORDER BY sku")?,
    );

    show(
        "secondary index (sku_by_category)",
        &s.execute("SELECT name FROM sku WHERE category = 'drive' ORDER BY name")?,
    );

    show(
        "join + aggregate + having-like filter via WHERE",
        &s.execute(
            "SELECT k.category, COUNT(*) AS positions, SUM(ws.qty) AS units \
         FROM warehouse_stock ws JOIN sku k ON ws.sku = k.sku \
         WHERE k.category IS NOT NULL \
         GROUP BY k.category ORDER BY units DESC",
        )?,
    );

    show(
        "expressions and BETWEEN",
        &s.execute(
            "SELECT sku, qty * unit_price AS stock_value FROM warehouse_stock \
         WHERE w_id = 1 AND qty BETWEEN 5 AND 35 ORDER BY stock_value DESC LIMIT 3",
        )?,
    );

    show(
        "update with expression",
        &s.execute("UPDATE warehouse_stock SET qty = qty + 10 WHERE qty < 10")?,
    );

    show(
        "three-valued logic: NULL category is neither eq nor neq",
        &s.execute("SELECT COUNT(*) FROM sku WHERE category = 'x' OR category <> 'x'")?,
    );

    // Constraint violation surfaces as an error; data is untouched.
    let dup = s.execute("INSERT INTO sku VALUES (1, 'dup', 'x')");
    println!("-- duplicate pk rejected: {}", dup.unwrap_err());
    let n = s.execute("SELECT COUNT(*) FROM sku")?;
    assert_eq!(n.scalar(), Some(&Value::Int(5)));
    println!("   sku count still {}", n.scalar().unwrap());

    Ok(())
}

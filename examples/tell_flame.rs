//! Flamegraph scraper for the always-on logical-stack profiler.
//!
//! Any tell-rpc server (`tell_sn`, `tell_cm`, or an embedded PN serving
//! RPC) answers the `Profile{Start,Stop,Fetch}` wire ops; this example is
//! the whole remote-profiling pipeline: start the sampler, let the
//! workload run, fetch the collapsed stacks, and render them in a format
//! flamegraph tooling ingests directly.
//!
//! ```text
//! # one-shot: profile a running node for 5 seconds
//! cargo run --release --example tell_flame -- --addr 127.0.0.1:7701 --duration 5 > prof.folded
//! inferno-flamegraph < prof.folded > flame.svg   # or flamegraph.pl
//!
//! # manual control, multiple nodes merged into one profile
//! cargo run --release --example tell_flame -- --addr HOST_A:7701 --addr HOST_B:7701 --start
//! ...                                           # workload runs
//! cargo run --release --example tell_flame -- --addr HOST_A:7701 --addr HOST_B:7701 > prof.folded
//!
//! # self-contained smoke: boot a loopback cluster, profile it over the
//! # wire, print folded stacks (the check.sh profiler gate)
//! cargo run --release --example tell_flame -- --loopback
//! ```
//!
//! Output is collapsed-stack ("folded") text by default — one
//! `frame;frame;frame count` line per distinct stack — which inferno and
//! speedscope both accept; `--json` renders the speedscope file format
//! instead. Either way the profile is deterministic in its ordering, so
//! identical reports render byte-identically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};
use tell_obs::{CollapsedTable, LockStat, ProfileReport};
use tell_rpc::{Connection, RemoteCmClient, RemoteEndpoint, Request, Response, RpcServer};

#[derive(PartialEq)]
enum Mode {
    /// Start the sampler on every endpoint and exit.
    Start,
    /// Stop the sampler on every endpoint and exit.
    Stop,
    /// Fetch (default): scrape every endpoint and render.
    Fetch,
    /// Start, wait `--duration`, fetch, stop, render.
    Window(f64),
}

struct Args {
    addrs: Vec<String>,
    mode: Mode,
    hz: Option<f64>,
    json: bool,
    loopback: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { addrs: Vec::new(), mode: Mode::Fetch, hz: None, json: false, loopback: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addrs.push(value("--addr")?),
            "--start" => args.mode = Mode::Start,
            "--stop" => args.mode = Mode::Stop,
            "--duration" => {
                args.mode = Mode::Window(
                    value("--duration")?.parse().map_err(|e| format!("--duration: {e}"))?,
                )
            }
            "--hz" => args.hz = Some(value("--hz")?.parse().map_err(|e| format!("--hz: {e}"))?),
            "--folded" => args.json = false,
            "--json" => args.json = true,
            "--loopback" => args.loopback = true,
            "--help" | "-h" => {
                println!(
                    "tell_flame: remote logical-stack profiler scrape + flamegraph export\n\n\
                     options:\n  \
                     --addr ADDR    endpoint to profile (repeatable; reports are merged)\n  \
                     --start        start sampling on every endpoint and exit\n  \
                     --stop         stop sampling on every endpoint and exit\n  \
                     --duration S   one-shot: start, wait S seconds, fetch, stop\n  \
                     --hz F         sample rate for --start/--duration (default: server's\n                 \
                     TELL_PROF_HZ, 99 if unset)\n  \
                     --folded       collapsed-stack text output (default; inferno/speedscope)\n  \
                     --json         speedscope file-format JSON instead\n  \
                     --loopback     boot an in-process loopback cluster with a workload and\n                 \
                     profile it over the wire (self-contained smoke)\n\n\
                     with no mode flag, fetches the current profile without disturbing the\n\
                     sampler. folded output pipes straight into inferno-flamegraph."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.addrs.is_empty() && !args.loopback {
        return Err("no targets: pass --addr ADDR (or --loopback)".to_string());
    }
    Ok(args)
}

// ---------------------------------------------------------------------------
// Wire calls.

fn call_each(addrs: &[String], req: &Request) -> Result<Vec<Response>, String> {
    let mut out = Vec::with_capacity(addrs.len());
    for addr in addrs {
        let conn = Connection::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
        let (response, _, _) = conn.call(req).map_err(|e| format!("{addr}: {e}"))?;
        if let Response::Error(msg) = &response {
            return Err(format!("{addr}: server error: {msg:?}"));
        }
        out.push(response);
    }
    Ok(out)
}

fn fetch_merged(addrs: &[String]) -> Result<ProfileReport, String> {
    let mut merged: Option<ProfileReport> = None;
    let mut table = CollapsedTable::new(usize::MAX);
    let mut locks: Vec<LockStat> = Vec::new();
    for response in call_each(addrs, &Request::ProfileFetch)? {
        let Response::Profile(report) = response else {
            return Err(format!("unexpected response: {response:?}"));
        };
        let part = CollapsedTable::parse_folded(&report.folded, usize::MAX)
            .map_err(|e| format!("bad folded payload: {e}"))?;
        table.merge(&part);
        for lock in &report.locks {
            match locks.iter_mut().find(|l| l.name == lock.name) {
                Some(l) => {
                    l.contended += lock.contended;
                    l.wait_us += lock.wait_us;
                }
                None => locks.push(lock.clone()),
            }
        }
        merged = Some(match merged.take() {
            None => report,
            Some(mut acc) => {
                acc.running |= report.running;
                acc.samples += report.samples;
                acc.idle += report.idle;
                acc.dropped += report.dropped;
                acc.alloc.extend(report.alloc);
                acc
            }
        });
    }
    let mut report = merged.ok_or_else(|| "no endpoints".to_string())?;
    locks.sort_by(|a, b| b.wait_us.cmp(&a.wait_us).then(a.name.cmp(&b.name)));
    report.locks = locks;
    report.folded = table.to_folded();
    Ok(report)
}

// ---------------------------------------------------------------------------
// Rendering.

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Speedscope file format (https://www.speedscope.app/file-format-schema.json):
/// a shared frame table plus one sampled profile whose samples are frame-index
/// stacks with per-stack weights. Hand-rolled like every other JSON in this
/// workspace — no serde.
fn speedscope_json(report: &ProfileReport) -> Result<String, String> {
    let table = CollapsedTable::parse_folded(&report.folded, usize::MAX)
        .map_err(|e| format!("bad folded payload: {e}"))?;
    let rows = table.rows();
    let mut frames: Vec<&str> = Vec::new();
    let frame_idx =
        |name: &'static str, frames: &mut Vec<&str>| match frames.iter().position(|f| *f == name) {
            Some(i) => i,
            None => {
                frames.push(name);
                frames.len() - 1
            }
        };
    let mut samples = String::new();
    let mut weights = String::new();
    let mut total = 0u64;
    for (i, (names, count)) in rows.iter().enumerate() {
        if i > 0 {
            samples.push(',');
            weights.push(',');
        }
        samples.push('[');
        for (j, name) in names.iter().enumerate() {
            if j > 0 {
                samples.push(',');
            }
            samples.push_str(&frame_idx(name, &mut frames).to_string());
        }
        samples.push(']');
        weights.push_str(&count.to_string());
        total += count;
    }
    let frames_json = frames
        .iter()
        .map(|f| format!("{{\"name\":\"{}\"}}", json_escape(f)))
        .collect::<Vec<_>>()
        .join(",");
    Ok(format!(
        "{{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",\
         \"shared\":{{\"frames\":[{frames_json}]}},\
         \"profiles\":[{{\"type\":\"sampled\",\"name\":\"tell ({:.0} Hz, {} samples)\",\
         \"unit\":\"none\",\"startValue\":0,\"endValue\":{total},\
         \"samples\":[{samples}],\"weights\":[{weights}]}}],\
         \"exporter\":\"tell_flame\"}}\n",
        report.hz, report.samples,
    ))
}

fn render(report: &ProfileReport, json: bool) -> Result<String, String> {
    if json {
        return speedscope_json(report);
    }
    Ok(report.folded.clone())
}

fn summarize(report: &ProfileReport) {
    eprintln!(
        "tell_flame: running={} hz={} samples={} idle={} dropped={}",
        report.running, report.hz, report.samples, report.idle, report.dropped
    );
    for lock in report.locks.iter().take(5) {
        eprintln!(
            "tell_flame: lock {} contended={} wait_us={}",
            lock.name, lock.contended, lock.wait_us
        );
    }
    for a in report.alloc.iter().take(5) {
        eprintln!("tell_flame: alloc {} allocs={} bytes={}", a.frame, a.allocs, a.bytes);
    }
}

// ---------------------------------------------------------------------------
// Loopback cluster (mirrors tell_top's): SN + CM servers plus a committing
// workload in this process, profiled through the real wire path.

struct Loopback {
    servers: Vec<RpcServer>,
    stop: Arc<AtomicBool>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Loopback {
    fn boot() -> Result<(Loopback, Vec<String>), String> {
        let store = tell_store::StoreCluster::new(tell_store::StoreConfig::new(2));
        let sn = RpcServer::serve_store("127.0.0.1:0", store).map_err(|e| e.to_string())?;
        let sn_addr = sn.local_addr().to_string();
        let cm_cluster = tell_commitmgr::CmCluster::new(
            RemoteEndpoint::connect(sn_addr.clone(), 2),
            1,
            tell_commitmgr::manager::CmConfig::default(),
        );
        let cm = RpcServer::serve_commit(
            "127.0.0.1:0",
            cm_cluster as Arc<dyn tell_commitmgr::CommitService>,
        )
        .map_err(|e| e.to_string())?;
        let cm_addr = cm.local_addr().to_string();

        let endpoint = RemoteEndpoint::connect(sn_addr.clone(), 2);
        let commit: Arc<dyn tell_commitmgr::CommitService> =
            Arc::new(RemoteCmClient::connect([cm_addr]));
        let db = Database::open(endpoint, commit, TellConfig::default());

        let stop = Arc::new(AtomicBool::new(false));
        let worker = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loopback_workload(&db, &stop))
        };
        Ok((Loopback { servers: vec![sn, cm], stop, worker: Some(worker) }, vec![sn_addr]))
    }
}

impl Drop for Loopback {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        self.servers.clear();
    }
}

fn loopback_workload(db: &Arc<Database<RemoteEndpoint>>, stop: &AtomicBool) {
    let pk = IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice));
    let Ok(table) = db.create_table("flame_demo", vec![pk]) else { return };
    let row = |balance: u64, id: u64| {
        let mut b = balance.to_be_bytes().to_vec();
        b.extend_from_slice(&id.to_be_bytes());
        Bytes::from(b)
    };
    let pn = db.processing_node();
    let Ok(rid) = pn.run(100, |txn| txn.insert(&table, row(0, 1))) else { return };
    while !stop.load(Ordering::Relaxed) {
        let _ = pn.run(100, |txn| {
            let current = txn.get(&table, rid)?.expect("row inserted above");
            let balance = u64::from_be_bytes(current[..8].try_into().unwrap());
            txn.update(&table, rid, row(balance + 1, 1))
        });
    }
}

// ---------------------------------------------------------------------------

fn run(args: &Args) -> Result<(), String> {
    // Loopback implies a short profiling window against the booted node.
    let loopback = if args.loopback { Some(Loopback::boot()?) } else { None };
    let (addrs, mode) = match &loopback {
        Some((_, addrs)) => (addrs.clone(), &Mode::Window(1.0)),
        None => (args.addrs.clone(), &args.mode),
    };
    let start = Request::ProfileStart { hz: args.hz.unwrap_or(0.0) };
    match mode {
        Mode::Start => {
            call_each(&addrs, &start)?;
            eprintln!("tell_flame: sampling started on {} endpoint(s)", addrs.len());
        }
        Mode::Stop => {
            call_each(&addrs, &Request::ProfileStop)?;
            eprintln!("tell_flame: sampling stopped on {} endpoint(s)", addrs.len());
        }
        Mode::Fetch => {
            let report = fetch_merged(&addrs)?;
            summarize(&report);
            print!("{}", render(&report, args.json)?);
        }
        Mode::Window(secs) => {
            call_each(&addrs, &start)?;
            std::thread::sleep(Duration::from_secs_f64(*secs));
            let report = fetch_merged(&addrs)?;
            call_each(&addrs, &Request::ProfileStop)?;
            summarize(&report);
            print!("{}", render(&report, args.json)?);
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_flame: {msg}");
            std::process::exit(2);
        }
    };
    if let Err(msg) = run(&args) {
        eprintln!("tell_flame: {msg}");
        std::process::exit(1);
    }
}

//! Distributed trace scraper: run a few transactions against a cluster,
//! collect the spans every process recorded, assemble them into traces and
//! emit Chrome trace-event JSON — load the output in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see each
//! transaction's phases on the PN with the storage-node and commit-manager
//! work nested under the RPCs that caused it.
//!
//! ```text
//! # against a running cluster (tell_sn + tell_cm):
//! cargo run --release --example tell_trace -- \
//!     --store 127.0.0.1:7701 --cm 127.0.0.1:7801 > trace.json
//!
//! # self-contained smoke: boot a loopback cluster in-process
//! cargo run --release --example tell_trace -- --loopback > trace.json
//! ```
//!
//! Spans are tail-sampled (see `tell-obs`): kept traces are the slow ones,
//! LL/SC conflict aborts, and a 1-in-N sample of fast transactions — the
//! first transaction on a fresh thread is always sampled, so this example
//! always has at least one trace to show. `Request::Spans` drains a
//! server's ring destructively; runs are therefore one-shot snapshots.

use std::sync::Arc;

use bytes::Bytes;
use tell_core::database::IndexSpec;
use tell_core::{Database, TellConfig};
use tell_obs::export::{chrome_trace_json, group_by_trace, orphan_parents, SourcedSpan};
use tell_rpc::{Connection, RemoteCmClient, RemoteEndpoint, Request, Response, RpcServer};

struct Args {
    store: String,
    cm: String,
    txns: usize,
    loopback: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: "127.0.0.1:7701".to_string(),
        cm: "127.0.0.1:7801".to_string(),
        txns: 8,
        loopback: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--store" => args.store = value("--store")?,
            "--cm" => args.cm = value("--cm")?,
            "--txns" => args.txns = value("--txns")?.parse().map_err(|e| format!("--txns: {e}"))?,
            "--loopback" => args.loopback = true,
            "--help" | "-h" => {
                println!(
                    "tell_trace: collect spans from a cluster and emit Chrome trace JSON\n\n\
                     options:\n  \
                     --store ADDR  storage server (default 127.0.0.1:7701)\n  \
                     --cm ADDR     commit server (default 127.0.0.1:7801)\n  \
                     --txns N      transactions to run (default 8)\n  \
                     --loopback    boot an in-process loopback cluster instead\n                \
                     of connecting to --store/--cm"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

/// Drain one server's span ring over the wire.
fn scrape_spans(addr: &str, node: &str) -> Result<Vec<SourcedSpan>, String> {
    let conn = Connection::connect(addr).map_err(|e| e.to_string())?;
    let (response, _, _) = conn.call(&Request::Spans { drain: true }).map_err(|e| e.to_string())?;
    let Response::Spans(spans) = response else {
        return Err(format!("unexpected response: {response:?}"));
    };
    Ok(spans.into_iter().map(|span| SourcedSpan { node: node.to_string(), span }).collect())
}

fn run_workload(db: &Arc<Database<RemoteEndpoint>>, txns: usize) -> Result<(), String> {
    let pk = IndexSpec::new("pk", true, |row: &[u8]| row.get(8..16).map(Bytes::copy_from_slice));
    // The table may survive from an earlier run against the same cluster.
    let table = match db.create_table("trace_demo", vec![pk]) {
        Ok(t) => t,
        Err(_) => db.processing_node().table("trace_demo").map_err(|e| e.to_string())?,
    };
    let pn = db.processing_node();
    let row = |balance: u64, id: u64| {
        let mut b = balance.to_be_bytes().to_vec();
        b.extend_from_slice(&id.to_be_bytes());
        Bytes::from(b)
    };
    let rid = pn
        .run(100, |txn| txn.insert(&table, row(0, 1)))
        .map_err(|e| format!("insert failed: {e}"))?;
    for i in 0..txns {
        pn.run(100, |txn| {
            let current = txn.get(&table, rid)?.expect("row inserted above");
            let balance = u64::from_be_bytes(current[..8].try_into().unwrap());
            txn.update(&table, rid, row(balance + i as u64, 1))
        })
        .map_err(|e| format!("update failed: {e}"))?;
    }
    Ok(())
}

fn run(args: &Args) -> Result<String, String> {
    // Loopback mode boots the servers in-process; the handles must live
    // until the scrape is done.
    let mut servers: Vec<RpcServer> = Vec::new();
    let (store_addr, cm_addr) = if args.loopback {
        let store = tell_store::StoreCluster::new(tell_store::StoreConfig::new(2));
        let sn = RpcServer::serve_store("127.0.0.1:0", store).map_err(|e| e.to_string())?;
        let sn_addr = sn.local_addr().to_string();
        let cm_cluster = tell_commitmgr::CmCluster::new(
            RemoteEndpoint::connect(sn_addr.clone(), 2),
            1,
            tell_commitmgr::manager::CmConfig::default(),
        );
        let cm = RpcServer::serve_commit(
            "127.0.0.1:0",
            cm_cluster as Arc<dyn tell_commitmgr::CommitService>,
        )
        .map_err(|e| e.to_string())?;
        let cm_addr = cm.local_addr().to_string();
        servers.push(sn);
        servers.push(cm);
        (servers[0].local_addr().to_string(), cm_addr)
    } else {
        (args.store.clone(), args.cm.clone())
    };

    let endpoint = RemoteEndpoint::connect(store_addr.clone(), 2);
    let commit: Arc<dyn tell_commitmgr::CommitService> =
        Arc::new(RemoteCmClient::connect([cm_addr.clone()]));
    let db = Database::open(endpoint, commit, TellConfig::default());
    run_workload(&db, args.txns)?;

    // Collect: this process's ring (the PN side) plus each server's.
    let mut spans: Vec<SourcedSpan> = tell_obs::span::global_ring()
        .drain()
        .into_iter()
        .map(|span| SourcedSpan { node: "pn".to_string(), span })
        .collect();
    if !args.loopback {
        // In loopback mode the servers share this process's ring, so the
        // local drain above already captured everything; a wire scrape
        // would find the ring empty. Against a real cluster, each process
        // contributes its own spans.
        spans.extend(scrape_spans(&store_addr, &format!("sn {store_addr}"))?);
        spans.extend(scrape_spans(&cm_addr, &format!("cm {cm_addr}"))?);
    }
    if spans.is_empty() {
        return Err("no spans collected (is the registry enabled?)".to_string());
    }

    let traces = group_by_trace(spans.clone());
    let orphans = orphan_parents(&spans);
    eprintln!(
        "tell_trace: {} spans in {} traces ({} orphan parent links, {} dropped locally)",
        spans.len(),
        traces.len(),
        orphans,
        tell_obs::span::global_ring().dropped(),
    );

    let json = chrome_trace_json(&spans);
    tell_obs::export::validate_json(&json)
        .map_err(|e| format!("emitted trace JSON failed validation: {e}"))?;
    Ok(json)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("tell_trace: {msg}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(json) => println!("{json}"),
        Err(msg) => {
            eprintln!("tell_trace: {msg}");
            std::process::exit(1);
        }
    }
}

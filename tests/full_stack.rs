//! Cross-crate integration tests: the full shared-data stack — storage,
//! commit managers, indexes, transactions, SQL, TPC-C and the baselines —
//! exercised together through the `tell` facade.

use std::sync::Arc;

use tell::baselines::{run_sim, SimConfig, VoltDb, VoltDbConfig};
use tell::common::SnId;
use tell::core::gc::run_gc;
use tell::core::{Database, TellConfig};
use tell::sql::{SqlEngine, Value};
use tell::tpcc::driver::{run_tpcc, TpccConfig};
use tell::tpcc::gen::{load, ScaleParams};
use tell::tpcc::mix::Mix;
use tell::tpcc::schema::create_tpcc_tables;

/// The headline scenario: load TPC-C, run a mixed OLTP workload from
/// several logical PNs, survive a storage-node failure mid-flight, garbage
/// collect, and verify consistency through SQL.
#[test]
fn tpcc_oltp_with_failure_and_gc_stays_consistent() {
    let db = Database::create(TellConfig {
        storage_nodes: 3,
        replication_factor: 2,
        commit_managers: 2,
        ..TellConfig::default()
    });
    let engine = SqlEngine::new(Arc::clone(&db));
    create_tpcc_tables(&engine).unwrap();
    load(&engine, 2, ScaleParams::tiny(), 11).unwrap();

    // Phase 1: OLTP.
    let r1 = run_tpcc(
        &engine,
        &TpccConfig {
            warehouses: 2,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            pn_count: 2,
            workers_per_pn: 2,
            txns_per_worker: 40,
            max_retries: 500,
            seed: 21,
        },
    )
    .unwrap();
    assert!(r1.committed > 100);

    // Phase 2: kill a storage node (RF2 tolerates it) and keep going.
    db.store().kill_node(SnId(1));
    let r2 = run_tpcc(
        &engine,
        &TpccConfig {
            warehouses: 2,
            scale: ScaleParams::tiny(),
            mix: Mix::standard(),
            pn_count: 1,
            workers_per_pn: 2,
            txns_per_worker: 30,
            max_retries: 500,
            seed: 22,
        },
    )
    .unwrap();
    assert!(r2.committed > 50, "workload survives the SN failure");
    db.store().restore_replication();

    // Phase 3: garbage collection sweeps the version chains and the log.
    let gc = run_gc(&db).unwrap();
    assert!(gc.records_scanned > 0);
    assert!(gc.versions_removed > 0, "hot district/warehouse rows accumulated versions");

    // Phase 4: TPC-C consistency conditions via SQL.
    let s = engine.session();
    for w in 1..=2 {
        let w_ytd = s.execute(&format!("SELECT w_ytd FROM warehouse WHERE w_id = {w}")).unwrap();
        let d_sum =
            s.execute(&format!("SELECT SUM(d_ytd) FROM district WHERE d_w_id = {w}")).unwrap();
        let w_ytd = w_ytd.scalar().unwrap().as_f64().unwrap();
        let d_sum = d_sum.scalar().unwrap().as_f64().unwrap();
        assert!((w_ytd - d_sum).abs() < 1e-3, "w_ytd {w_ytd} != Σd_ytd {d_sum}");
        for d in 1..=ScaleParams::tiny().districts_per_warehouse {
            let next = s
                .execute(&format!(
                    "SELECT d_next_o_id FROM district WHERE d_w_id = {w} AND d_id = {d}"
                ))
                .unwrap();
            let max_o = s
                .execute(&format!(
                    "SELECT MAX(o_id) FROM orders WHERE o_w_id = {w} AND o_d_id = {d}"
                ))
                .unwrap();
            assert_eq!(
                next.scalar().unwrap().as_i64().unwrap(),
                max_o.scalar().unwrap().as_i64().unwrap() + 1
            );
        }
    }
}

/// SQL and the core API interoperate on the same tables within one
/// transaction.
#[test]
fn sql_and_core_share_transactions() {
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(db);
    let s = engine.session();
    s.execute("CREATE TABLE kv (k INT PRIMARY KEY, v TEXT NOT NULL)").unwrap();
    s.execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two')").unwrap();

    let result = s
        .transaction(|tx| {
            tx.execute("UPDATE kv SET v = 'uno' WHERE k = 1")?;
            // Drop to the core transaction mid-flight: the SQL update is
            // visible to it (same snapshot + write buffer).
            let raw = tx.raw();
            let table = raw.processing_node().table("kv")?;
            let rows = raw.scan_table(&table, usize::MAX)?;
            Ok(rows.len())
        })
        .unwrap();
    assert_eq!(result, 2);
    let r = s.execute("SELECT v FROM kv WHERE k = 1").unwrap();
    assert_eq!(r.scalar(), Some(&Value::Text("uno".into())));
}

/// The baselines run the same generated workload over the same generated
/// population and keep TPC-C invariants too (their executor mutates real
/// tables).
#[test]
fn baseline_engines_preserve_invariants() {
    let scale = ScaleParams::tiny();
    let mut engine = VoltDb::load(VoltDbConfig::new(2, 0), 8, scale, 33);
    let report = run_sim(
        &mut engine,
        &SimConfig {
            warehouses: 8,
            scale,
            mix: Mix::standard(),
            terminals: 8,
            total_txns: 1500,
            seed: 33,
        },
    );
    assert!(report.committed > 1000);
    assert!(report.tpmc > 0.0);
    assert!(report.user_rollbacks > 0, "the 1% rollback rule fires");
    // Latency distribution is sane.
    assert!(report.latency.percentile(0.99) >= report.latency.percentile(0.5));
}

/// Tell and a baseline observe the *same* deterministic population.
#[test]
fn population_is_identical_across_engines() {
    let scale = ScaleParams::tiny();
    // Count stock rows both ways.
    let db = Database::create(TellConfig::default());
    let engine = SqlEngine::new(db);
    create_tpcc_tables(&engine).unwrap();
    load(&engine, 2, scale, 77).unwrap();
    let s = engine.session();
    let tell_items = s.execute("SELECT COUNT(*), SUM(i_price) FROM item").unwrap();

    let pdb = tell::baselines::PartitionedDb::load(2, 2, scale, 77);
    use tell::tpcc::gen::TpccTable;
    assert_eq!(
        tell_items.rows[0][0].as_i64().unwrap() as usize * 2, // item is replicated per partition
        pdb.count(TpccTable::Item)
    );
    assert_eq!(
        s.execute("SELECT COUNT(*) FROM customer").unwrap().scalar().unwrap().as_i64().unwrap()
            as usize,
        pdb.count(TpccTable::Customer)
    );
}

/// Network profiles flow through the whole stack: the same workload is
/// slower end-to-end on a WAN profile, and the traffic ledger sees it.
#[test]
fn virtual_time_reflects_network_profile() {
    let mut times = Vec::new();
    for profile in
        [tell::netsim::NetworkProfile::infiniband(), tell::netsim::NetworkProfile::ethernet_10g()]
    {
        let db = Database::create(TellConfig { profile, ..TellConfig::default() });
        let engine = SqlEngine::new(Arc::clone(&db));
        let s = engine.session();
        s.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT NOT NULL)").unwrap();
        for i in 0..20 {
            s.execute(&format!("INSERT INTO t VALUES ({i}, {i})")).unwrap();
        }
        s.execute("UPDATE t SET v = v + 1 WHERE id < 10").unwrap();
        times.push(s.processing_node().clock().now_us());
        assert!(db.traffic().request_count() > 0);
    }
    assert!(times[1] > times[0] * 3.0, "Ethernet must cost much more virtual time: {times:?}");
}

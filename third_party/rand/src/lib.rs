//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! Provides `rngs::StdRng` (xoshiro256++ seeded via splitmix64),
//! `SeedableRng::seed_from_u64` and `Rng::random_range` over integer and
//! float ranges — the subset the workload generators use. Distribution
//! quality matches the workloads' needs (uniform ranges); this is not a
//! cryptographic generator.

// Vendored stand-in: lint-exempt so `clippy --workspace -D warnings` checks
// only first-party code.
#![allow(clippy::all)]

pub mod rngs {
    pub use crate::StdRng;
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling API (rand 0.9 naming).
pub trait Rng: RngCore {
    /// Uniformly sample from `range` (`a..b` or `a..=b`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of `T` over its full domain (bools fair,
    /// floats in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable over their whole domain.
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that can be sampled uniformly from a range. Implemented with
/// per-type macro bodies but exposed through blanket range impls so type
/// inference flows through `random_range` exactly as with the real crate
/// (one generic impl per range shape).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform in `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range");
        lo + f64::standard(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // For floats the inclusive upper bound is a measure-zero distinction.
        if lo == hi {
            lo
        } else {
            Self::sample_exclusive(lo, hi, rng)
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for ::std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for ::std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// xoshiro256++ — fast, high-quality, deterministic.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64 as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.random_range(1..=6);
            assert!((1..=6).contains(&w));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&n));
        }
    }

    #[test]
    fn covers_full_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}

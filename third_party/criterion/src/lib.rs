//! Offline stand-in for `criterion`.
//!
//! Supplies `Criterion::bench_function`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros so the figure/table
//! benchmarks compile and run without a crates registry. Measurement is a
//! simple calibrated wall-clock loop (no statistical analysis, plots or
//! HTML reports); results print as `name ... time per iter`.

// Vendored stand-in: lint-exempt so `clippy --workspace -D warnings` checks
// only first-party code.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each bench function.
pub struct Criterion {
    /// Target time to spend measuring each benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { target: self.measurement_time, iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        if b.iters > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!("{name:<40} {:>12} iters  {:>12.1} ns/iter", b.iters, per_iter);
        } else {
            println!("{name:<40} (no measurement)");
        }
        self
    }
}

/// Runs the measured closure.
pub struct Bencher {
    target: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup iteration, then measure batches until the budget runs out.
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.target {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the small subset of the `bytes` API it actually uses. `Bytes` here
//! is a cheaply clonable, immutable byte string backed by `Arc<[u8]>`:
//! clones are reference-count bumps, exactly the property the store layer
//! relies on when the same value flows through buffers, replicas and the
//! wire format without copies.

// Vendored stand-in: lint-exempt so `clippy --workspace -D warnings` checks
// only first-party code.
#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice. (The stand-in copies; semantics are identical.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Borrow the contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Return a new `Bytes` holding `self[begin..end]` (bounds-checked).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other.data[..]
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_order() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 4]);
        assert!(a < b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
        assert_eq!(Bytes::from("hi"), *"hi".as_bytes());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![0u8; 64]);
        let b = a.clone();
        assert_eq!(a.data.as_ptr(), b.data.as_ptr());
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to a crates registry, so the workspace
//! vendors the small subset of the `bytes` API it actually uses. `Bytes` here
//! is a cheaply clonable, immutable byte string: a `(start, end)` view into
//! shared `Arc<Vec<u8>>` storage. Clones and `slice` are reference-count
//! bumps, exactly the property the store layer relies on when the same value
//! flows through buffers, replicas and the wire format without copies — and
//! the property the RPC reactor relies on to slice frame bodies out of a
//! receive buffer without copying them again.
//!
//! `BytesMut` is the matching growable accumulator: append with
//! [`BytesMut::extend_from_slice`], detach a prefix with
//! [`BytesMut::split_to`], publish with [`BytesMut::freeze`]. The stand-in
//! backs it with a plain `Vec<u8>` plus a consumed-prefix offset, so
//! `split_to` is the single copy on that path and `freeze` is free.

// Vendored stand-in: lint-exempt so `clippy --workspace -D warnings` checks
// only first-party code.
#![allow(clippy::all)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (a view into shared storage).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice. (The stand-in copies; semantics are identical.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the contents out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Borrow the contents as a slice.
    pub fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }

    /// Return a `Bytes` viewing `self[begin..end]` (bounds-checked). Shares
    /// storage with `self`: no copy, but the full backing allocation stays
    /// alive as long as any view does.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end, "slice start {start} > end {end}");
        assert!(end <= self.len(), "slice end {end} out of bounds ({})", self.len());
        Bytes { data: Arc::clone(&self.data), start: self.start + start, end: self.start + end }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == *other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == &other[..]
    }
}
impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_slice() == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte accumulator that detaches immutable [`Bytes`] prefixes.
///
/// The stand-in keeps a `Vec<u8>` plus a consumed-prefix offset: appends go
/// to the tail, [`BytesMut::split_to`] copies the detached prefix out once
/// and advances the offset, and the offset is compacted away when it grows
/// past half the buffer. [`BytesMut::freeze`] hands the remaining tail to a
/// `Bytes` without copying.
#[derive(Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    head: usize,
}

impl BytesMut {
    /// An empty accumulator.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty accumulator with room for `cap` bytes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap), head: 0 }
    }

    /// Length of the unconsumed contents in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// True if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.head == self.buf.len()
    }

    /// Append `data` to the tail.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.maybe_compact();
        self.buf.extend_from_slice(data);
    }

    /// Detach and return the first `at` bytes as an immutable [`Bytes`],
    /// advancing `self` past them. (The real crate returns a `BytesMut`
    /// that freezes separately; the stand-in fuses the two — its callers
    /// always freeze immediately.)
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of bounds ({})", self.len());
        let out = Bytes::from(self.buf[self.head..self.head + at].to_vec());
        self.head += at;
        if self.is_empty() {
            self.buf.clear();
            self.head = 0;
        }
        out
    }

    /// Convert the unconsumed contents into an immutable [`Bytes`] without
    /// copying (beyond compacting away any consumed prefix).
    pub fn freeze(mut self) -> Bytes {
        if self.head > 0 {
            self.buf.drain(..self.head);
        }
        Bytes::from(self.buf)
    }

    /// Discard the first `cnt` bytes without detaching them (the `Buf`
    /// trait's `advance` in the real crate).
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance({cnt}) out of bounds ({})", self.len());
        self.head += cnt;
        if self.is_empty() {
            self.buf.clear();
            self.head = 0;
        }
    }

    /// Drop everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }

    fn maybe_compact(&mut self) {
        // Reclaim the consumed prefix once it dominates the buffer, so the
        // allocation doesn't grow without bound under a long-lived stream.
        if self.head >= 4096 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.head..]
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_order() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 4]);
        assert!(a < b);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
        assert_eq!(Bytes::from("hi"), *"hi".as_bytes());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![0u8; 64]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn slices_share_storage_and_nest() {
        let a = Bytes::from((0u8..64).collect::<Vec<u8>>());
        let s = a.slice(8..24);
        assert_eq!(&s[..], &(8u8..24).collect::<Vec<u8>>()[..]);
        assert_eq!(s.as_slice().as_ptr(), unsafe { a.as_slice().as_ptr().add(8) });
        let nested = s.slice(4..8);
        assert_eq!(&nested[..], &[12, 13, 14, 15]);
        assert_eq!(a.slice(..), a);
        assert!(a.slice(64..64).is_empty());
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }

    #[test]
    fn bytes_mut_split_and_freeze() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&[1, 2, 3, 4]);
        m.extend_from_slice(&[5, 6]);
        assert_eq!(m.len(), 6);
        let head = m.split_to(4);
        assert_eq!(&head[..], &[1, 2, 3, 4]);
        assert_eq!(&m[..], &[5, 6]);
        m.extend_from_slice(&[7]);
        assert_eq!(m.split_to(0).len(), 0);
        assert_eq!(&m.freeze()[..], &[5, 6, 7]);
    }

    #[test]
    fn bytes_mut_compacts_consumed_prefix() {
        let mut m = BytesMut::new();
        m.extend_from_slice(&vec![0xAA; 8192]);
        let _ = m.split_to(8000);
        m.extend_from_slice(&[1, 2, 3]);
        assert_eq!(m.len(), 192 + 3);
        assert_eq!(&m[192..], &[1, 2, 3]);
    }
}

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's property
//! tests use, backed by deterministic random sampling (seeded per test from
//! the test name, so failures reproduce). The one deliberate omission versus
//! the real crate is *shrinking*: a failing case is reported as generated,
//! not minimized. Failure messages include the case number so a failure can
//! be replayed by re-running the test.

// Vendored stand-in: lint-exempt so `clippy --workspace -D warnings` checks
// only first-party code.
#![allow(clippy::all)]

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

pub mod prelude {
    /// The real crate re-exports itself as `prop` in the prelude
    /// (`prop::collection::vec`, `prop::bool::ANY`, ...).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator; one per test run.
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { x: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree: `sample` directly produces
/// a value, and shrinking is not performed.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }

    fn prop_union<S2>(self, other: S2) -> TwoUnion<Self, S2>
    where
        Self: Sized,
        S2: Strategy<Value = Self::Value>,
    {
        TwoUnion { a: self, b: other }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { sampler: Rc::new(move |rng: &mut TestRng| self.sample(rng)) }
    }
}

/// Type-erased strategy. Clonable so collections of boxed strategies can be
/// reused across cases.
pub struct BoxedStrategy<T> {
    #[allow(clippy::type_complexity)]
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { sampler: Rc::clone(&self.sampler) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates in a row", self.whence);
    }
}

pub struct TwoUnion<A, B> {
    a: A,
    b: B,
}

impl<A, B> Strategy for TwoUnion<A, B>
where
    A: Strategy,
    B: Strategy<Value = A::Value>,
{
    type Value = A::Value;
    fn sample(&self, rng: &mut TestRng) -> A::Value {
        if rng.next_u64() & 1 == 0 {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }
}

/// Weighted union over same-typed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!()
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf { _marker: std::marker::PhantomData }
}

pub struct AnyOf<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a full-domain generator.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite doubles across a broad magnitude spread.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * rng.unit_f64() * 10f64.powf(mag / 10.0)
    }
}

/// Types uniformly samplable from ranges; backs the blanket range-strategy
/// impls (a single generic impl per range shape keeps integer-literal type
/// inference working exactly as with the real crate).
pub trait UniformValue: Copy + PartialOrd {
    fn uniform_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    fn uniform_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! int_uniform_value {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn uniform_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn uniform_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_uniform_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformValue for f64 {
    fn uniform_exclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        assert!(lo < hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
    fn uniform_inclusive(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
        if lo == hi {
            lo
        } else {
            Self::uniform_exclusive(lo, hi, rng)
        }
    }
}

impl<T: UniformValue> Strategy for ::std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform_exclusive(self.start, self.end, rng)
    }
}

impl<T: UniformValue> Strategy for ::std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform_inclusive(*self.start(), *self.end(), rng)
    }
}

/// String strategies are written as regexes in proptest; this stand-in
/// supports the `.{a,b}` shape the workspace uses (a string of `a..=b`
/// arbitrary non-newline chars) and falls back to treating anything else as
/// a literal.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        if let Some((min, max)) = parse_dot_repeat(self) {
            let len = min + rng.below((max - min + 1) as u64) as usize;
            let mut s = String::with_capacity(len);
            for _ in 0..len {
                s.push(sample_char(rng));
            }
            s
        } else {
            (*self).to_owned()
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (a, b) = rest.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn sample_char(rng: &mut TestRng) -> char {
    // Mostly printable ASCII, with a sprinkling of multi-byte and exotic
    // code points to stress parsers and codecs.
    match rng.below(10) {
        0..=6 => (0x20 + rng.below(0x5f) as u8) as char,
        7 => char::from_u32(0xa1 + rng.below(0x100) as u32).unwrap_or('¡'),
        8 => char::from_u32(0x4e00 + rng.below(0x200) as u32).unwrap_or('中'),
        _ => ['\t', '\'', '"', '\\', '\u{1F600}', 'é', 'ß', '🦀'][rng.below(8) as usize],
    }
}

// ---------------------------------------------------------------------------
// Composite strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A `Vec` of strategies yields a `Vec` of one sample each (used to build a
/// row from per-column strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}
impl From<::std::ops::Range<usize>> for SizeRange {
    fn from(r: ::std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}
impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` of `size` samples of `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `BTreeSet` with *up to* `size` members (duplicates collapse, as in
    /// real proptest).
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` with *up to* `size` entries.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| (self.key.sample(rng), self.value.sample(rng))).collect()
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod bool {
    use super::*;

    pub struct AnyBool;

    /// A fair coin.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = ::std::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

thread_local! {
    /// Case number of the currently executing generated case, for error
    /// reporting from `prop_assert!` failures.
    pub static CURRENT_CASE: Cell<u32> = const { Cell::new(0) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $crate::CURRENT_CASE.with(|c| c.set(case));
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("case {} of {}: {}", case, stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u8, Vec<u8>),
        Del(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => (any::<u8>(), prop::collection::vec(any::<u8>(), 0..8)).prop_map(|(k, v)| Op::Put(k, v)),
            1 => any::<u8>().prop_map(Op::Del),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in 0u64..=5, s in ".{0,12}") {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 5);
            prop_assert!(s.chars().count() <= 12);
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..5),
            set in prop::collection::btree_set(0usize..100, 0..10),
            m in prop::collection::btree_map(any::<u8>(), any::<bool>(), 1..4),
            o in prop::option::of(any::<i64>()),
            flag in prop::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(set.len() < 10);
            prop_assert!(m.len() < 4);
            let _ = (o, flag);
        }

        #[test]
        fn combinators_compose(ops in prop::collection::vec(op_strategy(), 0..20)) {
            for op in &ops {
                match op {
                    Op::Put(_, v) => prop_assert!(v.len() < 8),
                    Op::Del(_) => {}
                }
            }
        }

        #[test]
        fn flat_map_and_union(x in (1usize..4).prop_flat_map(|n| {
            let elems: Vec<BoxedStrategy<usize>> = (0..n).map(|i| Just(i).boxed()).collect();
            (Just(n), elems)
        })) {
            let (n, v) = x;
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }
}
